"""Fig. 4 — CPI changes consistently with execution time.

Paper claim: over 25 repeated runs with injected disturbances, the 95th
percentile of CPI correlates with execution time at r = 0.97 (Wordcount)
and 0.95 (Sort), and a 2nd-order polynomial fit rises monotonically —
establishing CPI as the KPI of big-data applications.
"""

import numpy as np

from repro.eval.experiments import run_fig4_cpi_kpi
from repro.eval.reporting import format_fig4


def test_fig4_cpi_tracks_execution_time(benchmark, cluster, capsys):
    series = benchmark.pedantic(
        lambda: run_fig4_cpi_kpi(cluster, reps=25),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_fig4(series))

    assert set(series) == {"wordcount", "sort"}
    for s in series.values():
        # Paper: 0.97 / 0.95; the substrate should land >= 0.9.
        assert s.correlation > 0.9
        # Monotone increasing fit over the observed range (Fig. 4 c/d).
        grid = np.linspace(s.exec_norm.min(), s.exec_norm.max(), 100)
        fitted = np.polyval(s.poly_coeffs, grid)
        assert np.all(np.diff(fitted) > -0.02)
        # Normalised-to-minimum series start at 1.0 (§3.1).
        assert s.exec_norm.min() == 1.0
        assert s.kpi_norm.min() == 1.0

"""Fig. 10 — recall: InvarNet-X vs ARX vs no-operation-context.

Paper claims: the diagnosis recall of InvarNet-X and ARX shows "no
significant differences" (ARX's easily-broken linear invariants capture
problems strongly), while the no-operation-context ablation is far worse
on recall too.
"""

from repro.eval.reporting import format_comparison


def test_fig10_recall_comparison(benchmark, comparison_results, capsys):
    results = benchmark.pedantic(
        lambda: comparison_results, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_comparison(results))

    mic = results["InvarNet-X"].scores["average"].recall
    arx = results["ARX"].scores["average"].recall
    no_ctx = results["no-context"].scores["average"].recall

    # recall comparable between MIC and ARX (paper: no significant gap)
    assert abs(mic - arx) < 0.12
    # the ablation collapses
    assert no_ctx < mic - 0.25
    assert no_ctx < arx - 0.25

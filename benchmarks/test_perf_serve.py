"""Load-generator benchmark: fleet serving vs naive monitor loop.

Not part of tier-1 (``testpaths = ["tests"]``); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serve.py -q -s

The naive baseline is the obvious deployment: one
:class:`~repro.core.online.OnlineMonitor` per context, ``observe`` called
in a loop.  Every MONITORING tick then pays the full ARMA recursion over
the context's whole CPI history — O(history) python-loop work per tick
per context.  The fleet's fast lane (:mod:`repro.serve.fastpath`)
computes the bit-identical verdict from an O(p + d) tail, which is where
the required >= 3x multiplexing headroom comes from; both sides run the
same corrected state machine, so the event streams must match exactly.

The full benchmark drives 512 contexts x 64 ticks (the PR acceptance
shape, recorded to ``BENCH_serve.json``); the ``smoke`` test is a
down-scaled CI version that checks parity and direction without pinning
a ratio load-sensitive runners would flake on.
"""

import time

import numpy as np

from repro.core import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.inference import InferenceResult
from repro.core.invariants import InvariantSet
from repro.core.online import OnlineMonitor
from repro.serve import FleetMonitor, Tick
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

#: Required full-benchmark speedup (PR acceptance criterion).
REQUIRED_SPEEDUP = 3.0

MONITOR_KW = dict(window_ticks=8, warmup_ticks=12, cooldown_ticks=4)
CATALOG = MetricCatalog(names=("m0", "m1", "m2", "m3"))


def _detector() -> AnomalyDetector:
    """AR(2, 1, 0): on flat history it predicts "same as last tick"
    (all differences are zero), so the streams below are hand-checkable
    — yet the full path still pays the O(history) ARMA recursion."""
    model = ARIMAModel(
        order=ARIMAOrder(2, 1, 0),
        ar=np.array([0.3, -0.1]),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    return AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
    )


def _pipeline(contexts) -> InvarNetX:
    pipe = InvarNetX(catalog=CATALOG)
    detector = _detector()
    invariants = InvariantSet(
        pairs=[(0, 1)], baseline=np.array([0.9]), catalog=CATALOG
    )
    for context in contexts:
        pipe.store.adopt(
            context.key(),
            ContextModels(
                context=context, detector=detector, invariants=invariants
            ),
        )
    pipe.infer = lambda ctx, window, top_k=3: InferenceResult(
        causes=[], violations=np.zeros(1, dtype=bool)
    )
    return pipe


def _cpi(tick, i, n_contexts):
    """Flat 1.0 everywhere; every 16th context ramps +2/tick from tick
    20 so the run exercises alarms, collection and cool-down too."""
    if i % 16 == 0 and tick >= 20:
        return 1.0 + 2.0 * (tick - 19)
    return 1.0


def _run_naive(contexts, ticks, rows):
    pipe = _pipeline(contexts)
    monitors = [
        OnlineMonitor(pipe, c, **MONITOR_KW) for c in contexts
    ]
    events = []
    start = time.perf_counter()
    for t in range(ticks):
        row = rows[t]
        for i, monitor in enumerate(monitors):
            ev = monitor.observe(row, _cpi(t, i, len(contexts)))
            if ev is not None:
                events.append((i, type(ev).__name__, ev.tick))
    return events, time.perf_counter() - start


def _run_fleet(contexts, ticks, rows):
    fleet = FleetMonitor(
        _pipeline(contexts), shards=8, workers=0, **MONITOR_KW
    )
    index_of = {c.key(): i for i, c in enumerate(contexts)}
    events = []
    start = time.perf_counter()
    for t in range(ticks):
        row = rows[t]
        batch = [
            Tick(c, row, _cpi(t, i, len(contexts)))
            for i, c in enumerate(contexts)
        ]
        for fe in fleet.ingest(batch).events:
            events.append(
                (index_of[fe.context.key()], type(fe.event).__name__,
                 fe.event.tick)
            )
    elapsed = time.perf_counter() - start
    fleet.close()
    return events, elapsed


def _drive(n_contexts, ticks):
    contexts = [
        OperationContext("wordcount", f"node-{i}") for i in range(n_contexts)
    ]
    rows = [np.full(4, float(t)) for t in range(ticks)]
    naive_events, naive_t = _run_naive(contexts, ticks, rows)
    fleet_events, fleet_t = _run_fleet(contexts, ticks, rows)
    assert sorted(fleet_events) == sorted(naive_events)
    assert naive_events  # the ramped contexts really produced incidents
    return naive_t, fleet_t


class TestServeBenchmark:
    def test_smoke_fleet_not_slower_with_parity(self, bench_record):
        n_contexts, ticks = 48, 40
        naive_t, fleet_t = _drive(n_contexts, ticks)
        throughput = n_contexts * ticks / fleet_t
        print(
            f"\n[smoke] fleet {fleet_t:.3f}s  naive {naive_t:.3f}s  "
            f"speedup {naive_t / fleet_t:.2f}x  "
            f"throughput {throughput:,.0f} context-ticks/s"
        )
        bench_record(
            "serve",
            "smoke_48x40",
            contexts=n_contexts,
            ticks=ticks,
            fleet_seconds=round(fleet_t, 4),
            naive_seconds=round(naive_t, 4),
            speedup=round(naive_t / fleet_t, 2),
            throughput_context_ticks_per_s=round(throughput, 1),
        )
        # direction only: CI runners are too load-sensitive for a ratio
        assert fleet_t <= naive_t * 1.2

    def test_full_fleet_multiplexes_512_contexts(self, bench_record):
        n_contexts, ticks = 512, 64
        naive_t, fleet_t = _drive(n_contexts, ticks)
        speedup = naive_t / fleet_t
        throughput = n_contexts * ticks / fleet_t
        print(
            f"\n[full] fleet {fleet_t:.3f}s  naive {naive_t:.3f}s  "
            f"speedup {speedup:.2f}x  "
            f"throughput {throughput:,.0f} context-ticks/s"
        )
        bench_record(
            "serve",
            "fleet_512x64",
            contexts=n_contexts,
            ticks=ticks,
            fleet_seconds=round(fleet_t, 4),
            naive_seconds=round(naive_t, 4),
            speedup=round(speedup, 2),
            throughput_context_ticks_per_s=round(throughput, 1),
            required_speedup=REQUIRED_SPEEDUP,
        )
        assert n_contexts >= 500
        assert speedup >= REQUIRED_SPEEDUP, (
            f"fleet fast lane only {speedup:.2f}x over the naive loop"
        )

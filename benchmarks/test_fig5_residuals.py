"""Fig. 5 — CPI prediction residuals before/after a CPU-hog injection.

Paper claim: the residuals of the trained ARIMA model stay small in the
normal state and jump visibly when the CPU-hog is injected, for both the
batch (Wordcount) and interactive (TPC-DS) workloads.
"""

import numpy as np

from repro.eval.experiments import run_fig5_residuals
from repro.eval.reporting import format_fig5


def test_fig5_residuals(benchmark, cluster, capsys):
    series = benchmark.pedantic(
        lambda: run_fig5_residuals(cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_fig5(series))

    assert set(series) == {"wordcount", "tpcds"}
    for s in series.values():
        lo, hi = s.fault_window
        resid = np.abs(s.residuals)
        inside = resid[lo : min(hi, resid.size)]
        inside = inside[~np.isnan(inside)]
        outside = resid[:lo]
        outside = outside[~np.isnan(outside)]
        # the anomaly is glanceable: fault-window residuals dominate
        assert np.mean(inside) > 2 * np.mean(outside)
        assert np.max(inside) > s.threshold_upper
        # and the normal state stays under the calibrated threshold
        assert np.mean(outside) < s.threshold_upper

"""Table 1 — computational overhead of each InvarNet-X stage.

Paper claims: the online stages (Perf-D anomaly detection, Cause-I
inference) run in seconds — "satisfying the online requirement" — while
invariant construction dominates the offline cost.  The paper also reports
ARX invariant construction an order of magnitude above MIC's; on this
substrate the ratio depends on implementation vectorisation, so the
benchmark asserts the implementation-independent shape (online ≪ offline,
construction dominates) and prints both columns for inspection (see
EXPERIMENTS.md for the deviation discussion).
"""

from repro.eval.experiments import run_table1_overhead
from repro.eval.reporting import format_table1


def test_table1_overhead(benchmark, cluster, capsys):
    rows = benchmark.pedantic(
        lambda: run_table1_overhead(cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table1(rows))

    names = [r.workload for r in rows]
    assert names == ["wordcount", "sort", "grep", "interactive"]
    for r in rows:
        # online requirement: detection and inference well under 2 s
        assert r.detect < 2.0
        assert r.cause_infer < 2.0
        # offline invariant construction dominates the pipeline cost
        assert r.invariant_mic > r.signature_build
        assert r.invariant_mic > r.cause_infer
        assert r.invariant_mic > r.perf_model
        # every stage actually did work
        assert r.invariant_arx > 0.0

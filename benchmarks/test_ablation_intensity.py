"""Ablation — detection behaviour vs fault severity.

The paper guarantees "all the injected faults cause significant
performance problems" and never asks where the detection boundary lies.
This benchmark sweeps the CPU-hog's severity: ARIMA drift detection loses
the fault somewhere below half the paper's calibration, and the alarm
latency shrinks as severity grows.
"""

import math

from repro.eval.experiments import run_intensity_sweep


def test_ablation_fault_intensity(benchmark, cluster, capsys):
    points = benchmark.pedantic(
        lambda: run_intensity_sweep(cluster, reps=5),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Ablation — CPU-hog severity sweep")
        for p in points:
            latency = (
                "-" if math.isnan(p.mean_latency_ticks)
                else f"{p.mean_latency_ticks:.1f}"
            )
            print(
                f"  x{p.intensity:<5} detection={p.detection_rate:4.2f}  "
                f"alarm latency={latency} ticks  "
                f"accuracy-when-detected={p.diagnosis_accuracy:4.2f}"
            )

    by_intensity = {p.intensity: p for p in points}
    # a quarter-strength hog hides below the drift threshold...
    assert by_intensity[0.25].detection_rate <= 0.4
    # ...the paper's calibration and anything above is reliably caught
    assert by_intensity[1.0].detection_rate >= 0.8
    assert by_intensity[1.5].detection_rate >= 0.8
    # detection is monotone in severity (within small-sample tolerance)
    rates = [p.detection_rate for p in points]
    assert all(b >= a - 0.25 for a, b in zip(rates, rates[1:]))
    # once detected, the signature still names the fault
    assert by_intensity[1.0].diagnosis_accuracy >= 0.8

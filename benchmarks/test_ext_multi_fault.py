"""Extension — multi-fault diagnosis (the paper's §4.1 future-work note).

"As the probability of multiple faults happening in the same node at the
same time is very tiny, we don't consider multiple faults in this paper.
Actually, our method could be easily extended to multiple faults by
listing multiple root causes whose signatures are most similar."

This benchmark injects two simultaneous faults and checks the ranked
cause list: the dominant fault should surface at rank 1 essentially
always; getting *both* into the top-2 is harder (the superimposed
violation tuple is not a union of the single-fault tuples) and is
reported for inspection.
"""

from repro.eval.experiments import run_multi_fault_extension


def test_ext_multi_fault(benchmark, cluster, capsys):
    result = benchmark.pedantic(
        lambda: run_multi_fault_extension(cluster, reps=5),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Extension — simultaneous fault pairs")
        for pair in result.pair_hits:
            print(
                f"  {pair[0]} + {pair[1]}: "
                f"rank-1 hit rate={result.any_hits[pair]:.2f}, "
                f"both in top-2={result.pair_hits[pair]:.2f}"
            )

    # the ranked list always surfaces one of the concurrent faults on top
    for pair, rate in result.any_hits.items():
        assert rate >= 0.6, pair

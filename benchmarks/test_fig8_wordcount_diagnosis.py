"""Fig. 8 — per-fault diagnosis precision/recall under Wordcount.

Paper claims: average precision 91.2 % and recall 87.3 % — higher than
TPC-DS because a single batch job keeps a stable performance model and
invariants ("batch type of workloads possess higher quality of
signatures"); Overload does not apply (FIFO exclusivity); Lock-R's recall
stays low.
"""

from repro.eval.reporting import format_diagnosis


def test_fig8_wordcount_diagnosis(
    benchmark, fig7_result, fig8_result, capsys
):
    result = benchmark.pedantic(
        lambda: fig8_result, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_diagnosis(result, "Fig. 8 — Wordcount per-fault accuracy")
        )

    scores = result.scores
    # paper: 91.2 % / 87.3 %
    assert scores["average"].precision > 0.8
    assert scores["average"].recall > 0.75

    # FIFO exclusivity: no Overload under a batch workload
    assert "Overload" not in scores

    # Suspend stays near-perfect; Lock-R recall stays low
    assert scores["Suspend"].precision >= 0.9
    assert scores["Suspend"].recall >= 0.9
    assert scores["Lock-R"].recall <= scores["average"].recall

    # the batch workload's signatures beat the mixed interactive ones
    # (compare the combined F1 rather than each metric separately — the
    # paper reports both averages higher, but seed noise at small reps can
    # flip one of the two)
    assert (
        scores["average"].f1
        >= fig7_result.scores["average"].f1 - 0.05
    )

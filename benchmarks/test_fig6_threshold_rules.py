"""Fig. 6 — anomaly detection under max-min, 95-percentile and beta-max.

Paper claim: the 95-percentile rule has the worst detection behaviour
(it floods false alarms), while max-min and beta-max behave similarly;
beta-max is selected as the final rule because it is also cheaper than
max-min.
"""

from repro.eval.experiments import run_fig6_threshold_rules
from repro.eval.reporting import format_fig6


def test_fig6_threshold_rules(benchmark, cluster, capsys):
    scores = benchmark.pedantic(
        lambda: run_fig6_threshold_rules(cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_fig6(scores))

    for workload, rows in scores.items():
        by_rule = {r.rule: r for r in rows}
        # 95-percentile is the noisiest rule...
        assert (
            by_rule["95-percentile"].false_positive_rate
            >= by_rule["beta-max"].false_positive_rate
        )
        assert (
            by_rule["95-percentile"].false_positive_rate
            >= by_rule["max-min"].false_positive_rate
        )
        # ...max-min and beta-max behave similarly...
        assert (
            abs(
                by_rule["max-min"].true_positive_rate
                - by_rule["beta-max"].true_positive_rate
            )
            < 0.35
        )
        # ...and every rule catches the injected CPU-hog.
        for r in rows:
            assert r.problem_detected, f"{r.rule} missed on {workload}"

"""CI bench-regression guard.

Compares freshly produced ``BENCH_*.json`` files against a baseline
directory holding the committed copies (CI snapshots them before the
benchmark steps run) and fails on a >25% regression of any recorded
*ratio* field:

- ``speedup`` — higher is better; regression when the fresh value drops
  more than the tolerance below the committed one;
- ``overhead_ratio`` — lower is better; regression when the fresh value
  rises more than the tolerance above the committed one.

Absolute timings (``*_seconds``, throughputs) are deliberately ignored —
they track the runner's hardware, while ratios are self-normalising and
comparable across machines.

On failure the guard also writes a collapsed-stack profile of a short
calibration workload (``--profile-out``): the same spans + metric
writes + numpy kernel mix the benchmarks lean on, captured with the
stdlib sampling profiler.  CI uploads it as an artifact so a "slow
runner or real regression?" question can be answered from the stacks.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline bench-baseline [--tolerance 0.25] \
        [--profile-out bench-regression-profile.collapsed]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: field name -> direction ("higher" / "lower" is better)
RATIO_FIELDS = {"speedup": "higher", "overhead_ratio": "lower"}


def load_results(path: Path) -> dict[str, dict]:
    doc = json.loads(path.read_text(encoding="utf-8"))
    results = doc.get("results")
    return results if isinstance(results, dict) else {}


def compare_file(
    baseline_path: Path, current_path: Path, tolerance: float
) -> list[str]:
    """Human-readable regression descriptions for one BENCH file."""
    problems: list[str] = []
    if not current_path.exists():
        problems.append(
            f"{baseline_path.name}: no fresh copy was produced "
            f"(expected {current_path})"
        )
        return problems
    baseline = load_results(baseline_path)
    current = load_results(current_path)
    for key, fields in sorted(baseline.items()):
        fresh = current.get(key)
        if fresh is None:
            continue  # partial benchmark runs are fine (smoke mode)
        for field, direction in RATIO_FIELDS.items():
            before = fields.get(field)
            after = fresh.get(field)
            if not isinstance(before, (int, float)) or not isinstance(
                after, (int, float)
            ):
                continue
            if before <= 0:
                continue
            if direction == "higher":
                regressed = after < before * (1.0 - tolerance)
            else:
                regressed = after > before * (1.0 + tolerance)
            if regressed:
                problems.append(
                    f"{baseline_path.name} · {key} · {field}: "
                    f"{before} -> {after} "
                    f"(worse than the {tolerance:.0%} tolerance, "
                    f"{direction} is better)"
                )
    return problems


def write_failure_profile(path: Path, seconds: float = 2.0) -> None:
    """Collapsed-stack profile of a calibration workload for the CI
    artifact — the spans + metric writes + numpy kernel mix the
    benchmarks exercise."""
    import numpy as np

    import repro.obs as obs
    from repro.obs.prof import capture

    obs.configure(enabled=True)
    counter = obs.metrics_registry().counter(
        "bench_guard_total", "calibration", ("k",)
    )
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((96, 96))

    def spin():
        while True:  # capture() stops draining at its deadline
            with obs.span("bench-guard.calibrate"):
                _ = matrix @ matrix
                counter.inc(k="spin")
            yield None

    report = capture(seconds, work=spin())
    path.write_text(report.render_collapsed(), encoding="utf-8")
    obs.configure(enabled=False)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory holding the committed BENCH_*.json copies",
    )
    parser.add_argument(
        "--current", type=Path, default=REPO_ROOT,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression of any ratio field",
    )
    parser.add_argument(
        "--profile-out", type=Path, default=None, metavar="PATH",
        help="on failure, write a collapsed-stack calibration profile here",
    )
    args = parser.parse_args(argv)
    baselines = sorted(args.baseline.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 2
    problems: list[str] = []
    for baseline_path in baselines:
        problems.extend(
            compare_file(
                baseline_path,
                args.current / baseline_path.name,
                args.tolerance,
            )
        )
    checked = ", ".join(p.name for p in baselines)
    if not problems:
        print(f"bench guard: no regressions (checked {checked})")
        return 0
    print("bench guard: PERFORMANCE REGRESSION", file=sys.stderr)
    for problem in problems:
        print(f"  - {problem}", file=sys.stderr)
    if args.profile_out is not None:
        write_failure_profile(args.profile_out)
        print(
            f"wrote calibration profile to {args.profile_out}",
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())

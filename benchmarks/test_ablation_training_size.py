"""Ablation — how many normal runs does Algorithm 1 need?

The paper trains on "N (e.g. 10)" runs without justifying the choice.
Algorithm 1's max-min stability test only removes pairs as N grows, so
the invariant set shrinks monotonically and the surviving pairs get
cleaner: the false-violation rate on held-out normal windows falls with
N while diagnosis accuracy holds.
"""

from repro.eval.experiments import run_training_size_sweep


def test_ablation_training_size(benchmark, cluster, capsys):
    points = benchmark.pedantic(
        lambda: run_training_size_sweep(cluster, reps=3),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Ablation — normal-run training-set size N")
        for p in points:
            print(
                f"  N={p.n_runs:<3} invariants={p.n_invariants:<4} "
                f"false-violation rate={p.false_violation_rate:5.3f}  "
                f"accuracy={p.diagnosis_accuracy:4.2f}"
            )

    # Algorithm 1 only removes pairs as N grows
    counts = [p.n_invariants for p in points]
    assert all(b <= a for a, b in zip(counts, counts[1:]))
    # more training runs -> cleaner invariants on held-out normal data
    assert points[-1].false_violation_rate <= points[0].false_violation_rate
    # the paper's N ~ 8-10 keeps accuracy high
    by_n = {p.n_runs: p for p in points}
    assert by_n[8].diagnosis_accuracy >= 0.75

"""Fig. 2 — CPI and execution time of Wordcount under a CPU disturbance.

Paper claim: an additional 30 % CPU utilisation for 300 s changes neither
the execution time nor the CPI of the running job (spare cores absorb it),
which is why raw utilisation is a misleading KPI and CPI a robust one.
"""

import numpy as np

from repro.eval.experiments import run_fig2_cpi_disturbance
from repro.eval.reporting import format_fig2


def test_fig2_cpi_disturbance(benchmark, cluster, capsys):
    result = benchmark.pedantic(
        lambda: run_fig2_cpi_disturbance(cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_fig2(result))

    lo, hi = result.disturb_window
    base_cpi = float(np.mean(result.baseline_cpi[lo:hi]))
    disturbed_cpi = float(np.mean(result.disturbed_cpi[lo:hi]))
    hogged_cpi = float(
        np.mean(result.hogged_cpi[lo : min(hi, result.hogged_cpi.size)])
    )

    # Shape: the benign disturbance moves neither time nor CPI...
    assert abs(result.disturbed_ticks - result.baseline_ticks) <= 2
    assert disturbed_cpi == np.clip(disturbed_cpi, base_cpi * 0.97, base_cpi * 1.03)
    # ...while genuine CPU contention moves both.
    assert hogged_cpi > base_cpi * 1.15
    assert result.hogged_ticks > result.baseline_ticks

"""Extension — the §5 peer-similarity blind spot.

"Assume one bug exists in the platform; when the bug is triggered by a
certain job, all the nodes behave abnormally in a similar way but the
correlations are not deviated.  In this case, the correlation-based
method will ignore this fault."  (paper §5, on PeerWatch-style methods)

This benchmark implements a PeerWatch-style detector and stages both
scenarios: a node-local CPU-hog (both methods see it) and a cluster-wide
configuration bug whose manifestation is identical on every node
(PeerWatch stays silent; InvarNet-X's per-context models fire everywhere).
"""

from repro.eval.experiments import run_peer_blindspot_experiment


def test_ext_peer_blindspot(benchmark, cluster, capsys):
    result = benchmark.pedantic(
        lambda: run_peer_blindspot_experiment(cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Extension — peer-similarity blind spot (§5)")
        print(
            f"  node-local CPU-hog:   PeerWatch flags "
            f"{result.local_peer_flagged or 'nothing'};  InvarNet-X "
            f"detects: {result.local_invarnet_detected}"
        )
        print(
            f"  cluster-wide bug:     PeerWatch flags "
            f"{result.global_peer_flagged or 'nothing'};  InvarNet-X "
            f"fires on {result.global_invarnet_nodes}"
        )
        scores = ", ".join(
            f"{k}={v:.2f}" for k, v in result.peer_scores_global.items()
        )
        print(f"  PeerWatch scores under the cluster-wide bug: {scores}")

    # the node-local fault is visible to both methods
    assert result.local_peer_flagged == ["slave-2"]
    assert result.local_invarnet_detected
    # the cluster-wide bug escapes peer comparison entirely...
    assert result.global_peer_flagged == []
    # ...but per-context invariant checking fires on most nodes
    assert len(result.global_invarnet_nodes) >= 3

"""Performance benchmark: shared-precompute MIC engine vs pre-PR baseline.

Not part of tier-1 (``testpaths = ["tests"]``); run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_mic_engine.py -q -s

The baseline is :func:`repro.stats._mic_reference.mic_matrix_reference`, a
frozen snapshot of the pre-engine implementation (original Python-loop
equipartition/clumps and log-based entropy gains) that carries only the
tie-collapse keying fix — so the timing delta isolates the engine work and
the value delta isolates floating-point reassociation, which must stay
within 1e-9.

The full benchmark uses the PR's acceptance window — (600, 26), the shape
of a long collectl trace over the paper's 26-metric vocabulary — and
asserts the >= 4x speedup.  The ``smoke`` test is a down-scaled version for
CI: it checks direction (engine no slower than baseline) and equivalence
without pinning a ratio that load-sensitive runners would flake on.
"""

import time

import numpy as np

from repro.stats._mic_reference import mic_matrix_reference
from repro.stats.micfast import mic_matrix_fast

#: Required full-benchmark speedup (PR acceptance criterion).
REQUIRED_SPEEDUP = 4.0
#: Engine-vs-reference agreement bound.
TOLERANCE = 1e-9


def _window(n, m, seed=7):
    """A telemetry-like window: correlated metrics + tie-heavy columns.

    Mixing a low-rank basis produces the coupled-metric structure real
    collectl windows have; two columns are made tie-heavy (a three-level
    categorical and a coarse quantisation) so the benchmark also exercises
    the collapsed-equipartition paths the tie fix touches.
    """
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, max(4, m // 4)))
    mix = rng.normal(size=(base.shape[1], m))
    data = base @ mix + 0.3 * rng.normal(size=(n, m))
    if m > 5:
        data[:, 5] = rng.choice([0.0, 1.0, 2.0], size=n, p=[0.7, 0.2, 0.1])
    if m > 11:
        data[:, 11] = np.round(data[:, 11])
    return data


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class TestMicEngineBenchmark:
    def test_smoke_engine_not_slower_and_equivalent(self, bench_record):
        """CI-sized check: equivalence plus a direction-only timing bound."""
        data = _window(150, 8)
        fast, fast_t = _timed(mic_matrix_fast, data)
        ref, ref_t = _timed(mic_matrix_reference, data)
        diff = float(np.max(np.abs(fast - ref)))
        print(
            f"\n[smoke] engine {fast_t:.3f}s  reference {ref_t:.3f}s  "
            f"speedup {ref_t / fast_t:.2f}x  max|diff| {diff:.3e}"
        )
        bench_record(
            "mic_engine",
            "smoke_150x8",
            engine_seconds=round(fast_t, 6),
            reference_seconds=round(ref_t, 6),
            speedup=round(ref_t / fast_t, 3),
            max_abs_diff=diff,
        )
        assert diff <= TOLERANCE
        assert fast_t <= ref_t

    def test_full_acceptance_window_speedup(self, bench_record):
        """The PR's acceptance bar on the (600, 26) window."""
        data = _window(600, 26)
        fast, fast_t = _timed(mic_matrix_fast, data)
        ref, ref_t = _timed(mic_matrix_reference, data)
        speedup = ref_t / fast_t
        diff = float(np.max(np.abs(fast - ref)))
        print(
            f"\n[full] (600, 26): engine {fast_t:.2f}s  "
            f"reference {ref_t:.2f}s  speedup {speedup:.2f}x  "
            f"max|diff| {diff:.3e}"
        )
        bench_record(
            "mic_engine",
            "full_600x26",
            engine_seconds=round(fast_t, 6),
            reference_seconds=round(ref_t, 6),
            speedup=round(speedup, 3),
            max_abs_diff=diff,
            required_speedup=REQUIRED_SPEEDUP,
        )
        assert diff <= TOLERANCE
        assert speedup >= REQUIRED_SPEEDUP, (
            f"engine speedup {speedup:.2f}x below the required "
            f"{REQUIRED_SPEEDUP}x on the (600, 26) acceptance window"
        )

    def test_parallel_knob_equivalent_on_benchmark_window(self):
        """max_workers changes wall-clock only, never values (the pool may
        legitimately fall back to serial with a RuntimeWarning here)."""
        import warnings

        data = _window(200, 8)
        serial = mic_matrix_fast(data)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pooled = mic_matrix_fast(data, max_workers=2)
        assert np.array_equal(serial, pooled)

"""Ablation — the paper's fixed thresholds ε (violation) and τ (stability).

The paper sets ε = τ = 0.2 without a sensitivity study.  This benchmark
sweeps both and checks the defaults sit in a sane region: a near-zero ε
turns MIC sampling noise into violations (hurting precision), while a very
large ε blinds the system to genuine association shifts (hurting recall).
"""

from repro.core.pipeline import InvarNetXConfig
from repro.eval.experiments import run_config_sweep


def test_ablation_epsilon_tau(benchmark, cluster, capsys):
    configs = {
        "eps=0.05": InvarNetXConfig(epsilon=0.05),
        "eps=0.2 (paper)": InvarNetXConfig(),
        "eps=0.55": InvarNetXConfig(epsilon=0.55),
        "tau=0.05": InvarNetXConfig(tau=0.05),
        "tau=0.5": InvarNetXConfig(tau=0.5),
    }
    results = benchmark.pedantic(
        lambda: run_config_sweep(configs, cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Ablation — violation threshold ε and stability threshold τ")
        for label, result in results.items():
            avg = result.scores["average"]
            print(
                f"  {label:16s} precision={avg.precision:4.2f} "
                f"recall={avg.recall:4.2f} f1={avg.f1:4.2f}"
            )

    default = results["eps=0.2 (paper)"].scores["average"]
    noisy = results["eps=0.05"].scores["average"]
    blind = results["eps=0.55"].scores["average"]
    # the paper's default beats both pathological extremes on F1
    assert default.f1 >= noisy.f1 - 0.02
    assert default.f1 >= blind.f1 - 0.02
    # an over-strict stability test strips the invariant set and costs
    # accuracy relative to the default
    strict_tau = results["tau=0.05"].scores["average"]
    assert default.f1 >= strict_tau.f1 - 0.02

"""Fig. 7 — per-fault diagnosis precision/recall under TPC-DS.

Paper claims: average precision 88.1 % and recall 86 %; Overload and
Suspend are near-perfect (100 % precision, 99 %/98 % recall) because they
violate very many invariants; Lock-R's recall is very low (its violations
differ between runs); Net-drop and Net-delay are mutually confused (the
"signature conflict").
"""

from repro.eval.reporting import format_diagnosis


def test_fig7_tpcds_diagnosis(benchmark, fig7_result, capsys):
    result = benchmark.pedantic(
        lambda: fig7_result, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_diagnosis(result, "Fig. 7 — TPC-DS per-fault accuracy"))

    scores = result.scores
    # overall accuracy in the paper's band
    assert scores["average"].precision > 0.75
    assert scores["average"].recall > 0.65

    # Overload and Suspend are trivially separable (paper: 100 %
    # precision, 99 %/98 % recall).  At small test_reps a single stolen
    # run costs ~0.15 precision, so the bound tolerates one.
    for easy in ("Overload", "Suspend"):
        assert scores[easy].precision >= 0.8, easy
        assert scores[easy].recall >= 0.9, easy

    # Lock-R's non-determinism caps its recall well below the average
    assert scores["Lock-R"].recall <= scores["average"].recall

    # the Net-drop/Net-delay signature conflict: confusions between the
    # two dominate whatever either fault loses
    confusion = result.confusion()
    net_cross = confusion.get(("Net-drop", "Net-delay"), 0) + confusion.get(
        ("Net-delay", "Net-drop"), 0
    )
    net_other = sum(
        count
        for (truth, predicted), count in confusion.items()
        if truth in ("Net-drop", "Net-delay")
        and predicted not in ("Net-drop", "Net-delay", truth)
    )
    assert net_cross >= net_other

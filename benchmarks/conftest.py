"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper.  Repetition
counts default well below the paper's 40-per-fault so the whole suite runs
in minutes; set ``REPRO_TEST_REPS`` (e.g. 38) for a paper-scale run — the
shape assertions are identical at either scale.

The two heavyweight experiments (the Fig. 7/8 campaigns and the Fig. 9/10
three-system comparison) are computed once per session and shared by the
benchmarks that report on them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cluster import HadoopCluster
from repro.eval.experiments import (
    run_fig7_tpcds_diagnosis,
    run_fig8_wordcount_diagnosis,
    run_fig9_fig10_comparison,
)

#: Held-out diagnosis runs per fault (paper: 38).
TEST_REPS = int(os.environ.get("REPRO_TEST_REPS", "6"))

#: Repository root — ``BENCH_*.json`` result files land here so CI can
#: upload them as artifacts next to the sources they describe.
REPO_ROOT = Path(__file__).resolve().parent.parent


def record_bench(name: str, key: str, prefix: str = "BENCH", **fields) -> Path:
    """Persist one benchmark measurement into ``<prefix>_<name>.json``.

    Each file holds one benchmark's results keyed by measurement name;
    re-recording a key overwrites just that key, so a partial run updates
    what it measured and leaves the rest of the file intact.

    Args:
        name: benchmark family (file suffix), e.g. ``mic_engine``.
        key: measurement within the family, e.g. ``full_600x26``.
        prefix: file prefix — ``BENCH`` for speed numbers, ``ACC`` for
            accuracy tracking (the bake-off precision/recall series).
        **fields: the measured values (JSON-serialisable).

    Returns:
        The path written.
    """
    path = REPO_ROOT / f"{prefix}_{name}.json"
    doc = {"benchmark": name, "results": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            existing = None  # unreadable file: rewrite from scratch
        if isinstance(existing, dict) and isinstance(
            existing.get("results"), dict
        ):
            doc = existing
            doc["benchmark"] = name
    doc["results"][key] = fields
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


@pytest.fixture()
def bench_record():
    """The shared benchmark recorder as a fixture (import-free tests)."""
    return record_bench


@pytest.fixture(scope="session")
def cluster() -> HadoopCluster:
    return HadoopCluster()


@pytest.fixture(scope="session")
def fig7_result(cluster):
    return run_fig7_tpcds_diagnosis(cluster, test_reps=TEST_REPS)


@pytest.fixture(scope="session")
def fig8_result(cluster):
    return run_fig8_wordcount_diagnosis(cluster, test_reps=TEST_REPS)


@pytest.fixture(scope="session")
def comparison_results(cluster):
    return run_fig9_fig10_comparison(cluster, test_reps=TEST_REPS)

"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper.  Repetition
counts default well below the paper's 40-per-fault so the whole suite runs
in minutes; set ``REPRO_TEST_REPS`` (e.g. 38) for a paper-scale run — the
shape assertions are identical at either scale.

The two heavyweight experiments (the Fig. 7/8 campaigns and the Fig. 9/10
three-system comparison) are computed once per session and shared by the
benchmarks that report on them.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import HadoopCluster
from repro.eval.experiments import (
    run_fig7_tpcds_diagnosis,
    run_fig8_wordcount_diagnosis,
    run_fig9_fig10_comparison,
)

#: Held-out diagnosis runs per fault (paper: 38).
TEST_REPS = int(os.environ.get("REPRO_TEST_REPS", "6"))


@pytest.fixture(scope="session")
def cluster() -> HadoopCluster:
    return HadoopCluster()


@pytest.fixture(scope="session")
def fig7_result(cluster):
    return run_fig7_tpcds_diagnosis(cluster, test_reps=TEST_REPS)


@pytest.fixture(scope="session")
def fig8_result(cluster):
    return run_fig8_wordcount_diagnosis(cluster, test_reps=TEST_REPS)


@pytest.fixture(scope="session")
def comparison_results(cluster):
    return run_fig9_fig10_comparison(cluster, test_reps=TEST_REPS)

"""Observability overhead — the off switch must actually be free.

Three contracts from DESIGN.md §10/§15:

- **disabled path is allocation-free** — a disabled tracer hands back the
  ``NOOP_SPAN`` singleton and a disabled registry bails on one attribute
  check, so instrumented hot loops allocate nothing inside ``repro.obs``;
- **infer() overhead is within noise** — turning the full layer on
  (spans, counters, histograms) must not move online inference latency
  beyond run-to-run measurement noise;
- **the blackbox honours both** — the disabled flight recorder
  (``NOOP_RECORDER`` behind the fleet's truthiness guard) allocates zero
  bytes, and recording every tick into the bounded ring keeps
  steady-state fleet ingest within noise of running without it.
"""

from __future__ import annotations

import statistics
import time
import tracemalloc

import numpy as np
import pytest

import repro.obs as obs
from repro.core import InvarNetX, OperationContext
from repro.faults.spec import FaultSpec, build_fault


@pytest.fixture(autouse=True)
def obs_off():
    obs.configure(enabled=False)
    obs.reset()
    yield
    obs.configure(enabled=False)
    obs.reset()


class TestDisabledPathAllocationFree:
    def test_disabled_span_and_metric_writes_allocate_nothing(self):
        tracer = obs.tracer()
        registry = obs.metrics_registry()
        counter = registry.counter("bench_total", "", ("k",))
        series = counter.series(k="v")  # pre-bound hot-path handle
        with tracer.span("warmup") as sp:
            if sp:
                sp.set(x=1)
        series.inc()

        tracemalloc.start()
        for _ in range(2000):
            with tracer.span("hot") as sp:
                if sp:
                    sp.set(x=1)
            if obs.enabled():
                counter.inc(k="v")
            series.inc()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()

        obs_bytes = sum(
            trace.size
            for trace in snapshot.traces
            if any("repro/obs" in f.filename for f in trace.traceback)
        )
        assert obs_bytes == 0

    def test_record_disabled_path_bytes(self, bench_record):
        """Persist the zero-allocation measurement for the CI artifact."""
        tracer = obs.tracer()
        registry = obs.metrics_registry()
        series = registry.counter("bench_rec_total", "", ("k",)).series(k="v")
        with tracer.span("warmup"):
            pass
        series.inc()
        tracemalloc.start()
        for _ in range(2000):
            with tracer.span("hot") as sp:
                if sp:
                    sp.set(x=1)
            series.inc()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        obs_bytes = sum(
            trace.size
            for trace in snapshot.traces
            if any("repro/obs" in f.filename for f in trace.traceback)
        )
        bench_record(
            "obs_overhead",
            "disabled_path_2000_iterations",
            obs_bytes=obs_bytes,
            iterations=2000,
        )
        assert obs_bytes == 0

    def test_record_profiler_disabled_path_bytes(self, bench_record):
        """A constructed-but-stopped profiler must cost the workload
        nothing: zero bytes allocated in ``repro.obs.prof`` frames."""
        from repro.obs.prof import SamplingProfiler

        tracer = obs.tracer()
        registry = obs.metrics_registry()
        series = (
            registry.counter("bench_prof_total", "", ("k",)).series(k="v")
        )
        profiler = SamplingProfiler(hz=97.0)  # never started
        with tracer.span("warmup"):
            pass
        series.inc()
        tracemalloc.start()
        for _ in range(2000):
            with tracer.span("hot") as sp:
                if sp:
                    sp.set(x=1)
            series.inc()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        prof_bytes = sum(
            trace.size
            for trace in snapshot.traces
            if any("repro/obs/prof" in f.filename for f in trace.traceback)
        )
        bench_record(
            "obs_overhead",
            "profiler_disabled_2000_iterations",
            obs_prof_bytes=prof_bytes,
            iterations=2000,
        )
        assert not profiler.running
        assert prof_bytes == 0

    def test_record_blackbox_disabled_path_bytes(self, bench_record):
        """The fleet's disabled-recorder guard — ``if recorder:`` against
        the falsy ``NOOP_RECORDER`` — must allocate zero bytes in
        ``repro.obs.blackbox`` frames."""
        from repro.obs.blackbox import NOOP_RECORDER

        recorder = NOOP_RECORDER
        metrics = (0.3, 0.5, 0.2, 0.4)
        if recorder:  # warmup (never taken)
            recorder.record(0, metrics, 1.0, None, "monitoring")
        tracemalloc.start()
        for t in range(2000):
            if recorder:
                recorder.record(t, metrics, 1.0, None, "monitoring")
                recorder.note_transition(t, "monitoring", "collecting")
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        blackbox_bytes = sum(
            trace.size
            for trace in snapshot.traces
            if any(
                "repro/obs/blackbox" in f.filename
                for f in trace.traceback
            )
        )
        bench_record(
            "obs_overhead",
            "blackbox_disabled_2000_iterations",
            obs_blackbox_bytes=blackbox_bytes,
            iterations=2000,
        )
        assert not recorder.enabled
        assert blackbox_bytes == 0

    def test_disabled_span_peak_within_loop_noise(self):
        tracer = obs.tracer()

        def measure(body) -> int:
            tracemalloc.start()
            for _ in range(5000):
                body()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        def empty() -> None:
            pass

        def spanned() -> None:
            with tracer.span("hot"):
                pass

        baseline = measure(empty)
        instrumented = measure(spanned)
        assert instrumented <= baseline + 512


class TestInferOverhead:
    @pytest.fixture(scope="class")
    def infer_setup(self, cluster):
        runs = [cluster.run("wordcount", seed=9000 + i) for i in range(3)]
        ctx = OperationContext(
            "wordcount", "slave-1", cluster.ip_of("slave-1")
        )
        pipe = InvarNetX()
        pipe.train_from_runs(ctx, runs)
        signature = cluster.run(
            "wordcount",
            faults=[build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))],
            seed=9050,
        )
        pipe.train_signature_from_run(ctx, "CPU-hog", signature)
        incident = cluster.run(
            "wordcount",
            faults=[build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))],
            seed=9051,
        )
        window = incident.node("slave-1").metrics[40:64]
        return pipe, ctx, window

    @staticmethod
    def _median_seconds(pipe, ctx, window, reps: int = 9) -> float:
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            pipe.infer(ctx, window)
            times.append(time.perf_counter() - t0)
        return statistics.median(times)

    def test_enabled_infer_within_noise_of_disabled(
        self, infer_setup, bench_record
    ):
        pipe, ctx, window = infer_setup
        pipe.infer(ctx, window)  # warm the MIC cache for both passes
        disabled = self._median_seconds(pipe, ctx, window)
        obs.configure(enabled=True)
        enabled = self._median_seconds(pipe, ctx, window)
        obs.configure(enabled=False)
        bench_record(
            "obs_overhead",
            "infer_enabled_vs_disabled",
            disabled_median_seconds=round(disabled, 6),
            enabled_median_seconds=round(enabled, 6),
            overhead_ratio=round(enabled / disabled, 3) if disabled else None,
        )
        # full instrumentation stays within run-to-run noise (generous
        # bound: 1.5x + 5 ms absolute slack for tiny baselines)
        assert enabled <= disabled * 1.5 + 0.005


class TestBlackboxSteadyStateOverhead:
    """Recording every tick into the flight ring must stay within noise
    of running the fleet without a blackbox (no alarms fire, so no
    bundle commits are in the measured path)."""

    CONTEXTS = 8
    TICKS = 150

    @staticmethod
    def _fleet(blackbox_dir=None):
        from repro.core.anomaly import (
            AnomalyDetector,
            DriftThreshold,
            ThresholdRule,
        )
        from repro.core.invariants import InvariantSet
        from repro.serve import FleetMonitor
        from repro.stats.arima import ARIMAModel, ARIMAOrder
        from repro.store import ContextModels
        from repro.telemetry.metrics import MetricCatalog

        catalog = MetricCatalog(names=("m0", "m1", "m2", "m3"))
        pipe = InvarNetX(catalog=catalog)
        model = ARIMAModel(
            order=ARIMAOrder(0, 1, 0),
            ar=np.empty(0),
            ma=np.empty(0),
            intercept=0.0,
            sigma2=1.0,
        )
        contexts = []
        for i in range(TestBlackboxSteadyStateOverhead.CONTEXTS):
            context = OperationContext("wordcount", f"node-{i}")
            contexts.append(context)
            pipe.store.adopt(
                context.key(),
                ContextModels(
                    context=context,
                    detector=AnomalyDetector.from_artifacts(
                        model,
                        DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5),
                    ),
                    invariants=InvariantSet(
                        pairs=[(0, 1)],
                        baseline=np.array([0.9]),
                        catalog=catalog,
                    ),
                ),
            )
        fleet = FleetMonitor(
            pipe,
            shards=2,
            workers=0,
            window_ticks=8,
            warmup_ticks=12,
            cooldown_ticks=30,
            blackbox_dir=blackbox_dir,
        )
        return fleet, contexts

    def _median_ingest_seconds(
        self, blackbox_dir=None, reps: int = 5
    ) -> float:
        from repro.serve import Tick

        times = []
        row = np.array([0.3, 0.5, 0.2, 0.4])
        for _ in range(reps):
            fleet, contexts = self._fleet(blackbox_dir)
            with fleet:
                batches = [
                    [Tick(context=c, metrics=row, cpi=1.0) for c in contexts]
                    for _ in range(self.TICKS)
                ]
                t0 = time.perf_counter()
                for batch in batches:
                    fleet.ingest(batch)
                times.append(time.perf_counter() - t0)
        return statistics.median(times)

    def test_enabled_recorder_within_noise_of_disabled(
        self, bench_record, tmp_path
    ):
        disabled = self._median_ingest_seconds(None)
        enabled = self._median_ingest_seconds(tmp_path / "incidents")
        bench_record(
            "obs_overhead",
            "blackbox_steady_state_ingest",
            disabled_median_seconds=round(disabled, 6),
            enabled_median_seconds=round(enabled, 6),
            overhead_ratio=round(enabled / disabled, 3) if disabled else None,
            contexts=self.CONTEXTS,
            ticks=self.TICKS,
        )
        # steady state commits nothing; the ring append must stay within
        # run-to-run noise (same generous bound as the infer benchmark)
        assert enabled <= disabled * 1.5 + 0.005

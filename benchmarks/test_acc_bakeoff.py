"""Accuracy regression tracking — the bake-off scored into ``ACC_*.json``.

``BENCH_*.json`` tracks speed across PRs; this records *accuracy* the
same way: the smoke bake-off campaign's precision/recall per cohort
lands in ``ACC_bakeoff.json`` at the repo root, and CI uploads it as an
artifact.  The campaign is fully deterministic (fingerprinted seed
schedule), so a change in these numbers is a behaviour change in the
diagnosis stack, never noise.
"""

from __future__ import annotations

import pytest

from repro.eval.registry import RunRegistry, builtin_spec, compare_cohorts


@pytest.fixture(scope="module")
def bakeoff_registry(tmp_path_factory, cluster) -> RunRegistry:
    root = tmp_path_factory.mktemp("acc-campaigns")
    registry = RunRegistry(root, clock=lambda: 1700000000.0)
    run = registry.execute(builtin_spec("bakeoff-smoke"), cluster)
    assert not run.skipped
    return registry


class TestAccuracyTracking:
    def test_record_bakeoff_precision_recall(
        self, bakeoff_registry, bench_record
    ):
        report = compare_cohorts(
            bakeoff_registry.index,
            "InvarNet-X",
            "ARX",
            spec_name="bakeoff-smoke",
        )
        bench_record(
            "bakeoff",
            "bakeoff_smoke_invarnetx_vs_arx",
            prefix="ACC",
            invarnetx_precision=report.a.precision,
            invarnetx_recall=report.a.recall,
            invarnetx_f1=report.a.f1,
            arx_precision=report.b.precision,
            arx_recall=report.b.recall,
            arx_f1=report.b.f1,
            winner=report.winner,
            test_reps=builtin_spec("bakeoff-smoke").test_reps,
        )
        # the paper's Figs. 9/10 ordering must hold in the recorded file
        assert report.winner == "InvarNet-X"
        assert report.a.precision > report.b.precision
        assert report.a.recall > report.b.recall

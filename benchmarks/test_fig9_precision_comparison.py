"""Fig. 9 — precision: InvarNet-X vs ARX vs no-operation-context.

Paper claims: on Wordcount, InvarNet-X's diagnosis precision is about 9 %
above the ARX baseline (ARX's rigid linear invariants break easily but
produce many similar signatures), and the no-operation-context ablation is
"very disappointing".
"""

from repro.eval.reporting import format_comparison


def test_fig9_precision_comparison(benchmark, comparison_results, capsys):
    results = benchmark.pedantic(
        lambda: comparison_results, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(format_comparison(results))

    mic = results["InvarNet-X"].scores["average"].precision
    arx = results["ARX"].scores["average"].precision
    no_ctx = results["no-context"].scores["average"].precision

    # MIC invariants clearly ahead of ARX in precision (paper: ~9 %)
    assert mic > arx + 0.03
    # operation context is a necessary factor (paper §4.3)
    assert no_ctx < mic - 0.25
    assert no_ctx < arx - 0.15

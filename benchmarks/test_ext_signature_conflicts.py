"""Extension — signature-conflict detection (the paper's §4.3 note).

"InvarNet-X mistakes Net-drop for Net-delay and vice versa sometimes
because these two faults have very similar signatures.  That's a typical
'signature conflict' which will be discussed in our future work."

This benchmark implements that future work: after training the Fig. 8
signature database, :meth:`SignatureDatabase.conflicts` must surface the
Net-drop/Net-delay pair among the strongest conflicts, letting an operator
merge the two into one reported cause.
"""

from repro.core import InvarNetX, OperationContext
from repro.datagen.campaigns import CampaignConfig, FaultCampaign
from repro.eval.experiments import BATCH_FAULT_NAMES


def _build_database(cluster):
    ctx = OperationContext("wordcount", "slave-1", cluster.ip_of("slave-1"))
    campaign = FaultCampaign(
        cluster,
        CampaignConfig(workload="wordcount", test_reps=1, base_seed=150),
        BATCH_FAULT_NAMES,
    )
    pipe = InvarNetX()
    pipe.train_from_runs(ctx, campaign.normal_runs())
    for fault in campaign.faults:
        for run in campaign.train_runs(fault):
            pipe.train_signature_from_run(ctx, fault, run)
    return pipe._slot(ctx).database


def test_ext_signature_conflicts(benchmark, cluster, capsys):
    database = benchmark.pedantic(
        lambda: _build_database(cluster), rounds=1, iterations=1
    )
    conflicts = database.conflicts(threshold=0.85)
    with capsys.disabled():
        print()
        print("Extension — signature conflicts at similarity >= 0.85")
        for a, b, score in conflicts[:8]:
            print(f"  {a:10s} ~ {b:10s} similarity={score:.3f}")

    pairs = {(a, b) for a, b, _ in conflicts}
    assert ("Net-delay", "Net-drop") in pairs
    # conflicts are rare: most fault pairs stay well-separated
    n_problems = len(database.problems)
    assert len(conflicts) < n_problems * (n_problems - 1) / 2 * 0.4

"""Ablation — the signature-similarity measure.

The paper delegates similarity to its prior work without specifying the
measure.  This reproduction defaults to the simple-matching coefficient
because broad signatures (Suspend violates nearly everything) swallow
narrower faults under Jaccard, which ignores agreeing zeros.  The
benchmark quantifies that choice on identical campaign data.
"""

from repro.core.pipeline import InvarNetXConfig
from repro.eval.experiments import run_config_sweep


def test_ablation_similarity_measure(benchmark, cluster, capsys):
    configs = {
        "matching": InvarNetXConfig(similarity="matching"),
        "jaccard": InvarNetXConfig(similarity="jaccard", min_similarity=0.1),
        "ensemble": InvarNetXConfig(
            similarity="ensemble", min_similarity=0.3
        ),
    }
    results = benchmark.pedantic(
        lambda: run_config_sweep(configs, cluster),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Ablation — signature similarity measure")
        for label, result in results.items():
            avg = result.scores["average"]
            print(
                f"  {label:9s} precision={avg.precision:4.2f} "
                f"recall={avg.recall:4.2f} f1={avg.f1:4.2f}"
            )

    matching = results["matching"].scores["average"]
    jaccard = results["jaccard"].scores["average"]
    # matching similarity is at least as good overall
    assert matching.f1 >= jaccard.f1 - 0.03

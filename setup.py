"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` work via
``setup.py develop``.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

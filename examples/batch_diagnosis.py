#!/usr/bin/env python
"""Batch-workload diagnosis campaign (the paper's Fig. 8 scenario).

Runs a small version of the §4 evaluation protocol on the Wordcount batch
workload: for each of the 14 applicable faults, two injected runs train the
signature database and several held-out runs are diagnosed; per-fault
precision/recall are printed the way Fig. 8 reports them.

Expect Lock-R to score poorly on recall (its manifestation is random per
run) and Net-drop/Net-delay to steal each other's runs — both behaviours
are documented findings of the paper.

Run with:  python examples/batch_diagnosis.py          (quick, ~1 min)
           python examples/batch_diagnosis.py --reps 10 (closer to paper)
"""

import argparse

from repro import HadoopCluster, InvarNetX, OperationContext
from repro.datagen.campaigns import CampaignConfig, FaultCampaign
from repro.eval.experiments import BATCH_FAULT_NAMES, run_diagnosis_experiment
from repro.eval.reporting import format_diagnosis


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reps", type=int, default=4,
        help="held-out diagnosis runs per fault (paper: 38)",
    )
    parser.add_argument(
        "--workload", default="wordcount",
        choices=("wordcount", "sort", "grep", "bayes"),
    )
    args = parser.parse_args()

    cluster = HadoopCluster()
    context = OperationContext(
        args.workload, "slave-1", cluster.ip_of("slave-1")
    )
    campaign = FaultCampaign(
        cluster,
        CampaignConfig(
            workload=args.workload, test_reps=args.reps, base_seed=80
        ),
        BATCH_FAULT_NAMES,
    )
    print(f"Training on {campaign.config.n_normal} normal runs and "
          f"{campaign.config.train_reps} signature runs per fault; "
          f"diagnosing {args.reps} held-out runs per fault...")
    result = run_diagnosis_experiment(
        InvarNetX(), campaign, context, system_label="InvarNet-X"
    )
    print()
    print(format_diagnosis(
        result, f"Per-fault diagnosis accuracy — {args.workload}"
    ))
    print()
    print("Confusions (truth -> predicted):")
    for (truth, predicted), count in sorted(result.confusion().items()):
        if truth != predicted:
            print(f"  {truth:10s} -> {predicted:12s} x{count}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Observability: watching the diagnoser itself (``repro.obs``).

The rest of the examples watch a *cluster*; this one watches the
*diagnoser* — the reproduction's own training and inference pipeline:

- one ``configure`` call turns on spans, metrics, and structured logs;
- the span tree shows where training time actually went (the MIC sweep
  dominates, exactly as the paper's Table 1 reports);
- the metrics registry exports the run as JSON or Prometheus text;
- ``explain_run`` prints the full evidence behind a diagnosis — the
  per-cause similarity breakdown, every violated invariant pair with its
  delta against ε, and the CPI residuals around the alarm tick (this is
  what ``invarnetx explain`` prints from the command line).

Run with:  python examples/observability.py
"""

import repro.obs as obs
from repro import HadoopCluster, InvarNetX, OperationContext
from repro.faults.spec import FaultSpec, build_fault


def main() -> None:
    # one switch: spans + metrics on, structured logs at INFO to stderr
    obs.configure(enabled=True, log_level="info")

    cluster = HadoopCluster()
    context = OperationContext(
        "wordcount", "slave-1", ip=cluster.ip_of("slave-1")
    )
    pipeline = InvarNetX()

    print("== training (watch the structured log lines on stderr)")
    normal = [cluster.run("wordcount", seed=80 + i) for i in range(6)]
    pipeline.train_from_runs(context, normal)
    fault = build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))
    pipeline.train_signature_from_run(
        context, "CPU-hog", cluster.run("wordcount", faults=[fault], seed=90)
    )

    print("== where did the time go?  (the span tree)")
    print(obs.render_trace())
    tracer = obs.tracer()
    mic = tracer.total("mic.sweep")
    arima = tracer.total("arima.fit")
    print(f"   MIC sweeps: {mic * 1000:.1f} ms total, "
          f"ARIMA fits: {arima * 1000:.1f} ms total")

    print("== diagnosing an incident")
    obs.reset()  # keep the next trace focused on the online path
    incident = cluster.run("wordcount", faults=[fault], seed=91)
    result = pipeline.diagnose_run(context, incident)
    print(f"   detected={result.detected} root_cause={result.root_cause}")
    print(obs.render_trace())

    print("== the metrics registry (Prometheus text exposition)")
    print(obs.metrics_registry().render_prometheus())

    print("== the evidence report (invarnetx explain)")
    explanation = obs.explain_run(pipeline, context, incident)
    assert explanation is not None
    print(explanation.render_text())

    obs.configure(enabled=False)


if __name__ == "__main__":
    main()

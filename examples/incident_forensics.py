#!/usr/bin/env python
"""Incident forensics: the flight recorder, correlation, and replay.

Demonstrates the observability capstone (``repro.obs.blackbox`` +
``repro.serve.incidents``):

- a :class:`FleetMonitor` runs with a **blackbox directory**: every lane
  carries a bounded flight ring of raw ticks, drift verdicts and
  state-machine transitions, and every diagnosis is committed as a
  content-fingerprinted **incident bundle** (manifest written last — the
  atomic commit point);
- a platform fault hitting several nodes at once produces one bundle per
  diagnosed lane; the **correlator** stitches them back into a single
  classified *platform incident* (the same view ``invarnetx incidents
  list`` prints);
- ``replay_bundle`` rebuilds the whole pipeline *from one bundle alone*
  and proves the diagnosis reproduces byte for byte — twice — exactly
  what ``invarnetx replay <bundle>`` does.

The models are hand-built so the example runs in about a second.

Run with:  python examples/incident_forensics.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.invariants import InvariantSet
from repro.obs.blackbox import load_bundle, replay_bundle
from repro.serve import FleetMonitor, Tick
from repro.serve.incidents import (
    correlate,
    render_incident_list,
    render_incident_show,
    scan_bundles,
    summarize,
)
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

NODES = [f"slave-{i}" for i in range(1, 5)]
FAULTY = {"slave-1", "slave-2", "slave-3"}  # one healthy bystander
CATALOG = MetricCatalog(names=("cpu_user", "mem_used", "disk_rd", "net_rx"))


def build_registry() -> InvarNetX:
    """One trained context per node: a "same as last tick" ARIMA drift
    detector, two likely invariants, and a disk-hog signature."""
    pipeline = InvarNetX(catalog=CATALOG)
    model = ARIMAModel(
        order=ARIMAOrder(0, 1, 0),
        ar=np.empty(0),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    for node in NODES:
        context = OperationContext("wordcount", node)
        detector = AnomalyDetector.from_artifacts(
            model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
        )
        invariants = InvariantSet(
            pairs=[(0, 1), (2, 3)],
            baseline=np.array([0.9, 0.8]),
            catalog=CATALOG,
        )
        models = ContextModels(
            context=context, detector=detector, invariants=invariants
        )
        models.database.add(
            np.array([True, False]), "disk-hog", workload="wordcount"
        )
        pipeline.store.adopt(context.key(), models)
    return pipeline


def batch(tick: int) -> list[Tick]:
    """One fleet-wide telemetry batch; the fault starts at tick 14."""
    ticks = []
    for node in NODES:
        fault = node in FAULTY and tick >= 14
        cpi = 1.0 + (tick - 13) * 1.0 if fault else 1.0
        ticks.append(
            Tick(
                context=OperationContext("wordcount", node),
                metrics=np.array([0.3, 0.5, 0.2, 0.4]) + tick * 0.01,
                cpi=cpi,
            )
        )
    return ticks


def main() -> None:
    incidents_dir = Path(tempfile.mkdtemp(prefix="invarnetx-")) / "incidents"
    fleet = FleetMonitor(
        build_registry(),
        shards=2,
        workers=0,
        window_ticks=8,
        warmup_ticks=12,
        cooldown_ticks=30,
        blackbox_dir=incidents_dir,
    )

    # ------------------------------------------- the platform fault
    print("== ingesting 22 ticks; CPI ramp on 3 of 4 nodes from tick 14")
    with fleet:
        for tick in range(22):
            result = fleet.ingest(batch(tick), request_id=f"req-{tick:03d}")
            for event in result.events:
                name = type(event.event).__name__
                print(f"tick {tick:>2d}: {name} on {event.context}")
        print(f"incident bundles committed: {fleet.bundles_committed}")

    # --------------------------------- fleet-wide incident correlation
    records = scan_bundles(incidents_dir)
    incidents = correlate(records)
    print("\n== invarnetx incidents list")
    print(render_incident_list(incidents))
    print("\n== invarnetx incidents show P01")
    print(render_incident_show(incidents[0]))
    summary = summarize(records)
    print(
        f"\n{summary['bundles']} bundles -> "
        f"{summary['platform_incidents']} platform incident(s), "
        f"classes {summary['classes']}"
    )

    # -------------------------------------------- deterministic replay
    bundle_path = records[0].path
    bundle = load_bundle(bundle_path)
    print(f"\n== invarnetx replay {bundle.bundle_id}")
    print(f"flight ring: {len(bundle.load_flight().ticks)} ticks recorded")
    result = replay_bundle(bundle_path)  # two independent passes
    print(result.render_text())
    assert result.ok, result.mismatches
    print("\ndone: the alarm is now a shippable, reproducible test case")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Interactive-workload diagnosis: the TPC-DS mixed-query scenario.

The paper's second workload class (§1 challenge b) is interactive: eight
TPC-DS query templates running concurrently in a mixed mode.  Interactive
mixes never "finish", so the cluster observes a fixed window, and the
operation context keeps a dedicated model — the mixed queries make both the
ARIMA model and the invariants noisier than a single batch job's, which is
why the paper finds batch signatures are higher quality (§4.3).

This example trains the TPC-DS context and walks two incidents:

- an Overload (too many concurrent queries) — trivially separable, the
  paper reports 100 % precision for it;
- a DataNode Suspend — also near-perfectly separable.

Run with:  python examples/interactive_tpcds.py
"""

from repro import HadoopCluster, InvarNetX, OperationContext
from repro.faults.spec import FaultSpec, build_fault


def main() -> None:
    cluster = HadoopCluster()
    context = OperationContext(
        workload="tpcds", node_id="slave-2", ip=cluster.ip_of("slave-2")
    )
    pipeline = InvarNetX()

    print("== training the tpcds@slave-2 operation context")
    normal = [cluster.run("tpcds", seed=300 + i) for i in range(8)]
    pipeline.train_from_runs(context, normal)

    for problem in ("Overload", "Suspend", "CPU-hog"):
        for rep in range(2):
            fault = build_fault(
                problem, FaultSpec("slave-2", start=30, duration=30)
            )
            run = cluster.run("tpcds", faults=[fault], seed=700 + rep)
            pipeline.train_signature_from_run(context, problem, run)

    for incident, seed in (("Overload", 810), ("Suspend", 811)):
        print(f"\n== incident: {incident} injected on slave-2")
        fault = build_fault(
            incident, FaultSpec("slave-2", start=40, duration=30)
        )
        run = cluster.run("tpcds", faults=[fault], seed=seed)
        result = pipeline.diagnose_run(context, run)
        print(f"   detected: {result.detected} "
              f"(tick {result.anomaly.first_problem_tick()})")
        assert result.inference is not None
        for cause in result.inference.causes:
            print(f"   candidate {cause.problem:10s} "
                  f"similarity={cause.score:.3f}")
        verdict = "correct" if result.root_cause == incident else "WRONG"
        print(f"   diagnosis: {result.root_cause} ({verdict})")

    # The violated-pair hints are the operator's fallback view.
    print("\n== operator hints for the last incident (violated invariants)")
    assert result.inference is not None
    for a, b in result.inference.hints[:8]:
        print(f"   {a}  ~  {b}")
    remaining = len(result.inference.hints) - 8
    if remaining > 0:
        print(f"   ... and {remaining} more")


if __name__ == "__main__":
    main()

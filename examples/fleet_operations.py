#!/usr/bin/env python
"""Operating a serving fleet: metrics, profiling, SLO burn, top.

Picks up where ``examples/fleet_serving.py`` left off — same hand-built
per-node models, same stdlib HTTP server — but this time the point is
the *operations* surface that ships with it (DESIGN.md §14):

- ``GET /metrics``: RED instrumentation of every endpoint in Prometheus
  text format, plus ``X-Request-Id`` request tracing;
- ``GET /debug/prof``: the stdlib sampling profiler aimed at the live
  process, returning a speedscope-loadable profile over HTTP;
- :class:`~repro.obs.slo.SLOTracker`: multi-window burn-rate alerting
  driven here with an injected clock so the burn → recovery transition
  is reproduced deterministically in a few milliseconds;
- ``invarnetx top``: one ``--once`` dashboard frame rendered in-process
  from the same registry the server is writing to.

Run with:  python examples/fleet_operations.py
"""

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.invariants import InvariantSet
from repro.obs import configure, metrics_registry
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnWindow,
    SLOTracker,
    default_objectives,
)
from repro.serve import FleetMonitor, RegistrySource, TopApp, build_server
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

NODES = [f"slave-{i}" for i in range(1, 5)]
CATALOG = MetricCatalog(names=("cpu_user", "mem_used", "disk_rd", "net_rx"))


def build_registry() -> InvarNetX:
    """One trained context per node (same drift detector as the
    serving example)."""
    pipeline = InvarNetX(catalog=CATALOG)
    model = ARIMAModel(
        order=ARIMAOrder(0, 1, 0),
        ar=np.empty(0),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    detector = AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
    )
    invariants = InvariantSet(
        pairs=[(0, 1), (2, 3)],
        baseline=np.array([0.9, 0.8]),
        catalog=CATALOG,
    )
    for node in NODES:
        context = OperationContext("wordcount", node)
        pipeline.store.adopt(
            context.key(),
            ContextModels(
                context=context, detector=detector, invariants=invariants
            ),
        )
    return pipeline


def fetch(base: str, path: str) -> tuple[bytes, dict]:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.read(), dict(resp.headers)


def post_ticks(base: str, ticks: list[dict]) -> None:
    req = urllib.request.Request(
        base + "/ingest",
        data=json.dumps({"ticks": ticks}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        resp.read()


def tick_json(node: str, tick: int) -> dict:
    rng = np.random.default_rng(tick)
    return {
        "workload": "wordcount",
        "node": node,
        "metrics": list(np.round(rng.uniform(0.2, 0.8, size=4), 3)),
        "cpi": 1.0,
    }


def demo_slo_burn(ledger_dir: Path) -> None:
    """Reproduce a burn → recovery transition deterministically: a
    private registry, an injected clock, and windows shrunk from the
    production 5m/1h pair down to seconds."""
    registry = MetricsRegistry(enabled=True)
    requests = registry.counter(
        "invarnetx_http_requests_total",
        "requests",
        ("endpoint", "method", "status"),
    )
    ledger = RunLedger(ledger_dir / "ledger.jsonl", clock=lambda: 0.0)
    now = {"t": 0.0}
    tracker = SLOTracker(
        objectives=[
            o for o in default_objectives() if o.name == "http-errors"
        ],
        registry=registry,
        ledger=ledger,
        windows=(BurnWindow(10.0, 2.0), BurnWindow(60.0, 1.0)),
        clock=lambda: now["t"],
    )
    for _ in range(20):  # healthy baseline
        requests.inc(endpoint="/ingest", method="POST", status="200")
        now["t"] += 1.0
        tracker.observe()
    for _ in range(20):  # an outage: every second request is a 500
        requests.inc(endpoint="/ingest", method="POST", status="200")
        requests.inc(endpoint="/ingest", method="POST", status="500")
        now["t"] += 1.0
        tracker.observe()
        if tracker.burning():
            break
    print(f"  burning objectives during the outage: {tracker.burning()}")
    for _ in range(90):  # recovery: clean traffic until windows drain
        requests.inc(endpoint="/ingest", method="POST", status="200")
        now["t"] += 1.0
        tracker.observe()
    print(f"  burning objectives after recovery:    {tracker.burning()}")
    kinds = [e["kind"] for e in ledger.entries() if "slo" in e["kind"]]
    print(f"  ledger transitions (edge-triggered):  {kinds}")


def main() -> None:
    configure(enabled=True)  # the ops surface *is* the point here
    fleet = FleetMonitor(
        build_registry(),
        shards=2,
        window_ticks=8,
        warmup_ticks=12,
        cooldown_ticks=6,
    )
    server = build_server(fleet)  # ephemeral port
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"== fleet service listening on {base}")

    # ---------------------------------------- traffic + request tracing
    for tick in range(10):
        post_ticks(base, [tick_json(node, tick) for node in NODES])
    body, headers = fetch(base, "/health")
    print(f"request traced as X-Request-Id: {headers['X-Request-Id']}")

    # --------------------------------------------------- GET /metrics
    print("\n== GET /metrics (RED lines for the traffic above)")
    text = fetch(base, "/metrics")[0].decode()
    for line in text.splitlines():
        if line.startswith("invarnetx_http_requests_total"):
            print(f"  {line}")

    # ------------------------------------------------ GET /debug/prof
    print("\n== GET /debug/prof?seconds=0.5 while /ingest is pounded")
    stop = threading.Event()

    def pound() -> None:
        tick = 100
        while not stop.is_set():
            post_ticks(base, [tick_json(node, tick) for node in NODES])
            tick += 1

    pounder = threading.Thread(target=pound, daemon=True)
    pounder.start()
    profile = json.loads(fetch(base, "/debug/prof?seconds=0.5")[0])
    stop.set()
    pounder.join()
    print(
        f"  speedscope schema: {profile['$schema'].rsplit('/', 1)[-1]}, "
        f"{len(profile['profiles'])} thread profiles"
    )

    # ------------------------------------------------- SLO burn rates
    print("\n== SLO burn-rate alerting (injected clock, shrunk windows)")
    with tempfile.TemporaryDirectory() as tmp:
        demo_slo_burn(Path(tmp))

    # --------------------------------------------- one `top` frame
    print("\n== invarnetx top --once (in-process registry source)")
    app = TopApp(RegistrySource(metrics_registry(), fleet=fleet))
    print(app.frame())

    server.shutdown()
    server.server_close()
    fleet.close()
    configure(enabled=False)
    print("done: operations surface exercised end to end")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Cluster-wide fault localization — the paper's Fig. 1 scenario.

Fig. 1 shows the system's core promise: invariant violations appear *on
slave-3*, and searching the signature database answers both questions at
once — which node is faulty and that the cause is a CPU-hog.

This example uses :class:`repro.core.orchestrator.ClusterDiagnoser`, the
centralised deployment mode of §3: one diagnosis service holds a model
set per (workload, node) operation context, fans online diagnosis out
over every data node, and localises the problem to the node whose
detector fired with the most confident signature match.

Run with:  python examples/fault_localization.py
"""

from repro import HadoopCluster
from repro.core.orchestrator import ClusterDiagnoser
from repro.faults.spec import FaultSpec, build_fault


def main() -> None:
    cluster = HadoopCluster()
    diagnoser = ClusterDiagnoser()

    print("== training every slave's operation context (8 normal runs)")
    normal = [cluster.run("wordcount", seed=200 + i) for i in range(8)]
    contexts = diagnoser.train(normal)
    print(f"   trained contexts: {', '.join(str(c) for c in contexts)}")

    print("== teaching each node's signature database CPU-hog and Mem-hog")
    for problem in ("CPU-hog", "Mem-hog"):
        for node in ("slave-1", "slave-2", "slave-3", "slave-4"):
            fault = build_fault(problem, FaultSpec(node, 30, 30))
            run = cluster.run("wordcount", faults=[fault], seed=260)
            diagnoser.train_signature(problem, run, node)

    print("\n== incident: a CPU-hog lands on slave-3 (the Fig. 1 scenario)")
    fault = build_fault("CPU-hog", FaultSpec("slave-3", 30, 30))
    incident = cluster.run("wordcount", faults=[fault], seed=333)
    diagnosis = diagnoser.diagnose(incident)
    for node in diagnosis.nodes:
        status = (
            f"PROBLEM at tick {node.first_problem_tick} -> "
            f"{node.root_cause} (score {node.top_score:.2f})"
            if node.detected
            else "healthy"
        )
        print(f"   {node.node_id}: {status}")
    verdict = diagnosis.verdict()
    assert verdict is not None
    print(f"   verdict: {verdict[1]} on {verdict[0]}")

    print("\n== and a healthy run for contrast")
    healthy = cluster.run("wordcount", seed=334)
    diagnosis = diagnoser.diagnose(healthy)
    print(f"   problem detected anywhere: {diagnosis.problem_detected}")


if __name__ == "__main__":
    main()

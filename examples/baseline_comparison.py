#!/usr/bin/env python
"""Compare InvarNet-X against the ARX baseline and the no-context ablation.

This is the Figs. 9/10 experiment at example scale: the same Wordcount
fault campaign is diagnosed by

- the full InvarNet-X (MIC invariants, per-context models),
- the Jiang et al. baseline (ARX invariant networks), and
- InvarNet-X without operation context (one global model trained on a
  mixture of Wordcount, Sort and TPC-DS).

Expected shape (paper §4.3): MIC precision clearly above ARX with similar
recall; the no-context ablation far behind both.

Run with:  python examples/baseline_comparison.py [--reps N]
"""

import argparse

from repro.cluster import HadoopCluster
from repro.eval.experiments import run_fig9_fig10_comparison
from repro.eval.reporting import format_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reps", type=int, default=6,
        help="held-out runs per fault and system (paper: 38; below ~4 "
        "the ordering is dominated by seed noise)",
    )
    args = parser.parse_args()

    cluster = HadoopCluster()
    print(f"Running the three-system comparison "
          f"({args.reps} test runs per fault)...")
    results = run_fig9_fig10_comparison(cluster, test_reps=args.reps)
    print()
    print(format_comparison(results))
    print()
    for name, result in results.items():
        avg = result.scores["average"]
        print(f"{name}: precision={avg.precision:.3f} "
              f"recall={avg.recall:.3f} f1={avg.f1:.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Warm restart: persist a trained context and rehydrate it elsewhere.

The paper's offline part stores each operation context's (ARIMA model,
invariant set, signature base) triple durably in XML (§3.2/§3.3).  The
model registry makes that a working service property:

1. train a pipeline attached to a :class:`DirectoryStore` — every module's
   output is published to the registry the moment it is trained;
2. simulate a process restart: build a *fresh* pipeline attached to the
   same directory, train nothing;
3. diagnose the same incident with both — the verdicts (and every score)
   are identical, because the registry round-trips the models exactly.

Run with:  python examples/warm_restart.py
"""

import tempfile
from pathlib import Path

from repro import HadoopCluster, InvarNetX, OperationContext
from repro.faults.spec import FaultSpec, build_fault
from repro.store import DirectoryStore


def main() -> None:
    cluster = HadoopCluster()
    context = OperationContext(
        workload="wordcount",
        node_id="slave-1",
        ip=cluster.ip_of("slave-1"),
    )
    with tempfile.TemporaryDirectory() as tmp:
        registry_dir = Path(tmp) / "registry"

        # ------------------------------------------------- first process
        print(f"== process 1: training against the registry {registry_dir.name}/")
        pipeline = InvarNetX.attached_to(DirectoryStore(registry_dir))
        normal_runs = [cluster.run("wordcount", seed=100 + i) for i in range(6)]
        pipeline.train_from_runs(context, normal_runs)
        for problem in ("CPU-hog", "Mem-hog"):
            fault = build_fault(problem, FaultSpec("slave-1", 30, 30))
            run = cluster.run("wordcount", faults=[fault], seed=700)
            pipeline.train_signature_from_run(context, problem, run)
        store = DirectoryStore(registry_dir)
        entry = store.entries()[context.key()]
        print(f"   registry holds {context}: revision {entry['revision']}, "
              f"artifacts: {', '.join(entry['artifacts'])}")

        incident = cluster.run(
            "wordcount",
            faults=[build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))],
            seed=901,
        )
        original = pipeline.diagnose_run(context, incident)
        print(f"   verdict before restart: {original.root_cause} "
              f"(tick {original.anomaly.first_problem_tick()})")

        # ----------------------------------------- "restarted" process 2
        print("== process 2: fresh pipeline, no retraining")
        restarted = InvarNetX.attached_to(DirectoryStore(registry_dir))
        print(f"   is_trained({context}) = {restarted.is_trained(context)}")
        print(f"   known problems: {restarted.known_problems(context)}")
        reloaded = restarted.diagnose_run(context, incident)
        print(f"   verdict after restart:  {reloaded.root_cause} "
              f"(tick {reloaded.anomaly.first_problem_tick()})")

        assert reloaded.root_cause == original.root_cause
        assert (
            reloaded.anomaly.problem_ticks == original.anomaly.problem_ticks
        )
        assert original.inference is not None
        assert reloaded.inference is not None
        scores_match = [
            (a.problem, a.score) for a in original.inference.causes
        ] == [(b.problem, b.score) for b in reloaded.inference.causes]
        print(f"   ranked causes and scores identical: {scores_match}")
        assert scores_match


if __name__ == "__main__":
    main()

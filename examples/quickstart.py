#!/usr/bin/env python
"""Quickstart: train InvarNet-X and diagnose an injected CPU hog.

This walks the full Fig. 3 loop on the simulated cluster:

1. run the Wordcount workload a few times in the normal state;
2. offline part — train the ARIMA performance model and build the MIC
   likely invariants for the (wordcount, slave-1) operation context;
3. teach the signature database two investigated problems;
4. online part — run a job with a co-located CPU hog, detect the CPI
   drift, and rank root causes by signature similarity.

Run with:  python examples/quickstart.py
"""

from repro import HadoopCluster, InvarNetX, OperationContext
from repro.faults.spec import FaultSpec, build_fault


def main() -> None:
    cluster = HadoopCluster()  # 1 master + 4 slaves, the paper's testbed
    context = OperationContext(
        workload="wordcount",
        node_id="slave-1",
        ip=cluster.ip_of("slave-1"),
    )
    pipeline = InvarNetX()

    # ------------------------------------------------------------- offline
    print("== offline: training on 8 normal Wordcount runs")
    normal_runs = [cluster.run("wordcount", seed=100 + i) for i in range(8)]
    pipeline.train_from_runs(context, normal_runs)
    invariants = pipeline.context_models(context).invariants
    assert invariants is not None
    print(f"   likely invariants discovered: {len(invariants)} "
          f"(of {invariants.catalog.pair_count()} metric pairs)")

    print("== offline: learning signatures for two investigated problems")
    for problem in ("CPU-hog", "Mem-hog"):
        for rep in range(2):  # the paper trains on 2 repetitions per fault
            fault = build_fault(
                problem, FaultSpec("slave-1", start=30, duration=30)
            )
            run = cluster.run(
                "wordcount", faults=[fault], seed=500 + rep
            )
            pipeline.train_signature_from_run(context, problem, run)
    print(f"   signature database size: "
          f"{len(pipeline.context_models(context).database)}")

    # -------------------------------------------------------------- online
    print("== online: a healthy run first")
    healthy = cluster.run("wordcount", seed=900)
    result = pipeline.diagnose_run(context, healthy)
    print(f"   problem detected: {result.detected}")

    print("== online: now with a CPU hog co-located on slave-1")
    hog = build_fault("CPU-hog", FaultSpec("slave-1", start=30, duration=30))
    sick = cluster.run("wordcount", faults=[hog], seed=901)
    result = pipeline.diagnose_run(context, sick)
    print(f"   problem detected: {result.detected} "
          f"(first at tick {result.anomaly.first_problem_tick()})")
    assert result.inference is not None
    print("   ranked root causes:")
    for cause in result.inference.causes:
        print(f"     {cause.problem:10s} similarity={cause.score:.3f}")
    print(f"   verdict: {result.root_cause}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Fleet serving: one process multiplexing many monitored contexts.

Demonstrates the production-shaped serving layer (``repro.serve``):

- a :class:`FleetMonitor` lazily builds one streaming monitor per
  ``(workload, node)`` context from a shared model store, sharded for
  concurrent ingest;
- the stdlib HTTP/JSON API (the same one ``invarnetx serve`` runs) is
  driven end to end: telemetry batches through ``POST /ingest``, fleet
  introspection through ``GET /health`` and ``GET /contexts``, and the
  full incident evidence report through ``GET /explain/<context>``;
- a staggered fault across the fleet shows per-context alarms and
  diagnoses coming back in the ingest replies.

The models are hand-built (an ARIMA "same as last tick" drift detector
per node) so the example runs in about a second; swap the store for a
trained :class:`DirectoryStore` registry to serve real models.

Run with:  python examples/fleet_serving.py
"""

import json
import threading
import urllib.request

import numpy as np

from repro import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.invariants import InvariantSet
from repro.serve import FleetMonitor, build_server
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

NODES = [f"slave-{i}" for i in range(1, 7)]
CATALOG = MetricCatalog(names=("cpu_user", "mem_used", "disk_rd", "net_rx"))


def build_registry() -> InvarNetX:
    """A pipeline whose store holds one trained context per node."""
    pipeline = InvarNetX(catalog=CATALOG)
    model = ARIMAModel(
        order=ARIMAOrder(0, 1, 0),
        ar=np.empty(0),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    detector = AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
    )
    invariants = InvariantSet(
        pairs=[(0, 1), (2, 3)],
        baseline=np.array([0.9, 0.8]),
        catalog=CATALOG,
    )
    for node in NODES:
        context = OperationContext("wordcount", node)
        pipeline.store.adopt(
            context.key(),
            ContextModels(
                context=context, detector=detector, invariants=invariants
            ),
        )
    return pipeline


def post(base: str, path: str, payload: dict) -> dict:
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read())


def get(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.read()


def tick_json(node: str, tick: int, cpi: float) -> dict:
    rng = np.random.default_rng(tick)
    return {
        "workload": "wordcount",
        "node": node,
        "metrics": list(np.round(rng.uniform(0.2, 0.8, size=4), 3)),
        "cpi": cpi,
    }


def main() -> None:
    fleet = FleetMonitor(
        build_registry(),
        shards=4,
        window_ticks=8,
        warmup_ticks=12,
        cooldown_ticks=6,
    )
    server = build_server(fleet)  # ephemeral port
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"== fleet service listening on {base}")

    # ------------------------------------------------- healthy telemetry
    for tick in range(14):
        post(
            base,
            "/ingest",
            {"ticks": [tick_json(node, tick, 1.0) for node in NODES]},
        )
    health = json.loads(get(base, "/health"))
    print(
        f"after warm-up: {health['contexts']} contexts resident on "
        f"{health['shards']} shards"
    )
    states = json.loads(get(base, "/contexts"))["contexts"]
    print(f"lane states: {sorted(set(states.values()))}")

    # --------------------------------------- a CPI ramp on slave-3 only
    print("\n== injecting a CPI ramp on wordcount@slave-3")
    faulty = "slave-3"
    value = 1.0
    for tick in range(14, 26):
        value += 1.0
        ticks = [
            tick_json(node, tick, value if node == faulty else 1.0)
            for node in NODES
        ]
        reply = post(base, "/ingest", {"ticks": ticks})
        for event in reply["events"]:
            if event["type"] == "alarm":
                print(f"tick {event['tick']:>2d}: ALARM on {event['context']}")
            else:
                print(
                    f"tick {event['tick']:>2d}: diagnosis on "
                    f"{event['context']} (alarm was tick "
                    f"{event['alarm_tick']})"
                )

    # ---------------------------------------------- evidence on demand
    print(f"\n== GET /explain/wordcount@{faulty}")
    report = get(base, f"/explain/wordcount@{faulty}").decode()
    print("\n".join(report.splitlines()[:12]))

    server.shutdown()
    server.server_close()
    fleet.close()
    print("\ndone: fleet served", health["contexts"], "contexts in-process")


if __name__ == "__main__":
    main()

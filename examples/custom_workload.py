#!/usr/bin/env python
"""Extending the system: a user-defined workload and a user-defined fault.

The paper leaves "other workloads for the future work" (§4.1); this
example shows the extension points a downstream user has:

- define a new :class:`WorkloadProfile` (here "pagerank", an iterative,
  network-chatty computation unlike any built-in profile);
- define a new :class:`Fault` (here a garbage-collection storm: periodic
  stop-the-world pauses that freeze the job and burn cycles);
- train an operation context for the new workload and diagnose the new
  fault with the unmodified pipeline.

Run with:  python examples/custom_workload.py
"""

import numpy as np

from repro import HadoopCluster, InvarNetX, OperationContext
from repro.cluster.demand import ResourceDemand
from repro.cluster.node import FaultModifiers
from repro.cluster.workloads import PhaseSpec, WorkloadProfile, WorkloadType
from repro.faults.spec import Fault, FaultSpec
from repro.telemetry.collectl import MetricEffects

# ----------------------------------------------------------------------
# a new workload: iterative PageRank (compute + heavy peer exchange)
# ----------------------------------------------------------------------
PAGERANK = WorkloadProfile(
    name="pagerank",
    kind=WorkloadType.BATCH,
    base_cpi=1.25,
    phases=(
        PhaseSpec("map", 45, ResourceDemand(
            cpu=0.60, mem_mb=7_500, disk_read_kbs=18_000,
            disk_write_kbs=3_000, net_rx_kbs=22_000, net_tx_kbs=22_000,
        )),
        PhaseSpec("shuffle", 20, ResourceDemand(
            cpu=0.25, mem_mb=8_000, disk_read_kbs=4_000,
            disk_write_kbs=6_000, net_rx_kbs=40_000, net_tx_kbs=40_000,
        )),
        PhaseSpec("reduce", 25, ResourceDemand(
            cpu=0.50, mem_mb=8_500, disk_read_kbs=3_000,
            disk_write_kbs=14_000, net_rx_kbs=8_000, net_tx_kbs=4_000,
        )),
    ),
)


# ----------------------------------------------------------------------
# a new fault: GC storms (stop-the-world pauses under heap pressure)
# ----------------------------------------------------------------------
class GcStormFault(Fault):
    """Periodic stop-the-world collections: the JVM freezes for part of
    every interval, retired instructions stall, minor page faults surge
    as survivor spaces are walked, and progress drops — yet no external
    process consumes anything."""

    name = "GC-storm"

    def _modifiers(self, tick: int, rng: np.random.Generator) -> FaultModifiers:
        pausing = (tick % 3 == 0)  # one collection every ~30 s
        return FaultModifiers(
            activity_factor=0.5 if pausing else 1.0,
            cpi_factor=1.45 if pausing else 1.10,
            progress_factor=0.6,
        )

    def _metric_effects(self, tick: int, rng: np.random.Generator) -> MetricEffects:
        surge = 4_000.0 if tick % 3 == 0 else 800.0
        return MetricEffects(
            add={"pgfault_per_sec": surge * float(rng.uniform(0.7, 1.3))},
            noise={"mem_cached_mb": 0.08},
        )


def main() -> None:
    cluster = HadoopCluster()
    context = OperationContext(
        "pagerank", "slave-1", cluster.ip_of("slave-1")
    )
    pipeline = InvarNetX()

    print("== training the custom pagerank@slave-1 context")
    normal = [cluster.run(PAGERANK, seed=20 + i) for i in range(8)]
    pipeline.train_from_runs(context, normal)
    invariants = pipeline.context_models(context).invariants
    assert invariants is not None
    print(f"   invariants discovered for the new workload: {len(invariants)}")

    print("== learning the custom GC-storm signature (plus CPU-hog for "
          "contrast)")
    from repro.faults.spec import build_fault

    for problem, factory in (
        ("GC-storm", lambda: GcStormFault(FaultSpec("slave-1", 30, 30))),
        ("CPU-hog", lambda: build_fault(
            "CPU-hog", FaultSpec("slave-1", 30, 30))),
    ):
        for rep in range(2):
            run = cluster.run(PAGERANK, faults=[factory()], seed=70 + rep)
            pipeline.train_signature_from_run(context, problem, run)

    print("== diagnosing fresh incidents of both problems")
    for problem, factory in (
        ("GC-storm", lambda: GcStormFault(FaultSpec("slave-1", 30, 30))),
        ("CPU-hog", lambda: build_fault(
            "CPU-hog", FaultSpec("slave-1", 30, 30))),
    ):
        run = cluster.run(PAGERANK, faults=[factory()], seed=90)
        result = pipeline.diagnose_run(context, run)
        verdict = "correct" if result.root_cause == problem else "WRONG"
        print(f"   injected {problem:8s} -> diagnosed "
              f"{result.root_cause} ({verdict})")


if __name__ == "__main__":
    main()

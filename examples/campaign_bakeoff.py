#!/usr/bin/env python
"""A registry-backed bake-off: InvarNet-X vs ARX from committed runs.

The campaign registry (``repro.eval.registry``) turns an experiment into
a durable artifact: one ``runs/<run_id>/`` directory per campaign spec
fingerprint, an atomically-committed manifest, a ``run_table.csv`` and a
cross-run SQLite index.  This example

1. executes the ``bakeoff-smoke`` builtin spec (InvarNet-X and the ARX
   baseline over eight confusable faults) into a registry directory,
2. re-executes it to show the idempotency guarantee (same fingerprint →
   the committed run is reused, nothing re-runs), and
3. scores the two cohorts against each other *from the index alone* —
   the Figs. 9/10 question answered without touching the cluster again.

The same registry is reachable from the command line:

    invarnetx runs run --dir runs-registry --spec bakeoff-smoke
    invarnetx runs compare InvarNet-X ARX --dir runs-registry

Run with:  python examples/campaign_bakeoff.py [--dir runs-registry]
"""

import argparse
from pathlib import Path

from repro.eval.registry import RunRegistry, builtin_spec, compare_cohorts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", type=Path, default=Path("runs-registry"),
        help="registry root (created on first run; committed runs under "
        "<dir>/runs/, cross-run index at <dir>/index.sqlite)",
    )
    args = parser.parse_args()

    registry = RunRegistry(args.dir)
    spec = builtin_spec("bakeoff-smoke")
    print(f"Executing campaign {spec.run_id} "
          f"({len(spec.faults)} faults x {spec.test_reps} held-out runs, "
          f"systems: {', '.join(s.label for s in spec.systems)})...")
    run = registry.execute(spec)
    verb = "reused committed" if run.skipped else "committed"
    print(f"{verb} run at {run.run_dir}")

    # Second execution: the fingerprint in the run id proves the
    # committed run answers this exact spec, so nothing happens.
    again = registry.execute(spec)
    assert again.skipped, "same spec fingerprint must reuse the run"
    print("re-execution skipped (same spec fingerprint)")

    print()
    report = compare_cohorts(
        registry.index, "InvarNet-X", "ARX", spec_name=spec.name
    )
    print(report.render_text())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Online monitoring: streaming detection and model persistence.

Demonstrates the deployment-shaped API:

- the detector consumes CPI samples one at a time (``check_next``), the
  way a 10-second collection loop would feed it;
- the three threshold rules of §3.2 are compared on the same stream;
- trained artifacts are persisted to the paper's XML formats and reloaded,
  showing that a diagnosis node can be restarted without retraining.

Run with:  python examples/online_monitoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HadoopCluster, InvarNetX, OperationContext, ThresholdRule
from repro.core.persistence import load_performance_model, load_signatures
from repro.faults.spec import FaultSpec, build_fault


def main() -> None:
    cluster = HadoopCluster()
    context = OperationContext(
        "sort", "slave-1", ip=cluster.ip_of("slave-1")
    )
    pipeline = InvarNetX()

    print("== training the sort@slave-1 context")
    normal = [cluster.run("sort", seed=40 + i) for i in range(8)]
    pipeline.train_from_runs(context, normal)
    fault = build_fault("Mem-hog", FaultSpec("slave-1", 50, 30))
    pipeline.train_signature_from_run(
        context, "Mem-hog", cluster.run("sort", faults=[fault], seed=60)
    )

    # ----------------------------------------------------------- streaming
    print("== streaming monitor (one telemetry sample per 10s tick)")
    from repro.core.online import AlarmEvent, DiagnosisEvent, OnlineMonitor

    incident = cluster.run("sort", faults=[fault], seed=61)
    node = incident.node("slave-1")
    cpi = node.cpi
    monitor = OnlineMonitor(pipeline, context)
    for t in range(node.ticks):
        event = monitor.observe(node.metrics[t], float(cpi[t]))
        if isinstance(event, AlarmEvent):
            print(f"   tick {event.tick}: ALARM — three consecutive "
                  f"anomalous CPI samples (fault began at tick 50)")
        elif isinstance(event, DiagnosisEvent):
            print(f"   tick {event.tick}: abnormal window collected; "
                  f"diagnosis = {event.root_cause}")
    detector = pipeline.context_models(context).detector
    assert detector is not None

    print("== same stream under each threshold rule")
    for rule in ThresholdRule:
        report = detector.detect(cpi, rule=rule)
        flagged = int(report.anomalous.sum())
        print(f"   {rule.value:13s} flagged {flagged:3d} ticks, "
              f"problem at {report.first_problem_tick()}")

    # ---------------------------------------------------------- persistence
    print("== persisting the context to the paper's XML formats")
    with tempfile.TemporaryDirectory() as tmp:
        written = pipeline.save_context(context, tmp)
        for path in written:
            print(f"   wrote {Path(path).name} "
                  f"({Path(path).stat().st_size} bytes)")
        model, threshold, ctx = load_performance_model(
            Path(tmp) / "model_sort_slave-1.xml"
        )
        db = load_signatures(Path(tmp) / "signatures_sort_slave-1.xml")
        print(f"   reloaded ARIMA{tuple(model.order)} for {ctx} with "
              f"threshold {threshold.upper:.4f} and {len(db)} signature(s)")
        predicted = model.predict_next(cpi[:40])
        print(f"   reloaded model one-step prediction at tick 40: "
              f"{predicted:.3f} (observed {cpi[40]:.3f})")


if __name__ == "__main__":
    main()

"""Smoke test: the quickstart example must run clean end to end.

The longer examples are exercised implicitly (they call the same
experiment runners the benchmarks cover); the quickstart is the first
thing a new user runs, so it gets an explicit gate.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs_and_diagnoses():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "verdict: CPU-hog" in proc.stdout
    assert "problem detected: False" in proc.stdout  # the healthy run


def test_fleet_serving_runs_end_to_end():
    """The serving example is hand-built-model fast, so it runs live:
    it exercises the whole HTTP surface in one subprocess."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "fleet_serving.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "ALARM on wordcount@slave-3" in proc.stdout
    assert "diagnosis on wordcount@slave-3" in proc.stdout
    assert "incident explanation: wordcount@slave-3" in proc.stdout


def test_fleet_operations_runs_end_to_end():
    """The operations example is hand-built-model fast too: metrics,
    live profiling, the SLO burn transition and a `top` frame."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "fleet_operations.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "X-Request-Id" in proc.stdout
    assert 'invarnetx_http_requests_total{endpoint="/ingest"' in proc.stdout
    assert "speedscope schema" in proc.stdout
    assert "['slo-burn', 'slo-recovered']" in proc.stdout
    assert "fleet serving dashboard" in proc.stdout


def test_all_examples_compile():
    """Every example parses (full runs are exercised manually/CI-nightly)."""
    import py_compile

    for script in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(script), doraise=True)


def test_incident_forensics_runs_end_to_end():
    """The forensics example is hand-built-model fast: the blackbox
    commits bundles, the correlator folds them into one platform
    incident, and the replay reproduces the diagnosis byte for byte."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "incident_forensics.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "incident bundles committed: 3" in proc.stdout
    assert "P01  shared-workload  3 bundle(s)" in proc.stdout
    assert "REPRODUCED" in proc.stdout
    assert "byte-identical" in proc.stdout

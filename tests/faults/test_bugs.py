"""Manifestation tests for the six software-bug faults."""

import numpy as np
import pytest

from repro.faults.bugs import LockRaceFault, RpcHangFault, ThreadLeakFault
from repro.faults.spec import FaultSpec, build_fault

SPEC = FaultSpec("slave-1", start=0, duration=30)


class TestRpcHang:
    def test_stall_pattern_is_per_run(self):
        fault = RpcHangFault(SPEC)
        fault.begin_run(np.random.default_rng(1))
        first = dict(fault._stalled)
        fault.begin_run(np.random.default_rng(2))
        assert first != fault._stalled

    def test_stalls_are_bouts(self, rng):
        """Hangs persist across ticks rather than flickering."""
        fault = RpcHangFault(FaultSpec("slave-1", 0, 2000))
        fault.begin_run(rng)
        flags = [fault._stalled[t] for t in range(2000)]
        transitions = sum(a != b for a, b in zip(flags, flags[1:]))
        assert transitions < 0.6 * len(flags)

    def test_stalled_ticks_hurt_more(self, rng):
        fault = RpcHangFault(SPEC)
        fault.begin_run(rng)
        stalled_t = next(t for t, s in fault._stalled.items() if s)
        ok_t = next(t for t, s in fault._stalled.items() if not s)
        stalled = fault.modifiers(stalled_t, rng)
        healthy = fault.modifiers(ok_t, rng)
        assert stalled.progress_factor < healthy.progress_factor
        assert stalled.activity_factor < healthy.activity_factor


class TestThreadLeak:
    def test_leak_grows_monotonically(self, rng):
        fault = ThreadLeakFault(SPEC)
        fault.begin_run(rng)
        mems = [fault.modifiers(t, rng).external.mem_mb for t in range(30)]
        assert all(b > a for a, b in zip(mems, mems[1:]))

    def test_sockets_accumulate(self, rng):
        fault = ThreadLeakFault(SPEC)
        fault.begin_run(rng)
        early = fault.metric_effects(2, rng).add["sock_used"]
        late = fault.metric_effects(28, rng).add["sock_used"]
        assert late > early * 5

    def test_cpi_degrades_with_leak(self, rng):
        fault = ThreadLeakFault(SPEC)
        fault.begin_run(rng)
        early = np.mean([fault.modifiers(2, rng).cpi_factor for _ in range(50)])
        late = np.mean([fault.modifiers(28, rng).cpi_factor for _ in range(50)])
        assert late > early


class TestLockRace:
    def test_manifestation_is_nondeterministic_across_runs(self):
        """Paper §4.3: Lock-R makes different violations in different
        runs — the source of its low recall."""
        fault = LockRaceFault(SPEC)
        seen = set()
        for seed in range(12):
            fault.begin_run(np.random.default_rng(seed))
            seen.add(frozenset(fault._effects))
        assert len(seen) >= 5

    def test_effect_subset_size_bounds(self):
        fault = LockRaceFault(SPEC)
        for seed in range(20):
            fault.begin_run(np.random.default_rng(seed))
            assert 2 <= len(fault._effects) <= 4

    def test_spinning_always_inflates_cpi(self, rng):
        """All manifestations share the lock-spin CPI cost (detectable)."""
        fault = LockRaceFault(SPEC)
        for seed in range(10):
            fault.begin_run(np.random.default_rng(seed))
            assert fault.modifiers(5, rng).cpi_factor > 1.1


class TestOtherBugs:
    def test_h1036_restart_storms_persist(self, rng):
        fault = build_fault("H-1036", FaultSpec("slave-1", 0, 2000))
        fault.begin_run(rng)
        flags = [fault._crashing[t] for t in range(2000)]
        assert 0.3 < np.mean(flags) < 0.9
        transitions = sum(a != b for a, b in zip(flags, flags[1:]))
        assert transitions < 0.6 * len(flags)

    def test_h1970_jitters_network(self, rng):
        fault = build_fault("H-1970", SPEC)
        fault.begin_run(rng)
        fx = fault.metric_effects(5, rng)
        assert fx.noise["net_tx_kbs"] > 0.2
        assert fx.add["sock_used"] > 0

    def test_block_receiver_collapses_writes(self, rng):
        fault = build_fault("Block-R", SPEC)
        fault.begin_run(rng)
        fx = fault.metric_effects(5, rng)
        assert fx.scale["disk_write_kbs"] < 0.5
        assert fx.scale["net_rx_kbs"] < 0.8

"""Unit tests for the fault base machinery and catalog."""

import pytest

from repro.faults.spec import (
    ALL_FAULTS,
    BATCH_FAULTS,
    INTERACTIVE_FAULTS,
    FaultSpec,
    build_fault,
)


class TestFaultSpec:
    def test_window(self):
        spec = FaultSpec("slave-1", start=30, duration=30)
        assert spec.stop == 60

    def test_paper_default_duration_is_five_minutes(self):
        """§4.1: each fault lasts 5 min = 30 ten-second ticks."""
        assert FaultSpec("slave-1", 0).duration == 30

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("slave-1", start=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("slave-1", start=0, duration=0)


class TestCatalog:
    def test_fifteen_faults(self):
        """§4.1 injects 9 environment faults + 6 software bugs."""
        assert len(ALL_FAULTS) == 15

    def test_paper_names_present(self):
        expected = {
            "CPU-hog", "Mem-hog", "Disk-hog", "Net-drop", "Net-delay",
            "Block-C", "Misconf", "Overload", "Suspend",
            "RPC-hang", "H-9703", "H-1036", "Lock-R", "H-1970", "Block-R",
        }
        assert set(ALL_FAULTS) == expected

    def test_batch_excludes_overload(self):
        assert "Overload" not in BATCH_FAULTS
        assert len(BATCH_FAULTS) == 14

    def test_interactive_includes_all(self):
        assert set(INTERACTIVE_FAULTS) == set(ALL_FAULTS)

    def test_build_fault_unknown_name(self):
        with pytest.raises(KeyError, match="known:"):
            build_fault("Quantum-hog", FaultSpec("slave-1", 0))

    def test_build_fault_roundtrip(self):
        for name in ALL_FAULTS:
            fault = build_fault(name, FaultSpec("slave-2", 10, 20))
            assert fault.name == name
            assert fault.spec.target == "slave-2"


class TestActivation:
    def test_active_only_inside_window(self, rng):
        fault = build_fault("CPU-hog", FaultSpec("slave-1", 10, 5))
        fault.begin_run(rng)
        assert not fault.active(9)
        assert fault.active(10)
        assert fault.active(14)
        assert not fault.active(15)

    def test_modifiers_none_outside_window(self, rng):
        fault = build_fault("Mem-hog", FaultSpec("slave-1", 10, 5))
        fault.begin_run(rng)
        assert fault.modifiers(5, rng) is None
        assert fault.modifiers(12, rng) is not None

    def test_metric_effects_none_outside_window(self, rng):
        fault = build_fault("Net-drop", FaultSpec("slave-1", 10, 5))
        fault.begin_run(rng)
        assert fault.metric_effects(3, rng) is None
        assert fault.metric_effects(11, rng) is not None

"""Manifestation tests for the nine environment faults."""

import numpy as np
import pytest

from repro.faults.environment import CpuDisturbanceFault, OverloadFault
from repro.faults.spec import FaultSpec, build_fault

SPEC = FaultSpec("slave-1", start=0, duration=30)


def _mods(name, rng, tick=5):
    fault = build_fault(name, SPEC)
    fault.begin_run(rng)
    return fault.modifiers(tick, rng)


def _fx(name, rng, tick=5):
    fault = build_fault(name, SPEC)
    fault.begin_run(rng)
    return fault.metric_effects(tick, rng)


class TestHogs:
    def test_cpu_hog_burns_cpu_only(self, rng):
        m = _mods("CPU-hog", rng)
        assert m.external.cpu > 0.5
        assert m.external.disk_read_kbs == 0.0
        assert m.external.net_rx_kbs == 0.0

    def test_cpu_hog_intensity_fluctuates(self, rng):
        fault = build_fault("CPU-hog", SPEC)
        fault.begin_run(rng)
        vals = [fault.modifiers(t, rng).external.cpu for t in range(30)]
        assert np.std(vals) > 0.05

    def test_mem_hog_overcommits(self, rng):
        m = _mods("Mem-hog", rng)
        assert m.external.mem_mb > 9_000

    def test_disk_hog_saturates_disk(self, rng):
        m = _mods("Disk-hog", rng)
        total = m.external.disk_read_kbs + m.external.disk_write_kbs
        assert total > 90_000


class TestNetworkFaults:
    def test_drop_and_delay_share_manifestation_shape(self, rng):
        """The paper's 'signature conflict': near-identical effects."""
        drop = _mods("Net-drop", rng)
        delay = _mods("Net-delay", rng)
        assert drop.net_capacity_factor < 0.3
        assert delay.net_capacity_factor < 0.3
        assert drop.cpi_factor == pytest.approx(delay.cpi_factor, rel=0.15)

    def test_both_raise_retransmissions(self, rng):
        for name in ("Net-drop", "Net-delay"):
            fx = _fx(name, rng)
            assert fx.add["tcp_retrans_per_sec"] > 5.0

    def test_drop_is_burstier_than_delay(self, rng):
        drop = _fx("Net-drop", rng)
        delay = _fx("Net-delay", rng)
        assert drop.noise["net_rx_kbs"] > delay.noise["net_rx_kbs"]


class TestOtherEnvironmentFaults:
    def test_block_corruption_adds_reads_and_refetches(self, rng):
        m = _mods("Block-C", rng)
        assert m.external.disk_read_kbs > 0
        assert m.external.net_rx_kbs > 0
        assert m.progress_factor < 1.0

    def test_misconf_floods_scheduling_metrics(self, rng):
        fx = _fx("Misconf", rng)
        assert fx.add["ctxt_per_sec"] > 3_000
        assert fx.add["intr_per_sec"] > 1_000

    def test_suspend_stops_everything(self, rng):
        m = _mods("Suspend", rng)
        assert m.activity_factor == 0.0
        assert m.progress_factor == 0.0

    def test_overload_extra_concurrency_only_in_window(self, rng):
        fault = OverloadFault(FaultSpec("slave-1", 10, 10))
        fault.begin_run(rng)
        assert fault.extra_concurrency(5) == 0
        assert fault.extra_concurrency(15) == OverloadFault.EXTRA_QUERIES
        assert fault.extra_concurrency(25) == 0

    def test_non_overload_faults_add_no_concurrency(self, rng):
        fault = build_fault("CPU-hog", SPEC)
        assert fault.extra_concurrency(5) == 0


class TestCpuDisturbance:
    def test_not_in_catalog(self):
        """Fig. 2's benign disturbance is not one of the 15 faults."""
        from repro.faults.spec import ALL_FAULTS

        assert "CPU-disturb" not in ALL_FAULTS

    def test_adds_only_modest_cpu(self, rng):
        fault = CpuDisturbanceFault(SPEC)
        fault.begin_run(rng)
        m = fault.modifiers(5, rng)
        assert 0.25 <= m.external.cpu <= 0.35
        assert m.cpi_factor == 1.0
        assert m.progress_factor == 1.0

"""Tests for the fault-severity (intensity) scaling."""

import numpy as np
import pytest

from repro.core.signatures import ensemble_similarity
from repro.faults.spec import FaultSpec, build_fault


def _mods(name, intensity, rng, tick=5):
    fault = build_fault(
        name, FaultSpec("slave-1", 0, 30, intensity=intensity)
    )
    fault.begin_run(rng)
    return fault.modifiers(tick, rng)


class TestIntensityScaling:
    def test_unit_intensity_is_identity(self, rng):
        a = _mods("CPU-hog", 1.0, np.random.default_rng(3))
        b = build_fault("CPU-hog", FaultSpec("slave-1", 0, 30))
        b.begin_run(np.random.default_rng(3))
        raw = b._modifiers(5, np.random.default_rng(3))
        reproduced = _mods("CPU-hog", 1.0, np.random.default_rng(3))
        assert reproduced.external.cpu == pytest.approx(raw.external.cpu)
        assert a.cpi_factor == pytest.approx(raw.cpi_factor)

    def test_external_demand_scales_linearly(self):
        weak = _mods("Mem-hog", 0.5, np.random.default_rng(1))
        strong = _mods("Mem-hog", 2.0, np.random.default_rng(1))
        assert strong.external.mem_mb == pytest.approx(
            weak.external.mem_mb * 4.0
        )

    def test_cpi_factor_scales_geometrically(self):
        base = _mods("Misconf", 1.0, np.random.default_rng(2))
        doubled = _mods("Misconf", 2.0, np.random.default_rng(2))
        assert doubled.cpi_factor == pytest.approx(base.cpi_factor**2)

    def test_capacity_factor_softens_at_low_intensity(self):
        base = _mods("Net-drop", 1.0, np.random.default_rng(4))
        gentle = _mods("Net-drop", 0.5, np.random.default_rng(4))
        assert gentle.net_capacity_factor > base.net_capacity_factor
        assert gentle.net_capacity_factor < 1.0

    def test_hard_zero_progress_fades_in(self):
        full = _mods("Suspend", 1.0, np.random.default_rng(5))
        half = _mods("Suspend", 0.5, np.random.default_rng(5))
        assert full.progress_factor == 0.0
        assert half.progress_factor == pytest.approx(0.5)

    def test_metric_adds_scale_linearly(self):
        weak = build_fault(
            "Misconf", FaultSpec("slave-1", 0, 30, intensity=0.5)
        )
        strong = build_fault(
            "Misconf", FaultSpec("slave-1", 0, 30, intensity=1.5)
        )
        for f in (weak, strong):
            f.begin_run(np.random.default_rng(6))
        fx_weak = weak.metric_effects(5, np.random.default_rng(7))
        fx_strong = strong.metric_effects(5, np.random.default_rng(7))
        assert fx_strong.add["ctxt_per_sec"] == pytest.approx(
            fx_weak.add["ctxt_per_sec"] * 3.0
        )

    def test_invalid_intensity_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("slave-1", 0, 30, intensity=0.0)

    def test_weaker_fault_moves_cpi_less(self, cluster):
        base_run = cluster.run("wordcount", seed=42)
        runs = {}
        for intensity in (0.5, 1.5):
            fault = build_fault(
                "CPU-hog", FaultSpec("slave-1", 30, 30, intensity=intensity)
            )
            runs[intensity] = cluster.run(
                "wordcount", faults=[fault], seed=42
            )
        base = base_run.node("slave-1").cpi[30:60].mean()
        weak = runs[0.5].node("slave-1").cpi[30:60].mean()
        strong = runs[1.5].node("slave-1").cpi[30:60].mean()
        assert base < weak < strong


class TestEnsembleSimilarity:
    def test_between_the_two_components(self):
        from repro.core.signatures import (
            jaccard_similarity,
            matching_similarity,
        )

        a = np.array([True, True, False, False])
        b = np.array([True, False, False, False])
        lo, hi = sorted(
            [jaccard_similarity(a, b), matching_similarity(a, b)]
        )
        assert lo <= ensemble_similarity(a, b) <= hi

    def test_identity(self):
        a = np.array([True, False, True])
        assert ensemble_similarity(a, a) == 1.0

    def test_registered_in_rank(self):
        from repro.core.signatures import SignatureDatabase

        db = SignatureDatabase()
        db.add(np.array([True, False]), "A")
        ranking = db.rank(np.array([True, False]), measure="ensemble")
        assert ranking[0] == ("A", 1.0)

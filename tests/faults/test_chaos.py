"""Tests for chaos schedules and a multi-incident streaming soak."""

import numpy as np
import pytest

from repro.core.online import DiagnosisEvent, OnlineMonitor
from repro.faults.chaos import ChaosSchedule


class TestChaosSchedule:
    def _schedule(self, **kw):
        defaults = dict(
            faults=("CPU-hog", "Mem-hog", "Disk-hog"),
            targets=("slave-1", "slave-2"),
            horizon_ticks=400,
            n_incidents=3,
        )
        defaults.update(kw)
        return ChaosSchedule(**defaults)

    def test_deterministic_per_seed(self):
        a = self._schedule().generate(7)
        b = self._schedule().generate(7)
        assert [(f.name, f.spec) for f in a] == [(g.name, g.spec) for g in b]

    def test_seeds_differ(self):
        a = self._schedule().generate(1)
        b = self._schedule().generate(2)
        assert [(f.name, f.spec.start) for f in a] != [
            (g.name, g.spec.start) for g in b
        ]

    def test_windows_disjoint_with_gap(self):
        faults = self._schedule().generate(11)
        spans = sorted((f.spec.start, f.spec.stop) for f in faults)
        for (_, stop_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b - stop_a >= self._schedule().gap

    def test_all_types_from_pool(self):
        faults = self._schedule().generate(3)
        for f in faults:
            assert f.name in ("CPU-hog", "Mem-hog", "Disk-hog")
            assert f.spec.target in ("slave-1", "slave-2")

    def test_intensity_range_respected(self):
        sched = self._schedule(min_intensity=0.8, max_intensity=1.4)
        for f in sched.generate(5):
            assert 0.8 <= f.spec.intensity <= 1.4

    def test_horizon_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            self._schedule(horizon_ticks=100)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            self._schedule(faults=())


class TestChaosSoak:
    def test_streaming_monitor_survives_multiple_incidents(
        self, cluster, trained_pipeline, wordcount_context
    ):
        """A long interactive-style soak: several sequential incidents on
        one node, each detected and diagnosed as a separate event."""
        schedule = ChaosSchedule(
            faults=("CPU-hog", "Mem-hog"),
            targets=("slave-1",),
            horizon_ticks=400,
            n_incidents=3,
            gap=60,
        )
        faults = schedule.generate(23)
        # a long observation: run tpcds-style by stretching wordcount via
        # a Suspend-free chaos run on the batch job is too short, so use
        # the interactive mix's fixed window instead
        run = cluster.run(
            "wordcount", faults=faults, seed=6700, max_ticks=400
        )
        # the batch job may finish before late incidents; only count the
        # ones that actually landed inside the trace
        landed = [f for f in faults if f.spec.start + 10 < run.ticks]
        monitor = OnlineMonitor(
            trained_pipeline, wordcount_context, cooldown_ticks=15
        )
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        diagnoses = [e for e in events if isinstance(e, DiagnosisEvent)]
        assert len(diagnoses) >= max(len(landed) - 1, 1)
        # each diagnosis names one of the scheduled fault types
        named = {d.root_cause for d in diagnoses}
        assert named <= {"CPU-hog", "Mem-hog", "Disk-hog", "Suspend", None}

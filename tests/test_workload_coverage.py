"""End-to-end coverage of every workload type.

The figures concentrate on Wordcount and TPC-DS; the paper states the
"diagnosis results under other workloads such as Sort are very similar".
These tests hold the pipeline to that across the full catalog, including a
heterogeneous-hardware cluster (§1 challenge c — the operation context is
what absorbs heterogeneity).
"""

import pytest

from repro import HadoopCluster, InvarNetX, NodeSpec, OperationContext
from repro.faults.spec import FaultSpec, build_fault

FAULTS = ("CPU-hog", "Mem-hog", "Suspend")


def _train_and_diagnose(cluster, workload, node, base_seed):
    ctx = OperationContext(workload, node, cluster.ip_of(node))
    pipe = InvarNetX()
    normal = [
        cluster.run(workload, seed=base_seed + i) for i in range(6)
    ]
    pipe.train_from_runs(ctx, normal)
    for fault_name in FAULTS:
        fault = build_fault(fault_name, FaultSpec(node, 30, 30))
        run = cluster.run(
            workload, faults=[fault], seed=base_seed + 50
        )
        pipe.train_signature_from_run(ctx, fault_name, run)
    verdicts = {}
    for fault_name in FAULTS:
        fault = build_fault(fault_name, FaultSpec(node, 30, 30))
        run = cluster.run(
            workload, faults=[fault], seed=base_seed + 90
        )
        verdicts[fault_name] = pipe.diagnose_run(ctx, run).root_cause
    return verdicts


@pytest.mark.parametrize(
    "workload", ["wordcount", "sort", "grep", "bayes", "tpcds"]
)
def test_every_workload_diagnoses_core_faults(cluster, workload):
    verdicts = _train_and_diagnose(cluster, workload, "slave-1",
                                   base_seed=9000)
    correct = sum(1 for f, v in verdicts.items() if v == f)
    assert correct >= 2, verdicts  # at most one seed-noise miss


def test_heterogeneous_cluster_contexts_absorb_hardware():
    """A weak node and a strong node each get their own model; the same
    fault is diagnosed correctly in both contexts."""
    # Heterogeneity of the paper's kind: different CPU/memory classes.
    # (An undersized disk saturates on the workload's own demand, which
    # legitimately degrades ARIMA drift detection — that failure mode is
    # out of scope here.)
    specs = [
        NodeSpec(cores=4, cpu_ghz=1.8, mem_mb=12288, disk_kbs=100_000.0),
        NodeSpec(cores=16, cpu_ghz=2.6, mem_mb=32768, disk_kbs=240_000.0),
    ]
    cluster = HadoopCluster(n_slaves=2, slave_specs=specs)
    for node in ("slave-1", "slave-2"):
        verdicts = _train_and_diagnose(
            cluster, "wordcount", node, base_seed=9500
        )
        correct = sum(1 for f, v in verdicts.items() if v == f)
        assert correct >= 2, (node, verdicts)

"""White-box tests of the MIC machinery (equipartition, clumps, DP).

These target the parts of the MINE approximation where subtle bugs hide:
bin balancing under ties, clump atomicity for repeated x values, the
superclump coarsening bound and the dynamic programme's optimality on
small cases that can be brute-forced.
"""

import importlib
import itertools

import numpy as np
import pytest

_mic = importlib.import_module("repro.stats.mic")


class TestEquipartition:
    def test_balanced_without_ties(self):
        values = np.arange(12, dtype=float)
        assign = _mic._equipartition(values, 3)
        counts = np.bincount(assign)
        assert list(counts) == [4, 4, 4]

    def test_near_balanced_odd_sizes(self):
        values = np.arange(10, dtype=float)
        assign = _mic._equipartition(values, 3)
        counts = np.bincount(assign)
        assert counts.sum() == 10
        assert max(counts) - min(counts) <= 1

    def test_ties_stay_together(self):
        values = np.array([0.0, 0.0, 0.0, 0.0, 1.0, 2.0])
        assign = _mic._equipartition(values, 2)
        assert len(set(assign[:4])) == 1  # the tie block is atomic

    def test_assignment_non_decreasing(self, rng):
        values = np.sort(rng.normal(size=50))
        assign = _mic._equipartition(values, 5)
        assert np.all(np.diff(assign) >= 0)

    def test_two_point_split(self):
        assign = _mic._equipartition(np.array([1.0, 2.0]), 2)
        assert list(assign) == [0, 1]

    def test_all_tied_single_bin(self):
        assign = _mic._equipartition(np.zeros(8), 3)
        assert len(set(assign)) == 1


class TestClumps:
    def test_clean_split_two_clumps(self):
        x = np.arange(6, dtype=float)
        q = np.array([0, 0, 0, 1, 1, 1])
        boundaries = _mic._clumps(x, q)
        assert list(boundaries) == [0, 3, 6]

    def test_alternating_rows_many_clumps(self):
        x = np.arange(6, dtype=float)
        q = np.array([0, 1, 0, 1, 0, 1])
        boundaries = _mic._clumps(x, q)
        assert len(boundaries) - 1 == 6

    def test_x_ties_with_mixed_rows_are_atomic(self):
        x = np.array([0.0, 1.0, 1.0, 2.0])
        q = np.array([0, 0, 1, 1])
        boundaries = _mic._clumps(x, q)
        # the tied block at x=1 spans rows 0 and 1 -> its own clump
        assert 1 in boundaries and 3 in boundaries

    def test_covers_all_points(self, rng):
        x = np.sort(rng.normal(size=40))
        q = (rng.random(40) > 0.5).astype(np.int64)
        boundaries = _mic._clumps(x, q)
        assert boundaries[0] == 0
        assert boundaries[-1] == 40
        assert np.all(np.diff(boundaries) > 0)


class TestSuperclumps:
    def test_no_coarsening_when_under_limit(self):
        boundaries = np.array([0, 3, 6, 10])
        out = _mic._superclumps(boundaries, 10, k_hat=5)
        assert np.array_equal(out, boundaries)

    def test_coarsens_to_at_most_k_hat(self):
        boundaries = np.arange(0, 41)  # 40 singleton clumps
        out = _mic._superclumps(boundaries, 40, k_hat=8)
        assert len(out) - 1 <= 8
        assert out[0] == 0 and out[-1] == 40

    def test_respects_clump_boundaries(self):
        boundaries = np.array([0, 5, 6, 7, 20])
        out = _mic._superclumps(boundaries, 20, k_hat=2)
        assert set(out) <= set(boundaries)


class TestDynamicProgramme:
    def _brute_force(self, q_x, n_cols, rows):
        """Exhaustive max of -n*H(Q|P) over all column partitions."""
        n = q_x.size
        best = -np.inf
        for cuts in itertools.combinations(range(1, n), n_cols - 1):
            edges = [0, *cuts, n]
            total = 0.0
            for a, b in zip(edges, edges[1:]):
                seg = q_x[a:b]
                m = seg.size
                for r in range(rows):
                    c = int(np.sum(seg == r))
                    if c > 0:
                        total += c * np.log(c / m)
            best = max(best, total)
        return best

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_dp_matches_brute_force_on_singleton_clumps(self, seed):
        rng = np.random.default_rng(seed)
        n, rows, cols = 10, 2, 3
        q_x = rng.integers(0, rows, n).astype(np.int64)
        # singleton clumps let the DP consider every cut position
        boundaries = np.arange(0, n + 1)
        onehot = np.zeros((n + 1, rows), dtype=np.int64)
        np.add.at(onehot[1:], (np.arange(n), q_x), 1)
        cum = np.cumsum(onehot, axis=0)[boundaries]
        g = _mic._optimize_axis(cum, n, cols)
        assert g[cols] == pytest.approx(
            self._brute_force(q_x, cols, rows), abs=1e-9
        )

    def test_more_columns_never_worse(self, rng):
        n, rows = 20, 3
        q_x = rng.integers(0, rows, n).astype(np.int64)
        boundaries = np.arange(0, n + 1)
        onehot = np.zeros((n + 1, rows), dtype=np.int64)
        np.add.at(onehot[1:], (np.arange(n), q_x), 1)
        cum = np.cumsum(onehot, axis=0)[boundaries]
        g = _mic._optimize_axis(cum, n, 5)
        finite = [v for v in g[1:] if np.isfinite(v)]
        assert all(b >= a - 1e-9 for a, b in zip(finite, finite[1:]))

    def test_perfectly_separable_reaches_zero_conditional_entropy(self):
        q_x = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
        boundaries = np.array([0, 3, 6])
        onehot = np.zeros((7, 2), dtype=np.int64)
        np.add.at(onehot[1:], (np.arange(6), q_x), 1)
        cum = np.cumsum(onehot, axis=0)[boundaries]
        g = _mic._optimize_axis(cum, 6, 2)
        assert g[2] == pytest.approx(0.0, abs=1e-12)  # H(Q|P) = 0

"""Tests for the shared-precompute MIC engine and its cache."""

import numpy as np
import pytest

from repro.stats.mic import MICParameters, mic
from repro.stats.micfast import (
    AssociationCache,
    _PrepTable,
    association_cache,
    cached_mic_matrix,
    clear_association_cache,
    mic_matrix_fast,
    resolve_workers,
)


def _mixed_window(rng, n=60):
    """A window exercising every engine path: coupled, noisy, tied,
    constant, and NaN-bearing columns."""
    base = rng.uniform(0, 1, n)
    tied = rng.choice([0.0, 1.0, 2.0], size=n)
    const = np.full(n, 3.5)
    nanny = base * 2.0
    nanny[::7] = np.nan
    noise = rng.normal(size=n)
    return np.column_stack([base, base * 3 - 1, tied, const, nanny, noise])


def _scalar_matrix(data, params=None):
    m = data.shape[1]
    out = np.eye(m)
    for i in range(m):
        for j in range(i + 1, m):
            out[i, j] = out[j, i] = mic(data[:, i], data[:, j], params)
    return out


class TestEngineEquivalence:
    def test_matches_scalar_mic_exactly(self, rng):
        data = _mixed_window(rng)
        fast = mic_matrix_fast(data)
        assert np.array_equal(fast, _scalar_matrix(data))

    def test_matches_scalar_under_custom_params(self, rng):
        data = _mixed_window(rng, n=50)
        params = MICParameters(alpha=0.5, clumps_factor=5)
        assert np.array_equal(
            mic_matrix_fast(data, params), _scalar_matrix(data, params)
        )

    def test_shape_symmetry_diagonal(self, rng):
        m = mic_matrix_fast(rng.normal(size=(40, 5)))
        assert m.shape == (5, 5)
        assert np.array_equal(m, m.T)
        assert np.all(np.diag(m) == 1.0)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            mic_matrix_fast(rng.normal(size=30))

    def test_single_column(self, rng):
        assert np.array_equal(
            mic_matrix_fast(rng.normal(size=(30, 1))), np.eye(1)
        )

    def test_tiny_window_falls_back_to_scalar(self, rng):
        # n < 4: no column is sharable; every pair scores 0 via mic().
        data = rng.normal(size=(3, 4))
        assert np.array_equal(mic_matrix_fast(data), np.eye(4))


class TestPrepTable:
    def test_sharable_mask(self, rng):
        data = _mixed_window(rng)
        table = _PrepTable(data, MICParameters())
        # base, coupled, tied, noise are sharable; constant and NaN not.
        assert table.sharable.tolist() == [
            True, True, True, False, False, True,
        ]

    def test_nothing_sharable_when_too_short(self, rng):
        table = _PrepTable(rng.normal(size=(3, 4)), MICParameters())
        assert not table.sharable.any()
        assert table.nlogn is None

    def test_preps_built_lazily_and_reused(self, rng):
        data = rng.uniform(0, 1, size=(40, 3))
        table = _PrepTable(data, MICParameters())
        assert not table._preps
        table.pair_score(0, 1)
        assert set(table._preps) == {0, 1}
        first = table._preps[0]
        table.pair_score(0, 2)
        assert table._preps[0] is first


class TestWorkersKnob:
    def test_resolve_semantics(self):
        import os

        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            mic_matrix_fast(np.zeros((10, 2)), max_workers=-2)

    def test_parallel_equals_serial(self, rng):
        # 6 columns = 15 pairs < _MIN_PARALLEL_PAIRS, so force more.
        data = rng.normal(size=(40, 7))
        serial = mic_matrix_fast(data)
        # Whether the pool starts or the fallback fires, the result is
        # contractually identical to serial.
        with np.errstate(all="ignore"):
            import warnings as _w

            with _w.catch_warnings():
                _w.simplefilter("ignore", RuntimeWarning)
                parallel = mic_matrix_fast(data, max_workers=2)
        assert np.array_equal(parallel, serial)

    def test_small_pair_counts_stay_serial(self, rng, monkeypatch):
        import repro.stats.micfast as micfast

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool attempted for a tiny pair list")

        monkeypatch.setattr(micfast, "_parallel_scores", boom)
        data = rng.normal(size=(30, 3))  # 3 pairs < threshold
        micfast.mic_matrix_fast(data, max_workers=4)


class TestAssociationCache:
    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            AssociationCache(maxsize=0)

    def test_hit_miss_accounting(self, rng):
        cache = AssociationCache()
        data = rng.normal(size=(20, 3))
        first = cached_mic_matrix(data, cache=cache)
        second = cached_mic_matrix(data, cache=cache)
        assert np.array_equal(first, second)
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_key_depends_on_content_and_params(self, rng):
        data = rng.normal(size=(20, 3))
        params = MICParameters()
        k1 = AssociationCache.key_for(data, params)
        assert AssociationCache.key_for(data, params) == k1
        bumped = data.copy()
        bumped[0, 0] += 1e-9
        assert AssociationCache.key_for(bumped, params) != k1
        assert (
            AssociationCache.key_for(data, MICParameters(alpha=0.5)) != k1
        )

    def test_lru_eviction(self, rng):
        cache = AssociationCache(maxsize=2)
        windows = [rng.normal(size=(12, 2)) for _ in range(3)]
        for w in windows:
            cached_mic_matrix(w, cache=cache)
        assert len(cache) == 2
        # windows[0] was least recently used and must be gone.
        params = MICParameters()
        assert cache.get(AssociationCache.key_for(windows[0], params)) is None
        assert (
            cache.get(AssociationCache.key_for(windows[2], params))
            is not None
        )

    def test_get_refreshes_recency(self, rng):
        cache = AssociationCache(maxsize=2)
        params = MICParameters()
        a, b, c = (rng.normal(size=(12, 2)) for _ in range(3))
        cached_mic_matrix(a, cache=cache)
        cached_mic_matrix(b, cache=cache)
        cache.get(AssociationCache.key_for(a, params))  # touch a
        cached_mic_matrix(c, cache=cache)  # evicts b, not a
        assert cache.get(AssociationCache.key_for(a, params)) is not None
        assert cache.get(AssociationCache.key_for(b, params)) is None

    def test_results_are_isolated_copies(self, rng):
        cache = AssociationCache()
        data = rng.normal(size=(20, 3))
        first = cached_mic_matrix(data, cache=cache)
        first[0, 1] = 99.0
        second = cached_mic_matrix(data, cache=cache)
        assert second[0, 1] != 99.0

    def test_clear(self, rng):
        cache = AssociationCache()
        cached_mic_matrix(rng.normal(size=(12, 2)), cache=cache)
        cache.clear()
        assert cache.stats() == {"size": 0, "hits": 0, "misses": 0}

    def test_global_cache_helpers(self, rng):
        clear_association_cache()
        try:
            data = rng.normal(size=(15, 3))
            cached_mic_matrix(data)
            cached_mic_matrix(data)
            stats = association_cache().stats()
            assert stats["hits"] >= 1
        finally:
            clear_association_cache()

    def test_cached_matches_uncached(self, rng):
        cache = AssociationCache()
        data = _mixed_window(rng, n=40)
        assert np.array_equal(
            cached_mic_matrix(data, cache=cache), mic_matrix_fast(data)
        )

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            cached_mic_matrix(rng.normal(size=20), cache=AssociationCache())

"""Unit tests for the from-scratch ARIMA implementation."""

import numpy as np
import pytest

from repro.stats.arima import ARIMAModel, ARIMAOrder, fit_arima, select_order


def _simulate_ar1(rng, n=800, phi=0.7, c=0.0, sigma=1.0):
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = c + phi * y[t - 1] + rng.normal(0, sigma)
    return y


def _simulate_arma11(rng, n=1500, phi=0.5, theta=0.3):
    e = rng.normal(size=n)
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = phi * y[t - 1] + e[t] + theta * e[t - 1]
    return y


class TestARIMAOrder:
    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            ARIMAOrder(-1, 0, 1).validate()

    def test_validate_rejects_degenerate(self):
        with pytest.raises(ValueError, match="degenerate"):
            ARIMAOrder(0, 0, 0).validate()


class TestFitAR:
    def test_recovers_ar1_coefficient(self, rng):
        y = _simulate_ar1(rng, phi=0.7)
        model = fit_arima(y, (1, 0, 0))
        assert model.ar[0] == pytest.approx(0.7, abs=0.08)
        assert abs(model.intercept) < 0.2

    def test_recovers_ar2(self, rng):
        n = 2000
        y = np.zeros(n)
        for t in range(2, n):
            y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + rng.normal()
        model = fit_arima(y, (2, 0, 0))
        assert model.ar[0] == pytest.approx(0.5, abs=0.08)
        assert model.ar[1] == pytest.approx(0.3, abs=0.08)

    def test_residual_variance_near_innovation_variance(self, rng):
        y = _simulate_ar1(rng, sigma=2.0)
        model = fit_arima(y, (1, 0, 0))
        assert model.sigma2 == pytest.approx(4.0, rel=0.2)


class TestFitARMA:
    def test_recovers_arma11(self, rng):
        y = _simulate_arma11(rng)
        model = fit_arima(y, (1, 0, 1))
        assert model.ar[0] == pytest.approx(0.5, abs=0.12)
        assert model.ma[0] == pytest.approx(0.3, abs=0.15)

    def test_refine_does_not_hurt(self, rng):
        y = _simulate_arma11(rng, n=600)
        base = fit_arima(y, (1, 0, 1))
        refined = fit_arima(y, (1, 0, 1), refine=True)
        assert refined.train_rss <= base.train_rss * 1.001

    def test_ma_only(self, rng):
        n = 2000
        e = rng.normal(size=n)
        y = e.copy()
        y[1:] += 0.6 * e[:-1]
        model = fit_arima(y, (0, 0, 1))
        assert model.ma[0] == pytest.approx(0.6, abs=0.12)


class TestDifferencedFit:
    def test_arima_110_on_random_walk_with_ar_steps(self, rng):
        w = _simulate_ar1(rng, phi=0.6)
        y = np.cumsum(w)
        model = fit_arima(y, (1, 1, 0))
        assert model.ar[0] == pytest.approx(0.6, abs=0.08)

    def test_arima_010_intercept_is_drift(self, rng):
        y = np.cumsum(rng.normal(0.5, 1.0, size=2000))
        model = fit_arima(y, (0, 1, 0))
        assert model.intercept == pytest.approx(0.5, abs=0.1)


class TestResiduals:
    def test_warmup_region_is_nan(self, rng):
        y = _simulate_ar1(rng, n=100)
        model = fit_arima(y, (2, 1, 1))
        resid = model.one_step_residuals(y)
        warm = model.order.d + max(model.order.p, model.order.q)
        assert np.all(np.isnan(resid[:warm]))
        assert not np.any(np.isnan(resid[warm:]))

    def test_residuals_approximately_white(self, rng):
        from repro.stats.timeseries import ljung_box

        y = _simulate_ar1(rng, phi=0.8)
        model = fit_arima(y, (1, 0, 0))
        resid = model.one_step_residuals(y)
        _, p = ljung_box(resid[~np.isnan(resid)], nlags=8, n_fitted_params=1)
        assert p > 0.001

    def test_series_too_short_rejected(self, rng):
        model = fit_arima(_simulate_ar1(rng, n=100), (2, 1, 0))
        with pytest.raises(ValueError, match="too short"):
            model.one_step_residuals([1.0, 2.0])


class TestPrediction:
    def test_predict_next_is_conditional_mean_ar1(self, rng):
        y = _simulate_ar1(rng, phi=0.7)
        model = fit_arima(y, (1, 0, 0))
        manual = model.intercept + model.ar[0] * y[-1]
        assert model.predict_next(y) == pytest.approx(manual, abs=1e-9)

    def test_predict_next_tracks_level_after_differencing(self, rng):
        y = np.cumsum(rng.normal(0.0, 1.0, 400)) + 100.0
        model = fit_arima(y, (1, 1, 0))
        pred = model.predict_next(y)
        assert abs(pred - y[-1]) < 5.0  # next value near current level

    def test_forecast_converges_to_mean(self, rng):
        y = _simulate_ar1(rng, phi=0.6, c=2.0)
        model = fit_arima(y, (1, 0, 0))
        mean = model.intercept / (1 - model.ar[0])
        fc = model.forecast(y, steps=100)
        assert fc[-1] == pytest.approx(mean, abs=0.05)

    def test_forecast_length_and_validation(self, rng):
        y = _simulate_ar1(rng, n=120)
        model = fit_arima(y, (1, 0, 0))
        assert model.forecast(y, 7).shape == (7,)
        with pytest.raises(ValueError):
            model.forecast(y, 0)

    def test_one_step_residual_scale_invariant_to_differencing(self, rng):
        """Residuals are identical in differenced and original scale."""
        y = np.cumsum(_simulate_ar1(rng, n=300))
        model = fit_arima(y, (1, 1, 0))
        pred = model.predict_next(y[:200])
        resid_direct = y[200] - pred
        full = model.one_step_residuals(y[:201])
        assert resid_direct == pytest.approx(full[200], abs=1e-9)


class TestSelectOrder:
    def test_selects_d1_for_random_walk(self, rng):
        y = np.cumsum(rng.normal(size=400))
        order = select_order(y)
        assert order.d == 1

    def test_selects_d0_for_stationary(self, rng):
        y = _simulate_ar1(rng, n=400)
        assert select_order(y).d == 0

    def test_prefers_low_order_for_ar1(self, rng):
        y = _simulate_ar1(rng, n=1500, phi=0.7)
        order = select_order(y, max_p=3, max_q=2)
        assert order.p >= 1  # needs at least the true AR lag


class TestModelValidation:
    def test_wrong_ar_length_rejected(self):
        with pytest.raises(ValueError, match="AR"):
            ARIMAModel(
                order=ARIMAOrder(2, 0, 0),
                ar=np.array([0.5]),
                ma=np.empty(0),
                intercept=0.0,
                sigma2=1.0,
            )

    def test_wrong_ma_length_rejected(self):
        with pytest.raises(ValueError, match="MA"):
            ARIMAModel(
                order=ARIMAOrder(0, 0, 2),
                ar=np.empty(0),
                ma=np.array([0.5]),
                intercept=0.0,
                sigma2=1.0,
            )

    def test_aic_requires_training_stats(self):
        model = ARIMAModel(
            order=ARIMAOrder(1, 0, 0),
            ar=np.array([0.5]),
            ma=np.empty(0),
            intercept=0.0,
            sigma2=1.0,
        )
        with pytest.raises(ValueError, match="training"):
            model.aic()


class TestForecastInterval:
    def test_interval_contains_mean(self, rng):
        y = _simulate_ar1(rng, phi=0.6)
        model = fit_arima(y, (1, 0, 0))
        mean, lo, hi = model.forecast_interval(y, steps=10)
        assert np.all(lo <= mean)
        assert np.all(mean <= hi)

    def test_interval_widens_with_horizon(self, rng):
        y = _simulate_ar1(rng, phi=0.6)
        model = fit_arima(y, (1, 0, 0))
        _, lo, hi = model.forecast_interval(y, steps=20)
        widths = hi - lo
        assert all(b >= a - 1e-12 for a, b in zip(widths, widths[1:]))

    def test_one_step_width_matches_sigma(self, rng):
        y = _simulate_ar1(rng, phi=0.6, sigma=1.0)
        model = fit_arima(y, (1, 0, 0))
        _, lo, hi = model.forecast_interval(y, steps=1, level=0.95)
        # one-step variance is sigma2; 95% half-width = 1.96 sigma
        expected = 2 * 1.959964 * np.sqrt(model.sigma2)
        assert (hi[0] - lo[0]) == pytest.approx(expected, rel=1e-4)

    def test_empirical_coverage(self, rng):
        """~95% of realised next values fall inside the 95% interval."""
        phi, sigma = 0.7, 1.0
        hits = 0
        trials = 200
        y = _simulate_ar1(rng, n=3000, phi=phi, sigma=sigma)
        model = fit_arima(y[:800], (1, 0, 0))
        for k in range(trials):
            start = 800 + k * 10
            history = y[:start]
            _, lo, hi = model.forecast_interval(history, steps=1)
            if lo[0] <= y[start] <= hi[0]:
                hits += 1
        assert hits / trials > 0.88

    def test_random_walk_interval_grows_like_sqrt_h(self, rng):
        y = np.cumsum(rng.normal(size=500))
        model = fit_arima(y, (0, 1, 0))
        _, lo, hi = model.forecast_interval(y, steps=16)
        widths = hi - lo
        # width(16) / width(4) ~ sqrt(16/4) = 2 for a pure random walk
        assert widths[15] / widths[3] == pytest.approx(2.0, rel=0.1)

    def test_level_validated(self, rng):
        y = _simulate_ar1(rng, n=200)
        model = fit_arima(y, (1, 0, 0))
        with pytest.raises(ValueError):
            model.forecast_interval(y, steps=5, level=1.5)

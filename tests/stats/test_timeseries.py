"""Unit tests for the shared time-series primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.timeseries import (
    acf,
    aic,
    bic,
    difference,
    is_stationary,
    ljung_box,
    pacf,
    undifference,
)


class TestDifference:
    def test_first_difference(self):
        out = difference([1.0, 3.0, 6.0, 10.0])
        assert np.allclose(out, [2.0, 3.0, 4.0])

    def test_second_difference(self):
        out = difference([1.0, 3.0, 6.0, 10.0], order=2)
        assert np.allclose(out, [1.0, 1.0])

    def test_zero_order_is_copy(self):
        src = np.array([1.0, 2.0, 3.0])
        out = difference(src, order=0)
        assert np.allclose(out, src)
        out[0] = 99.0
        assert src[0] == 1.0  # no aliasing

    def test_removes_linear_trend(self):
        t = np.arange(50, dtype=float)
        out = difference(3.0 * t + 7.0)
        assert np.allclose(out, 3.0)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            difference([1.0, 2.0], order=-1)

    def test_order_too_large_rejected(self):
        with pytest.raises(ValueError, match="difference"):
            difference([1.0, 2.0], order=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            difference([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            difference([1.0, np.nan, 2.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            difference(np.ones((3, 3)))


class TestUndifference:
    def test_roundtrip_order_1(self):
        y = np.array([2.0, 5.0, 4.0, 8.0, 9.0])
        d = difference(y)
        assert np.allclose(undifference(d, [y[0]]), y)

    def test_roundtrip_order_2(self):
        y = np.array([2.0, 5.0, 4.0, 8.0, 9.0, 3.0])
        d2 = difference(y, 2)
        heads = [y[0], difference(y)[0]]
        assert np.allclose(undifference(d2, heads), y)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100), min_size=3, max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        y = np.asarray(values)
        d = difference(y)
        assert np.allclose(undifference(d, [y[0]]), y, atol=1e-9)


class TestAcf:
    def test_lag_zero_is_one(self):
        assert acf([1.0, 2.0, 1.5, 3.0], nlags=0)[0] == 1.0

    def test_alternating_series_negative_lag1(self):
        series = np.tile([1.0, -1.0], 25)
        rho = acf(series, nlags=1)
        assert rho[1] < -0.9

    def test_white_noise_small_acf(self, rng):
        series = rng.normal(size=2000)
        rho = acf(series, nlags=5)
        assert np.all(np.abs(rho[1:]) < 0.1)

    def test_ar1_acf_geometric(self, rng):
        n, phi = 4000, 0.8
        y = np.zeros(n)
        for t in range(1, n):
            y[t] = phi * y[t - 1] + rng.normal()
        rho = acf(y, nlags=3)
        assert rho[1] == pytest.approx(phi, abs=0.05)
        assert rho[2] == pytest.approx(phi**2, abs=0.07)

    def test_constant_series_convention(self):
        rho = acf(np.ones(20), nlags=3)
        assert np.allclose(rho, 1.0)

    def test_nlags_bounds(self):
        with pytest.raises(ValueError):
            acf([1.0, 2.0], nlags=5)
        with pytest.raises(ValueError):
            acf([1.0, 2.0], nlags=-1)


class TestPacf:
    def test_ar1_pacf_cuts_off(self, rng):
        n, phi = 4000, 0.7
        y = np.zeros(n)
        for t in range(1, n):
            y[t] = phi * y[t - 1] + rng.normal()
        p = pacf(y, nlags=4)
        assert p[1] == pytest.approx(phi, abs=0.05)
        assert np.all(np.abs(p[2:]) < 0.08)

    def test_lag1_matches_acf(self, rng):
        y = rng.normal(size=300)
        assert pacf(y, 1)[1] == pytest.approx(acf(y, 1)[1])

    def test_zero_lags(self):
        assert pacf([1.0, 2.0, 3.0, 2.0], 0)[0] == 1.0


class TestInformationCriteria:
    def test_aic_prefers_better_fit_same_params(self):
        assert aic(1.0, 100, 3) < aic(2.0, 100, 3)

    def test_aic_penalises_params(self):
        assert aic(1.0, 100, 5) > aic(1.0, 100, 3)

    def test_bic_penalises_params_harder_for_large_n(self):
        n = 1000
        delta_aic = aic(1.0, n, 5) - aic(1.0, n, 3)
        delta_bic = bic(1.0, n, 5) - bic(1.0, n, 3)
        assert delta_bic > delta_aic

    def test_invalid_nobs(self):
        with pytest.raises(ValueError):
            aic(1.0, 0, 1)
        with pytest.raises(ValueError):
            bic(1.0, -5, 1)


class TestStationarity:
    def test_white_noise_stationary(self, rng):
        assert is_stationary(rng.normal(size=500))

    def test_random_walk_not_stationary(self, rng):
        assert not is_stationary(np.cumsum(rng.normal(size=500)))

    def test_constant_stationary(self):
        assert is_stationary(np.full(50, 3.0))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="8"):
            is_stationary([1.0, 2.0, 3.0])


class TestLjungBox:
    def test_white_noise_passes(self, rng):
        _, p = ljung_box(rng.normal(size=500), nlags=10)
        assert p > 0.01

    def test_autocorrelated_fails(self, rng):
        n = 500
        y = np.zeros(n)
        for t in range(1, n):
            y[t] = 0.9 * y[t - 1] + rng.normal()
        q, p = ljung_box(y, nlags=10)
        assert p < 1e-6
        assert q > 100

    def test_nlags_bound(self):
        with pytest.raises(ValueError):
            ljung_box([1.0, 2.0, 3.0], nlags=5)

"""Property-based equivalence: engine vs scalar MIC vs frozen reference.

Three implementations must agree:

- :func:`repro.stats.mic.mic` — the scalar path (shared kernels);
- :func:`repro.stats.micfast.mic_matrix_fast` — the shared-precompute
  engine, contractually *exactly* equal to the scalar path;
- :func:`repro.stats._mic_reference.mic_reference` — the frozen pre-engine
  snapshot (original loops, log-based entropies) carrying only the
  tie-collapse keying fix, which the optimised paths must match to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats._mic_reference import mic_reference
from repro.stats.mic import mic
from repro.stats.micfast import mic_matrix_fast

_N = 48  # samples per generated window: small enough for Hypothesis budgets


def _columns(seed, kinds):
    """Build an (_N, len(kinds)) window of the requested column kinds."""
    r = np.random.default_rng(seed)
    cols = []
    for kind in kinds:
        if kind == "random":
            cols.append(r.normal(size=_N))
        elif kind == "monotone":
            cols.append(np.sort(r.uniform(0, 1, _N)))
        elif kind == "constant":
            cols.append(np.full(_N, float(r.integers(-3, 4))))
        elif kind == "tied":
            cols.append(r.choice([0.0, 1.0, 2.0], size=_N))
        elif kind == "nan":
            c = r.normal(size=_N)
            c[r.integers(0, _N, size=5)] = np.nan
            cols.append(c)
        else:  # pragma: no cover - guard against typos in strategies
            raise AssertionError(kind)
    return np.column_stack(cols)


_KIND = st.sampled_from(["random", "monotone", "constant", "tied", "nan"])


class TestEngineAgainstScalar:
    @given(st.integers(0, 2**31 - 1), st.lists(_KIND, min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_matrix_equals_scalar_pairs(self, seed, kinds):
        data = _columns(seed, kinds)
        fast = mic_matrix_fast(data)
        m = data.shape[1]
        for i in range(m):
            for j in range(i + 1, m):
                assert fast[i, j] == mic(data[:, i], data[:, j])


class TestScalarAgainstReference:
    @given(st.integers(0, 2**31 - 1), _KIND, _KIND)
    @settings(max_examples=25, deadline=None)
    def test_pair_within_1e9(self, seed, kind_x, kind_y):
        data = _columns(seed, [kind_x, kind_y])
        x, y = data[:, 0], data[:, 1]
        assert mic(x, y) == pytest.approx(mic_reference(x, y), abs=1e-9)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_heavily_tied_pair_within_1e9(self, seed):
        r = np.random.default_rng(seed)
        x = r.choice([0.0, 1.0], size=_N, p=[0.9, 0.1])
        y = r.choice([0.0, 1.0, 2.0], size=_N)
        assert mic(x, y) == pytest.approx(mic_reference(x, y), abs=1e-9)

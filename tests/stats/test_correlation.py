"""Unit tests for the association/regression helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.correlation import (
    normalize_to_min,
    pearson,
    percentile,
    polyfit2,
    spearman,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        assert abs(pearson(rng.normal(size=5000), rng.normal(size=5000))) < 0.05

    def test_constant_returns_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            pearson([1.0], [1.0])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounded_and_symmetric(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=30)
        y = r.normal(size=30)
        c = pearson(x, y)
        assert -1.0 - 1e-9 <= c <= 1.0 + 1e-9
        assert c == pytest.approx(pearson(y, x))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.linspace(0.1, 2.0, 30)
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_ties_midranked(self):
        # concordant with ties: should still be strongly positive
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([5.0, 5.0, 6.0, 7.0])
        assert spearman(x, y) == pytest.approx(1.0)

    def test_reversal_is_minus_one(self):
        x = np.arange(20.0)
        assert spearman(x, x[::-1]) == pytest.approx(-1.0)


class TestPolyfit2:
    def test_exact_quadratic(self):
        x = np.linspace(-2, 2, 20)
        y = 3 * x**2 - x + 0.5
        coeffs, r2 = polyfit2(x, y)
        assert np.allclose(coeffs, [3.0, -1.0, 0.5], atol=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_r2_degrades_with_noise(self, rng):
        x = np.linspace(0, 1, 100)
        y = x**2
        _, clean = polyfit2(x, y)
        _, noisy = polyfit2(x, y + rng.normal(0, 0.5, 100))
        assert clean > noisy

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            polyfit2([1.0, 2.0], [1.0, 2.0])


class TestNormalizeToMin:
    def test_minimum_maps_to_one(self):
        out = normalize_to_min([4.0, 2.0, 8.0])
        assert out.min() == pytest.approx(1.0)
        assert np.allclose(out, [2.0, 1.0, 4.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalize_to_min([1.0, 0.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_to_min([])


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_p95_of_uniform(self, rng):
        vals = rng.uniform(0, 1, 20000)
        assert percentile(vals, 95) == pytest.approx(0.95, abs=0.01)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

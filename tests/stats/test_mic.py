"""Unit and property tests for the from-scratch MIC implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.mic import MICParameters, mic, mic_matrix


class TestFunctionalRelationships:
    """Reshef et al.: MIC approaches 1 for noiseless functional relations."""

    def test_linear(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, 3.0 * x - 1.0) >= 0.99

    def test_decreasing_linear(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, -2.0 * x) >= 0.99

    def test_parabola(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, (x - 0.5) ** 2) >= 0.9

    def test_exponential(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, np.exp(3 * x)) >= 0.99

    def test_moderate_frequency_sine(self, rng):
        x = rng.uniform(0, 1, 400)
        assert mic(x, np.sin(4 * np.pi * x)) >= 0.7

    def test_step_function(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, (x > 0.5).astype(float)) >= 0.9


class TestIndependenceAndNoise:
    def test_independent_low(self, rng):
        scores = [
            mic(rng.uniform(0, 1, 300), rng.uniform(0, 1, 300))
            for _ in range(10)
        ]
        assert float(np.mean(scores)) < 0.3

    def test_noise_degrades_monotonically(self, rng):
        x = rng.uniform(0, 1, 400)
        clean = mic(x, x)
        mild = mic(x, x + rng.normal(0, 0.1, 400))
        heavy = mic(x, x + rng.normal(0, 1.5, 400))
        assert clean > mild > heavy

    def test_correlated_beats_independent_at_window_scale(self, rng):
        """The 30-sample windows of the pipeline must separate signal
        from noise."""
        n = 30
        corr, indep = [], []
        for _ in range(20):
            x = rng.uniform(0, 1, n)
            corr.append(mic(x, x + rng.normal(0, 0.05, n)))
            indep.append(mic(rng.uniform(0, 1, n), rng.uniform(0, 1, n)))
        assert float(np.mean(corr)) > float(np.mean(indep)) + 0.3


class TestEdgeCases:
    def test_constant_input_scores_zero(self, rng):
        x = rng.uniform(0, 1, 100)
        assert mic(x, np.full(100, 7.0)) == 0.0
        assert mic(np.zeros(100), x) == 0.0

    def test_too_few_points_scores_zero(self):
        assert mic([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_nan_pairs_masked(self, rng):
        x = rng.uniform(0, 1, 100)
        y = 2 * x
        x2 = x.copy()
        x2[::10] = np.nan
        assert mic(x2, y) >= 0.95

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mic([1.0, 2.0, 3.0, 4.0], [1.0, 2.0])

    def test_heavy_ties(self, rng):
        x = np.repeat([0.0, 1.0, 2.0], 30)
        y = x * 2.0
        score = mic(x, y + rng.normal(0, 1e-6, x.size))
        assert score > 0.8

    def test_binary_vs_binary(self, rng):
        # MIC of a skewed binary variable with itself is its entropy H(p),
        # slightly below 1 unless the classes are perfectly balanced.
        x = (rng.uniform(0, 1, 200) > 0.5).astype(float)
        assert mic(x, x) >= 0.9


class TestMICProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_range(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=40)
        y = r.normal(size=40)
        score = mic(x, y)
        assert 0.0 <= score <= 1.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_symmetry(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=50)
        y = x * 0.5 + r.normal(size=50)
        assert mic(x, y) == pytest.approx(mic(y, x), abs=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_monotone_transform_invariance(self, seed):
        """MIC depends only on rank structure: strictly monotone transforms
        of either variable leave it unchanged."""
        r = np.random.default_rng(seed)
        x = r.uniform(0.1, 2.0, 60)
        y = x + r.normal(0, 0.2, 60)
        base = mic(x, y)
        assert mic(np.log(x), y) == pytest.approx(base, abs=1e-12)
        assert mic(x, y**3) == pytest.approx(base, abs=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_joint_permutation_invariance(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=50)
        y = x + r.normal(size=50)
        perm = r.permutation(50)
        assert mic(x[perm], y[perm]) == pytest.approx(mic(x, y), abs=1e-12)


class TestParameters:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            MICParameters(alpha=0.0)
        with pytest.raises(ValueError):
            MICParameters(alpha=1.5)

    def test_clumps_factor_bound(self):
        with pytest.raises(ValueError):
            MICParameters(clumps_factor=0)

    def test_budget_floor(self):
        assert MICParameters().budget(4) >= 4

    def test_smaller_alpha_never_higher_budget(self):
        small = MICParameters(alpha=0.4)
        large = MICParameters(alpha=0.8)
        for n in (20, 100, 1000):
            assert small.budget(n) <= large.budget(n)


class TestMicMatrix:
    def test_shape_symmetry_diagonal(self, rng):
        data = rng.normal(size=(60, 4))
        m = mic_matrix(data)
        assert m.shape == (4, 4)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)

    def test_coupled_columns_score_high(self, rng):
        base = rng.uniform(0, 1, 80)
        data = np.column_stack(
            [base, base * 2 + 1, rng.uniform(0, 1, 80)]
        )
        m = mic_matrix(data)
        assert m[0, 1] >= 0.9
        assert m[0, 2] < m[0, 1]

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            mic_matrix(rng.normal(size=30))

"""Unit and property tests for the from-scratch MIC implementation."""

import importlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats._mic_reference import mic_reference
from repro.stats.mic import MICParameters, mic, mic_matrix

_MIC_MOD = importlib.import_module("repro.stats.mic")


class TestFunctionalRelationships:
    """Reshef et al.: MIC approaches 1 for noiseless functional relations."""

    def test_linear(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, 3.0 * x - 1.0) >= 0.99

    def test_decreasing_linear(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, -2.0 * x) >= 0.99

    def test_parabola(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, (x - 0.5) ** 2) >= 0.9

    def test_exponential(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, np.exp(3 * x)) >= 0.99

    def test_moderate_frequency_sine(self, rng):
        x = rng.uniform(0, 1, 400)
        assert mic(x, np.sin(4 * np.pi * x)) >= 0.7

    def test_step_function(self, rng):
        x = rng.uniform(0, 1, 300)
        assert mic(x, (x > 0.5).astype(float)) >= 0.9


class TestIndependenceAndNoise:
    def test_independent_low(self, rng):
        scores = [
            mic(rng.uniform(0, 1, 300), rng.uniform(0, 1, 300))
            for _ in range(10)
        ]
        assert float(np.mean(scores)) < 0.3

    def test_noise_degrades_monotonically(self, rng):
        x = rng.uniform(0, 1, 400)
        clean = mic(x, x)
        mild = mic(x, x + rng.normal(0, 0.1, 400))
        heavy = mic(x, x + rng.normal(0, 1.5, 400))
        assert clean > mild > heavy

    def test_correlated_beats_independent_at_window_scale(self, rng):
        """The 30-sample windows of the pipeline must separate signal
        from noise."""
        n = 30
        corr, indep = [], []
        for _ in range(20):
            x = rng.uniform(0, 1, n)
            corr.append(mic(x, x + rng.normal(0, 0.05, n)))
            indep.append(mic(rng.uniform(0, 1, n), rng.uniform(0, 1, n)))
        assert float(np.mean(corr)) > float(np.mean(indep)) + 0.3


class TestEdgeCases:
    def test_constant_input_scores_zero(self, rng):
        x = rng.uniform(0, 1, 100)
        assert mic(x, np.full(100, 7.0)) == 0.0
        assert mic(np.zeros(100), x) == 0.0

    def test_too_few_points_scores_zero(self):
        assert mic([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_nan_pairs_masked(self, rng):
        x = rng.uniform(0, 1, 100)
        y = 2 * x
        x2 = x.copy()
        x2[::10] = np.nan
        assert mic(x2, y) >= 0.95

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mic([1.0, 2.0, 3.0, 4.0], [1.0, 2.0])

    def test_heavy_ties(self, rng):
        x = np.repeat([0.0, 1.0, 2.0], 30)
        y = x * 2.0
        score = mic(x, y + rng.normal(0, 1e-6, x.size))
        assert score > 0.8

    def test_binary_vs_binary(self, rng):
        # MIC of a skewed binary variable with itself is its entropy H(p),
        # slightly below 1 unless the classes are perfectly balanced.
        x = (rng.uniform(0, 1, 200) > 0.5).astype(float)
        assert mic(x, x) >= 0.9


class TestMICProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_range(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=40)
        y = r.normal(size=40)
        score = mic(x, y)
        assert 0.0 <= score <= 1.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_symmetry(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=50)
        y = x * 0.5 + r.normal(size=50)
        assert mic(x, y) == pytest.approx(mic(y, x), abs=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_monotone_transform_invariance(self, seed):
        """MIC depends only on rank structure: strictly monotone transforms
        of either variable leave it unchanged."""
        r = np.random.default_rng(seed)
        x = r.uniform(0.1, 2.0, 60)
        y = x + r.normal(0, 0.2, 60)
        base = mic(x, y)
        assert mic(np.log(x), y) == pytest.approx(base, abs=1e-12)
        assert mic(x, y**3) == pytest.approx(base, abs=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_joint_permutation_invariance(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=50)
        y = x + r.normal(size=50)
        perm = r.permutation(50)
        assert mic(x[perm], y[perm]) == pytest.approx(mic(x, y), abs=1e-12)


class TestParameters:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            MICParameters(alpha=0.0)
        with pytest.raises(ValueError):
            MICParameters(alpha=1.5)

    def test_clumps_factor_bound(self):
        with pytest.raises(ValueError):
            MICParameters(clumps_factor=0)

    def test_budget_floor(self):
        assert MICParameters().budget(4) >= 4

    def test_smaller_alpha_never_higher_budget(self):
        small = MICParameters(alpha=0.4)
        large = MICParameters(alpha=0.8)
        for n in (20, 100, 1000):
            assert small.budget(n) <= large.budget(n)


def _half_characteristic_requested_keying(x, y, budget, params):
    """The pre-fix half-characteristic: entries keyed by the *requested*
    row count even when ties collapse the equipartition to fewer rows.

    Reimplemented from the module's own kernels so the regression test can
    compare the shipped (realised-keyed) score against what the buggy
    normalisation would have produced on the same data.  No equipartition
    deduplication here: under requested keying, two row counts with the
    same collapsed assignment land in *different* characteristic cells.
    """
    n = x.size
    order_x = np.argsort(x, kind="stable")
    order_y = np.argsort(y, kind="stable")
    x_sorted = x[order_x]
    y_sorted = y[order_y]
    nlogn = _MIC_MOD._nlogn_table(n)
    entries = {}
    for rows in range(2, budget // 2 + 1):
        max_cols = budget // rows
        if max_cols < 2:
            break
        q_sorted = _MIC_MOD._equipartition(y_sorted, rows)
        realised = int(q_sorted[-1]) + 1
        if realised < 2:
            continue
        q = np.empty(n, dtype=np.int64)
        q[order_y] = q_sorted
        q_x = q[order_x]
        boundaries = _MIC_MOD._clumps(x_sorted, q_x)
        k_hat = max(params.clumps_factor * max_cols, 2)
        boundaries = _MIC_MOD._superclumps(boundaries, n, k_hat)
        k = boundaries.size - 1
        cum = _MIC_MOD._cum_counts(q_x, boundaries, realised)
        probs = cum[-1].astype(float) / n
        h_q = -float(np.sum(probs[probs > 0] * np.log(probs[probs > 0])))
        g = _MIC_MOD._optimize_axis(cum, n, max_cols, nlogn)
        for cols in range(2, min(max_cols, k) + 1):
            if not np.isfinite(g[cols]):
                continue
            mi = h_q + g[cols] / n
            key = (cols, rows)  # the bug: requested rows, not realised
            if mi > entries.get(key, -np.inf):
                entries[key] = mi
    return entries


def _mic_requested_keying(x, y, params=None):
    """MIC as the pre-fix code computed it (requested-row normalisation)."""
    params = params or MICParameters()
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    budget = params.budget(x.size)
    best = 0.0
    for a, b in ((x, y), (y, x)):
        for (cols, rows), mi in _half_characteristic_requested_keying(
            a, b, budget, params
        ).items():
            denom = np.log(min(cols, rows))
            if denom > 0:
                best = max(best, mi / denom)
    return float(min(max(best, 0.0), 1.0))


def _tie_sandwich(n, overlap, jitter, rng):
    """Tied three-level y against a four-cluster x.

    y has levels {0, 1, 2} with the third level holding 60% of the mass, so
    equipartitions requested at higher row counts collapse.  The middle
    level's x positions interleave with the outer levels' clusters, which
    makes the collapsed grids carry real information — exactly the shape
    the requested-row normalisation deflates.
    """
    s = n // 5
    n_a = n_b = s
    n_c = n - 2 * s
    y = np.concatenate([np.zeros(n_a), np.ones(n_b), np.full(n_c, 2.0)])
    n_on_a = int(round(overlap * n_c / 2))
    n_on_b = int(round(overlap * n_c / 2))
    n_p1 = (n_c - n_on_a - n_on_b) // 2
    n_p2 = n_c - n_on_a - n_on_b - n_p1
    x = np.concatenate([
        0.0 + rng.normal(0, jitter, n_a),
        2.0 + rng.normal(0, jitter, n_b),
        0.0 + rng.normal(0, jitter, n_on_a),
        1.0 + rng.normal(0, jitter, n_p1),
        2.0 + rng.normal(0, jitter, n_on_b),
        3.0 + rng.normal(0, jitter, n_p2),
    ])
    return x, y


class TestTieCollapseNormalisation:
    """Regression tests for the tie-collapse normalisation fix.

    ``_equipartition`` keeps tied values together, so the realised row
    count can be smaller than requested.  The characteristic matrix must
    key (and normalise) entries by what the grid actually is: keying by
    the requested count divides a coarse grid's MI by a too-large
    ``log(min(cols, rows))`` and deflates the score.
    """

    def test_fixed_score_beats_requested_keying_on_tied_data(self):
        x, y = _tie_sandwich(200, overlap=0.5, jitter=0.05,
                             rng=np.random.default_rng(4))
        buggy = _mic_requested_keying(x, y)
        fixed = mic(x, y)
        # The fix can only raise scores (same MI, never-larger normaliser),
        # and on this construction the deflation is material.
        assert fixed > buggy + 0.02
        assert fixed == pytest.approx(0.4747, abs=5e-3)

    def test_fix_never_lowers_scores(self, rng):
        for _ in range(10):
            x = rng.choice([0.0, 1.0, 2.0, 3.0], size=120)
            y = rng.choice([0.0, 5.0, 9.0], size=120)
            assert mic(x, y) >= _mic_requested_keying(x, y) - 1e-12

    def test_matches_independent_reference(self):
        x, y = _tie_sandwich(200, overlap=0.5, jitter=0.05,
                             rng=np.random.default_rng(4))
        assert mic(x, y) == pytest.approx(mic_reference(x, y), abs=1e-9)

    def test_binary_y_entries_keyed_by_realised_rows(self, rng):
        """A binary column can only ever realise 2 rows, whatever was
        requested — every characteristic entry must say so."""
        x = rng.uniform(0, 1, 150)
        y = (x > 0.4).astype(float)
        params = MICParameters()
        entries = _MIC_MOD._half_characteristic(
            x, y, params.budget(x.size), params
        )
        assert entries  # the sweep requested row counts well above 2
        assert all(rows == 2 for (_cols, rows) in entries)

    def test_sparse_binary_normalised_by_realised_grid(self):
        """90%-zeros metric perfectly associated with its own indicator:
        the only realisable grid is 2x2, so MIC is exactly H(0.9, 0.1) /
        log 2 — the buggy keying divided by log of the requested rows."""
        x = np.repeat([0.0, 1.0], [180, 20])
        y = 5.0 * x
        expected = (
            -(0.9 * np.log(0.9) + 0.1 * np.log(0.1)) / np.log(2.0)
        )
        assert mic(x, y) == pytest.approx(expected, abs=1e-9)


class TestMicMatrix:
    def test_shape_symmetry_diagonal(self, rng):
        data = rng.normal(size=(60, 4))
        m = mic_matrix(data)
        assert m.shape == (4, 4)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)

    def test_coupled_columns_score_high(self, rng):
        base = rng.uniform(0, 1, 80)
        data = np.column_stack(
            [base, base * 2 + 1, rng.uniform(0, 1, 80)]
        )
        m = mic_matrix(data)
        assert m[0, 1] >= 0.9
        assert m[0, 2] < m[0, 1]

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            mic_matrix(rng.normal(size=30))

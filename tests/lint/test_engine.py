"""Engine, configuration, suppression, reporter and CLI tests."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import (
    LintConfig,
    LintEngine,
    Severity,
    load_config,
    render_json,
    render_text,
    rule_ids,
)
from repro.lint.cli import EXIT_OK, EXIT_USAGE, EXIT_VIOLATIONS, main
from repro.lint.config import ConfigError, find_pyproject
from repro.lint.engine import collect_files

SIX_RULES = {
    "context-key",
    "float-equality",
    "magic-constant",
    "mutable-default",
    "rng-discipline",
    "silent-except",
}

VIOLATING = "import random\n\n\ndef f(x=[]):\n    return x\n"


class TestRegistry:
    def test_all_six_domain_rules_registered(self):
        assert SIX_RULES <= set(rule_ids())


class TestEngine:
    def test_clean_source(self):
        report = LintEngine().check_source("x = 1\n", "m.py")
        assert report.ok
        assert report.files_checked == 1
        assert not report.violations

    def test_violations_sorted_by_position(self):
        report = LintEngine().check_source(VIOLATING, "m.py")
        lines = [v.line for v in report.violations]
        assert lines == sorted(lines)
        assert [v.rule_id for v in report.violations] == [
            "rng-discipline",
            "mutable-default",
        ]

    def test_syntax_error_reported_not_raised(self):
        report = LintEngine().check_source("def f(:\n", "bad.py")
        (violation,) = report.violations
        assert violation.rule_id == "parse-error"
        assert not report.ok

    def test_file_wide_suppression(self):
        source = "# repro: disable-file=rng-discipline\nimport random\n"
        report = LintEngine().check_source(source, "m.py")
        assert report.ok
        assert report.suppressed_count == 1

    def test_file_wide_all(self):
        source = "# repro: disable-file=all\n" + VIOLATING
        report = LintEngine().check_source(source, "m.py")
        assert report.ok
        assert report.suppressed_count == 2

    def test_line_suppression_all(self):
        source = "import random  # repro: disable=all\n"
        report = LintEngine().check_source(source, "m.py")
        assert report.ok

    def test_suppression_does_not_leak_to_other_lines(self):
        source = (
            "import random  # repro: disable=rng-discipline\n"
            "import random\n"
        )
        report = LintEngine().check_source(source, "m.py")
        assert len(report.violations) == 1
        assert report.suppressed_count == 1

    def test_wrong_rule_suppression_does_not_apply(self):
        source = "import random  # repro: disable=context-key\n"
        report = LintEngine().check_source(source, "m.py")
        assert len(report.violations) == 1
        assert report.suppressed_count == 0

    def test_disabled_rule_skipped(self):
        config = LintConfig(disabled=("rng-discipline",))
        report = LintEngine(config=config).check_source(
            "import random\n", "m.py"
        )
        assert report.ok

    def test_selected_rules_only(self):
        engine = LintEngine(selected=["mutable-default"])
        report = engine.check_source(VIOLATING, "m.py")
        assert [v.rule_id for v in report.violations] == [
            "mutable-default"
        ]

    def test_severity_override_to_warning(self):
        config = LintConfig(
            severity_overrides={"rng-discipline": Severity.WARNING}
        )
        report = LintEngine(config=config).check_source(
            "import random\n", "m.py"
        )
        assert report.ok  # warnings do not fail the run
        assert report.warning_count == 1

    def test_rule_options_override_paths(self):
        # Widen float-equality to every path via per-rule options.
        config = LintConfig(
            rule_options={"float-equality": {"paths": []}}
        )
        report = LintEngine(config=config).check_source(
            "ok = x == 0.5\n", "anywhere.py"
        )
        assert [v.rule_id for v in report.violations] == [
            "float-equality"
        ]

    def test_check_paths_merges_reports(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        report = LintEngine().check_paths([tmp_path])
        assert report.files_checked == 2
        assert len(report.violations) == 1


class TestCollectFiles:
    def test_recursive_and_sorted(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_excludes(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.py").write_text("")
        (tmp_path / "b.py").write_text("")
        files = collect_files([tmp_path], excludes=("__pycache__",))
        assert [f.name for f in files] == ["b.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_explicit_file_kept(self, tmp_path):
        target = tmp_path / "x.py"
        target.write_text("")
        assert collect_files([target]) == [target]


class TestConfig:
    def test_missing_file_defaults(self, tmp_path):
        config = load_config(tmp_path / "pyproject.toml")
        assert config.disabled == ()

    def test_none_defaults(self):
        config = load_config(None)
        assert config.source == "<defaults>"

    def test_full_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                disable = ["context-key"]
                exclude = ["generated/"]

                [tool.repro-lint.severity]
                float-equality = "warning"

                [tool.repro-lint.options.float-equality]
                paths = ["mystats/"]
                """
            )
        )
        config = load_config(pyproject)
        assert config.disabled == ("context-key",)
        assert "generated/" in config.excludes
        assert config.severity_overrides == {
            "float-equality": Severity.WARNING
        }
        assert config.rule_options["float-equality"]["paths"] == [
            "mystats/"
        ]

    def test_bad_severity_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint.severity]\nfloat-equality = 'loud'\n"
        )
        with pytest.raises(ConfigError):
            load_config(pyproject)

    def test_bad_disable_type_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\ndisable = 'oops'\n")
        with pytest.raises(ConfigError):
            load_config(pyproject)

    def test_find_pyproject_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"


class TestReporters:
    def _report(self):
        return LintEngine().check_source(VIOLATING, "m.py")

    def test_text_format(self):
        text = render_text(self._report())
        assert "m.py:1:0: rng-discipline:" in text
        assert "checked 1 file(s): 2 error(s)" in text

    def test_json_format_stable(self):
        doc = json.loads(render_json(self._report()))
        assert doc["summary"]["errors"] == 2
        assert doc["summary"]["ok"] is False
        first = doc["violations"][0]
        assert first["path"] == "m.py"
        assert first["rule"] == "rng-discipline"
        assert set(first) == {
            "path", "line", "col", "rule", "severity", "message",
        }


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--no-config"]) == EXIT_OK
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_one_with_report(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path), "--no-config"]) == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        assert "bad.py:1:0: rng-discipline:" in out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        code = main(
            [str(tmp_path), "--format", "json", "--no-config"]
        )
        assert code == EXIT_VIOLATIONS
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope"), "--no-config"]) == EXIT_USAGE

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main(
            [str(tmp_path), "--disable", "no-such-rule", "--no-config"]
        )
        assert code == EXIT_USAGE

    def test_disable_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        code = main(
            [
                str(tmp_path),
                "--disable",
                "rng-discipline",
                "--no-config",
            ]
        )
        assert code == EXIT_OK

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule_id in SIX_RULES:
            assert rule_id in out

    def test_config_file_respected(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\ndisable = ['rng-discipline']\n"
        )
        (tmp_path / "bad.py").write_text("import random\n")
        code = main([str(tmp_path), "--config", str(pyproject)])
        assert code == EXIT_OK

    def test_invarnetx_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as invarnetx_main

        (tmp_path / "bad.py").write_text("import random\n")
        code = invarnetx_main(["lint", str(tmp_path), "--no-config"])
        assert code == EXIT_VIOLATIONS
        assert "rng-discipline" in capsys.readouterr().out

"""Middle of the chain; imports the leaf through a ``from``-alias."""

from taintpkg.clocks import wall_seconds as ws


def stamp() -> float:
    return ws()

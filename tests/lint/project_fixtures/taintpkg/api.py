"""The deterministic root whose build path reaches the clock.

Chain under test (4 nodes, crossing an aliased module import, a method
resolved via constructor type inference, and a ``from``-alias):

    render_report -> Reporter.build -> stamp -> wall_seconds
"""

import taintpkg.middle as mid


class Reporter:
    def build(self) -> float:
        return mid.stamp()


# repro: deterministic
def render_report() -> float:
    rep = Reporter()
    return rep.build()

"""Inline suppression must silence a deep finding at its source line."""

import time


# repro: deterministic
def stamped() -> float:
    return time.time()  # repro: disable=deep-determinism

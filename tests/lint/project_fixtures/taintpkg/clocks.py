"""Leaf module owning the actual nondeterminism source."""

import time


def wall_seconds() -> float:
    return time.time()

"""Fixture package: determinism taint through multi-module call chains.

Not production code — parsed by :mod:`repro.lint.project` tests to
exercise call-graph construction (aliased imports, methods, decorators),
taint propagation through 3+-deep chains, injected-clock exemptions and
inline suppression.
"""

from taintpkg.api import render_report

__all__ = ["render_report"]

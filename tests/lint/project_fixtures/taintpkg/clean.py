"""Patterns the taint pass must accept without findings.

Injected clocks (a callable named ``clock``/``*_clock``) and sets that
feed straight into ``sorted(...)`` are the blessed deterministic idioms.
"""

import time


class Sampler:
    def __init__(self, clock=time.time):
        self._clock = clock

    # repro: deterministic
    def snapshot(self, names):
        order = sorted({n.strip() for n in names})
        return {"at": self._clock(), "names": order}

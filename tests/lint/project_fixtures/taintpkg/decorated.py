"""Decorator edges: calling a decorated function runs the wrapper.

Mirrors the ``Tracer.traced`` pattern in :mod:`repro.obs.tracing` — the
wrapper reads a monotonic clock, so a deterministic root decorated with
it is tainted even though its own body is pure.
"""

import time


class Tracer:
    def traced(self, name):
        def wrap(fn):
            def inner(*args, **kwargs):
                started = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    _elapsed = time.perf_counter() - started
            return inner

        return wrap


tracer = Tracer()


# repro: deterministic
@tracer.traced("score")
def score(x: float) -> float:
    return x + x

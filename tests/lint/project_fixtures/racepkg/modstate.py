"""Module-level mutable state in a threaded module: ``put`` mutates the
cache without the lock, ``get`` reads under it (reads are not flagged)."""

import threading

_CACHE: dict = {}
_CACHE_LOCK = threading.Lock()


def put(key: str, value: int) -> None:
    _CACHE[key] = value


def get(key: str):
    with _CACHE_LOCK:
        return _CACHE.get(key)

"""Fixture package: lock-discipline and module-state race rules."""

"""``guarded-by`` annotations are ground truth: ``count`` has no locked
*write* anywhere, yet the declaration keeps it in the guarded set."""

import threading


class Counter:
    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.count = 0  # repro: guarded-by=_mutex

    def bump(self) -> None:
        self.count += 1

    def read(self) -> int:
        with self._mutex:
            return self.count

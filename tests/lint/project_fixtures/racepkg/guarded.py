"""Guarded-set inference: writes under ``with self._lock:`` define the
set, and the one write outside the lock is the race under test."""

import threading


class Buffer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []
        self.flushes = 0

    def add(self, item) -> None:
        with self._lock:
            self._items.append(item)

    def reset(self) -> None:
        with self._lock:
            self._items.clear()
            self.flushes = 0

    def flush(self) -> list:
        with self._lock:
            out = list(self._items)
            self._items = []
        self.flushes += 1  # the race: 'flushes' is guarded, lock released
        return out

"""Per-rule fixture tests.

Every rule gets at least one violating snippet, one clean snippet, and
one suppressed variant of the violation.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintEngine, LintReport

#: Default path used for fixture snippets; inside repro/core so that the
#: path-scoped rules (float-equality) also apply.
SNIPPET_PATH = "src/repro/core/snippet.py"


def lint(source: str, path: str = SNIPPET_PATH) -> LintReport:
    return LintEngine().check_source(textwrap.dedent(source), path)


def rule_hits(report: LintReport, rule_id: str) -> list:
    return [v for v in report.violations if v.rule_id == rule_id]


class TestRngDiscipline:
    def test_legacy_np_random_call_flagged(self):
        report = lint(
            """
            import numpy as np

            def jitter(n):
                return np.random.rand(n)
            """
        )
        (hit,) = rule_hits(report, "rng-discipline")
        assert "np.random.rand" in hit.message
        assert hit.line == 5

    def test_np_random_seed_flagged(self):
        report = lint("import numpy as np\nnp.random.seed(0)\n")
        assert len(rule_hits(report, "rng-discipline")) == 1

    def test_stdlib_random_import_flagged(self):
        report = lint("import random\n")
        (hit,) = rule_hits(report, "rng-discipline")
        assert "stdlib 'random'" in hit.message

    def test_stdlib_from_import_flagged(self):
        report = lint("from random import choice\n")
        assert len(rule_hits(report, "rng-discipline")) == 1

    def test_from_numpy_random_legacy_flagged(self):
        report = lint("from numpy.random import rand\n")
        assert len(rule_hits(report, "rng-discipline")) == 1

    def test_numpy_random_module_alias_flagged(self):
        report = lint(
            "import numpy.random as nr\nx = nr.uniform(0, 1)\n"
        )
        assert len(rule_hits(report, "rng-discipline")) == 1

    def test_default_rng_allowed(self):
        report = lint(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """
        )
        assert not rule_hits(report, "rng-discipline")

    def test_generator_annotation_and_sampling_allowed(self):
        report = lint(
            """
            import numpy as np

            def sample(rng: np.random.Generator) -> float:
                return float(rng.uniform(0.8, 1.3))
            """
        )
        assert not rule_hits(report, "rng-discipline")

    def test_seed_sequence_allowed(self):
        report = lint(
            "import numpy as np\nss = np.random.SeedSequence(7)\n"
        )
        assert not rule_hits(report, "rng-discipline")

    def test_suppressed(self):
        report = lint(
            "import numpy as np\n"
            "np.random.seed(0)  # repro: disable=rng-discipline\n"
        )
        assert not rule_hits(report, "rng-discipline")
        assert report.suppressed_count == 1


class TestContextKey:
    def test_raw_tuple_subscript_flagged(self):
        report = lint(
            """
            def lookup(models, ctx):
                return models[(ctx.workload, ctx.node_id)]
            """
        )
        (hit,) = rule_hits(report, "context-key")
        assert "OperationContext.key()" in hit.message

    def test_raw_name_tuple_flagged(self):
        report = lint(
            """
            def store(models, workload, node_id, model):
                models[(workload, node_id)] = model
            """
        )
        assert len(rule_hits(report, "context-key")) == 1

    def test_dict_get_flagged(self):
        report = lint(
            """
            def lookup(models, ctx):
                return models.get((ctx.workload, ctx.node_id))
            """
        )
        (hit,) = rule_hits(report, "context-key")
        assert ".get()" in hit.message

    def test_setdefault_flagged(self):
        report = lint(
            """
            def ensure(models, workload, node):
                return models.setdefault((workload, node), object())
            """
        )
        assert len(rule_hits(report, "context-key")) == 1

    def test_ctx_key_allowed(self):
        report = lint(
            """
            def lookup(models, ctx):
                return models[ctx.key()]
            """
        )
        assert not rule_hits(report, "context-key")

    def test_unrelated_tuple_key_allowed(self):
        report = lint(
            """
            def cell(grid, row, col):
                return grid[(row, col)]
            """
        )
        assert not rule_hits(report, "context-key")

    def test_suppressed(self):
        report = lint(
            """
            def lookup(models, ctx):
                # repro: disable=context-key — migration shim
                return models[(ctx.workload, ctx.node_id)]
            """
        )
        assert not rule_hits(report, "context-key")
        assert report.suppressed_count == 1


class TestFloatEquality:
    def test_float_literal_eq_flagged(self):
        report = lint(
            """
            def check(x):
                return x == 0.5
            """
        )
        (hit,) = rule_hits(report, "float-equality")
        assert "==" in hit.message

    def test_float_noteq_flagged(self):
        report = lint("flag = float(1) != 2.0\n")
        assert rule_hits(report, "float-equality")

    def test_division_result_eq_flagged(self):
        report = lint("ok = (a / b) == c\n")
        assert len(rule_hits(report, "float-equality")) == 1

    def test_int_eq_allowed(self):
        report = lint("ok = n == 3\n")
        assert not rule_hits(report, "float-equality")

    def test_name_vs_name_allowed(self):
        # Neither side is visibly float-typed: stay quiet.
        report = lint("ok = a == b\n")
        assert not rule_hits(report, "float-equality")

    def test_ordering_comparisons_allowed(self):
        report = lint("ok = x < 0.5\n")
        assert not rule_hits(report, "float-equality")

    def test_out_of_scope_path_not_checked(self):
        report = lint(
            "ok = x == 0.5\n", path="src/repro/faults/snippet.py"
        )
        assert not rule_hits(report, "float-equality")

    def test_suppressed(self):
        report = lint(
            "ok = x == 0.5  # repro: disable=float-equality\n"
        )
        assert not rule_hits(report, "float-equality")
        assert report.suppressed_count == 1

    def test_standalone_comment_suppresses_next_line(self):
        report = lint(
            """
            # repro: disable=float-equality — degeneracy guard
            ok = x == 0.5
            """
        )
        assert not rule_hits(report, "float-equality")
        assert report.suppressed_count == 1


class TestMagicConstant:
    def test_threshold_comparison_flagged(self):
        report = lint(
            """
            def stable(spread):
                return spread < 0.2
            """
        )
        (hit,) = rule_hits(report, "magic-constant")
        assert "0.2" in hit.message
        assert "TAU" in hit.message

    def test_beta_max_shape_flagged(self):
        report = lint(
            """
            def anomalous(residual, peak):
                return residual > 1.2 * peak
            """
        )
        (hit,) = rule_hits(report, "magic-constant")
        assert "BETA" in hit.message

    def test_keyword_argument_flagged(self):
        report = lint("pipe = Config(tau=0.2)\n")
        assert len(rule_hits(report, "magic-constant")) == 1

    def test_named_assignment_flagged(self):
        report = lint("my_beta = 1.2\n")
        assert len(rule_hits(report, "magic-constant")) == 1

    def test_unrelated_literal_allowed(self):
        # 0.2 outside a comparison / tau-ish binding is not a threshold.
        report = lint("x = scale * 0.2\n")
        assert not rule_hits(report, "magic-constant")

    def test_other_float_comparison_allowed(self):
        report = lint("ok = spread < 0.3\n")
        assert not rule_hits(report, "magic-constant")

    def test_canonical_module_exempt(self):
        report = lint(
            "TAU = 0.2\nstable = spread < 0.2\n",
            path="src/repro/core/invariants.py",
        )
        assert not rule_hits(report, "magic-constant")

    def test_suppressed(self):
        report = lint(
            "ok = spread < 0.2  # repro: disable=magic-constant\n"
        )
        assert not rule_hits(report, "magic-constant")
        assert report.suppressed_count == 1


class TestSilentExcept:
    def test_bare_except_pass_flagged(self):
        report = lint(
            """
            try:
                work()
            except:
                pass
            """
        )
        (hit,) = rule_hits(report, "silent-except")
        assert "bare except" in hit.message

    def test_broad_except_pass_flagged(self):
        report = lint(
            """
            try:
                work()
            except Exception:
                pass
            """
        )
        (hit,) = rule_hits(report, "silent-except")
        assert "broad except" in hit.message

    def test_broad_except_ellipsis_flagged(self):
        report = lint(
            """
            try:
                work()
            except BaseException:
                ...
            """
        )
        assert len(rule_hits(report, "silent-except")) == 1

    def test_narrow_except_pass_allowed(self):
        report = lint(
            """
            try:
                work()
            except ValueError:
                pass
            """
        )
        assert not rule_hits(report, "silent-except")

    def test_broad_except_with_handling_allowed(self):
        report = lint(
            """
            try:
                work()
            except Exception as exc:
                log(exc)
            """
        )
        assert not rule_hits(report, "silent-except")

    def test_suppressed(self):
        report = lint(
            """
            try:
                work()
            # repro: disable=silent-except
            except Exception:
                pass
            """
        )
        assert not rule_hits(report, "silent-except")
        assert report.suppressed_count == 1


class TestMutableDefault:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "{1}", "list()", "dict()", "set()"]
    )
    def test_mutable_defaults_flagged(self, default):
        report = lint(f"def f(x={default}):\n    return x\n")
        assert len(rule_hits(report, "mutable-default")) == 1

    def test_kwonly_default_flagged(self):
        report = lint("def f(*, x=[]):\n    return x\n")
        assert len(rule_hits(report, "mutable-default")) == 1

    def test_lambda_default_flagged(self):
        report = lint("f = lambda x=[]: x\n")
        (hit,) = rule_hits(report, "mutable-default")
        assert "<lambda>" in hit.message

    def test_none_default_allowed(self):
        report = lint(
            """
            def f(x=None):
                return [] if x is None else x
            """
        )
        assert not rule_hits(report, "mutable-default")

    def test_tuple_default_allowed(self):
        report = lint("def f(x=()):\n    return x\n")
        assert not rule_hits(report, "mutable-default")

    def test_suppressed(self):
        report = lint(
            "def f(x=[]):  # repro: disable=mutable-default\n"
            "    return x\n"
        )
        assert not rule_hits(report, "mutable-default")
        assert report.suppressed_count == 1

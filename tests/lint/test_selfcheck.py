"""The repo self-check: the domain linter must pass over its own tree.

This is the tier-1 gate the ISSUE asks for — every pytest run lints
``src/`` and ``examples/`` with the repo's own ``[tool.repro-lint]``
configuration, so a contract violation anywhere in the source tree
fails the suite with a precise ``file:line rule-id`` report.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintEngine, load_config, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_examples_are_lint_clean():
    config = load_config(REPO_ROOT / "pyproject.toml")
    engine = LintEngine(config=config)
    report = engine.check_paths(
        [REPO_ROOT / "src", REPO_ROOT / "examples"]
    )
    assert report.files_checked > 0
    assert report.ok, "\n" + render_text(report)
    # Warnings are allowed to exist but the current tree has none;
    # keep it that way so the report stays silent.
    assert not report.violations, "\n" + render_text(report)

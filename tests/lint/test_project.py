"""Whole-program analyzer tests: call graph, taint, races, baseline,
CLI wiring and the ISSUE's mutation-detection acceptance criteria."""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

import pytest

from repro.lint import LintConfig, render_json
from repro.lint.cli import EXIT_OK, EXIT_VIOLATIONS, main
from repro.lint.engine import collect_files
from repro.lint.project import (
    Baseline,
    ProjectAnalyzer,
    apply_baseline,
    baseline_key,
    build_call_graph,
    build_index,
    deep_rule_ids,
    load_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "project_fixtures"
SRC = REPO_ROOT / "src"

DEEP_RULES = {"deep-determinism", "lock-discipline", "module-mutable-state"}


@pytest.fixture(scope="module")
def fixture_report():
    return ProjectAnalyzer().analyze_paths([FIXTURES])


@pytest.fixture(scope="module")
def fixture_graph():
    index = build_index(collect_files([FIXTURES], excludes=()))
    return index, build_call_graph(index)


def _by_rule(report, rule_id):
    return [v for v in report.violations if v.rule_id == rule_id]


class TestRegistry:
    def test_three_deep_rules_registered(self):
        assert set(deep_rule_ids()) == DEEP_RULES


class TestCallGraph:
    def test_method_edge_via_constructor_inference(self, fixture_graph):
        _, graph = fixture_graph
        assert "taintpkg.api.Reporter.build" in graph.callees(
            "taintpkg.api.render_report"
        )

    def test_aliased_module_import_edge(self, fixture_graph):
        _, graph = fixture_graph
        assert "taintpkg.middle.stamp" in graph.callees(
            "taintpkg.api.Reporter.build"
        )

    def test_from_import_alias_edge(self, fixture_graph):
        _, graph = fixture_graph
        assert "taintpkg.clocks.wall_seconds" in graph.callees(
            "taintpkg.middle.stamp"
        )

    def test_decorator_edge_to_tracer_traced(self, fixture_graph):
        _, graph = fixture_graph
        assert "taintpkg.decorated.Tracer.traced" in graph.callees(
            "taintpkg.decorated.score"
        )


class TestTaintPass:
    def test_three_deep_chain_named_in_full(self, fixture_report):
        hits = [
            v
            for v in _by_rule(fixture_report, "deep-determinism")
            if v.path.endswith("clocks.py")
        ]
        (hit,) = hits
        assert "time.time()" in hit.message
        assert "'taintpkg.api.render_report'" in hit.message
        assert (
            "taintpkg.api.render_report -> taintpkg.api.Reporter.build "
            "-> taintpkg.middle.stamp -> taintpkg.clocks.wall_seconds"
        ) in hit.message

    def test_source_anchored_at_offending_call(self, fixture_report):
        (hit,) = [
            v
            for v in _by_rule(fixture_report, "deep-determinism")
            if v.path.endswith("clocks.py")
        ]
        source = (FIXTURES / "taintpkg" / "clocks.py").read_text()
        line = source.splitlines()[hit.line - 1]
        assert "time.time()" in line

    def test_decorated_root_tainted_through_wrapper(self, fixture_report):
        hits = [
            v
            for v in _by_rule(fixture_report, "deep-determinism")
            if v.path.endswith("decorated.py")
        ]
        assert hits, "decorator edge lost"
        for hit in hits:
            assert "'taintpkg.decorated.score'" in hit.message
            assert "Tracer.traced" in hit.message

    def test_injected_clock_and_sorted_set_stay_clean(self, fixture_report):
        assert not [
            v for v in fixture_report.violations if v.path.endswith("clean.py")
        ]

    def test_inline_suppression_counts_not_reports(self, fixture_report):
        assert not [
            v
            for v in fixture_report.violations
            if v.path.endswith("suppressed.py")
        ]
        assert fixture_report.suppressed_count >= 1


class TestRacePass:
    def test_inferred_guard_names_the_lock(self, fixture_report):
        (hit,) = [
            v
            for v in _by_rule(fixture_report, "lock-discipline")
            if v.path.endswith("guarded.py")
        ]
        assert (
            "attribute 'flushes' of racepkg.guarded.Buffer is guarded by "
            "'_lock' but augmented in flush() without holding it"
        ) in hit.message

    def test_annotation_survives_without_locked_writes(self, fixture_report):
        (hit,) = [
            v
            for v in _by_rule(fixture_report, "lock-discipline")
            if v.path.endswith("annotated.py")
        ]
        assert "'count'" in hit.message
        assert "'_mutex'" in hit.message
        assert "bump()" in hit.message

    def test_locked_writes_not_flagged(self, fixture_report):
        lines = {
            v.line
            for v in _by_rule(fixture_report, "lock-discipline")
            if v.path.endswith("guarded.py")
        }
        assert len(lines) == 1  # only the post-release increment

    def test_module_state_names_module_lock(self, fixture_report):
        (hit,) = _by_rule(fixture_report, "module-mutable-state")
        assert hit.path.endswith("modstate.py")
        assert "'_CACHE'" in hit.message
        assert "hold '_CACHE_LOCK'" in hit.message
        assert "put()" in hit.message


class TestBaseline:
    def test_write_then_apply_grandfathers_everything(
        self, fixture_report, tmp_path
    ):
        path = tmp_path / "baseline.json"
        count = write_baseline(path, fixture_report.violations)
        # Keys are line-independent, so same-message findings dedup.
        keys = {baseline_key(v) for v in fixture_report.violations}
        assert count == len(keys) > 0

        fresh = ProjectAnalyzer().analyze_paths([FIXTURES])
        baseline = load_baseline(path)
        apply_baseline(fresh, baseline)
        assert not fresh.violations
        assert fresh.baselined_count == len(fixture_report.violations)
        assert not baseline.stale

    def test_removed_entry_resurfaces_the_finding(
        self, fixture_report, tmp_path
    ):
        path = tmp_path / "baseline.json"
        write_baseline(path, fixture_report.violations)
        doc = json.loads(path.read_text())
        dropped = [
            e
            for e in doc["entries"]
            if not e["path"].endswith("annotated.py")
        ]
        doc["entries"] = dropped
        path.write_text(json.dumps(doc))

        fresh = ProjectAnalyzer().analyze_paths([FIXTURES])
        apply_baseline(fresh, load_baseline(path))
        (survivor,) = fresh.violations
        assert survivor.path.endswith("annotated.py")
        assert survivor.rule_id == "lock-discipline"

    def test_stale_entries_listed_after_apply(self, fixture_report, tmp_path):
        baseline = Baseline(
            entries={("gone/file.py", "deep-determinism", "old finding")}
        )
        fresh = ProjectAnalyzer().analyze_paths([FIXTURES])
        apply_baseline(fresh, baseline)
        assert baseline.stale == [
            ("gone/file.py", "deep-determinism", "old finding")
        ]

    def test_keys_are_line_independent(self, fixture_report):
        for violation in fixture_report.violations:
            key = baseline_key(violation)
            assert key == (violation.path, violation.rule_id, violation.message)
            assert violation.line not in key


class TestCLI:
    def test_deep_exits_one_on_fresh_findings(self, tmp_path, capsys):
        code = main(
            [
                "--deep",
                "--no-config",
                "--baseline",
                str(tmp_path / "bl.json"),
                str(FIXTURES),
            ]
        )
        out = capsys.readouterr().out
        assert code == EXIT_VIOLATIONS
        assert "deep-determinism" in out
        assert "lock-discipline" in out

    def test_write_baseline_then_rerun_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "bl.json"
        assert (
            main(
                [
                    "--write-baseline",
                    "--no-config",
                    "--baseline",
                    str(baseline),
                    str(FIXTURES),
                ]
            )
            == EXIT_OK
        )
        capsys.readouterr()
        code = main(
            [
                "--deep",
                "--no-config",
                "--baseline",
                str(baseline),
                str(FIXTURES),
            ]
        )
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "baselined" in out

    def test_json_schema_and_rule_metadata(self, tmp_path, capsys):
        baseline = tmp_path / "bl.json"
        main(
            [
                "--write-baseline",
                "--no-config",
                "--baseline",
                str(baseline),
                str(FIXTURES),
            ]
        )
        capsys.readouterr()
        main(
            [
                "--deep",
                "--no-config",
                "--format",
                "json",
                "--baseline",
                str(baseline),
                str(FIXTURES),
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 2
        rules = {r["id"]: r for r in doc["rules"]}
        assert DEEP_RULES <= set(rules)
        assert rules["deep-determinism"]["category"] == "determinism"
        assert rules["lock-discipline"]["category"] == "concurrency"
        for meta in rules.values():
            assert set(meta) == {"id", "severity", "category"}
        assert doc["summary"]["baselined"] == 6
        assert doc["summary"]["ok"] is True


def _analyze_tree(root: Path):
    return ProjectAnalyzer(LintConfig()).analyze_paths([root])


class TestRealTreeAcceptance:
    """The ISSUE's acceptance mutations on a scratch copy of ``src/``."""

    @pytest.fixture(scope="class")
    def scratch_src(self, tmp_path_factory):
        scratch = tmp_path_factory.mktemp("tree") / "src"
        shutil.copytree(SRC, scratch)
        return scratch

    def test_pristine_tree_is_clean_and_fast(self, scratch_src):
        started = time.perf_counter()
        report = _analyze_tree(SRC)
        elapsed = time.perf_counter() - started
        assert not report.violations, [v.format() for v in report.violations]
        assert elapsed < 5.0, f"deep analysis took {elapsed:.2f}s"

    def test_deleting_sorted_in_explain_trips_taint(self, scratch_src):
        target = scratch_src / "repro" / "obs" / "explain.py"
        original = target.read_text()
        assert "return sorted(" in original
        try:
            target.write_text(
                original.replace("return sorted(", "return list(", 1)
            )
            report = _analyze_tree(scratch_src)
            hits = [
                v
                for v in report.violations
                if v.rule_id == "deep-determinism"
                and v.path.endswith("explain.py")
            ]
            assert hits, "removing sorted() went undetected"
            # The diagnostic names the full chain into the property.
            assert any(
                "violated_metrics" in v.message and " -> " in v.message
                for v in hits
            )
        finally:
            target.write_text(original)

    def test_deleting_lock_in_metrics_trips_race_rule(self, scratch_src):
        target = scratch_src / "repro" / "obs" / "metrics.py"
        original = target.read_text()
        head, sep, tail = original.partition("def series(")
        assert sep and "with self._lock:" in tail
        try:
            target.write_text(
                head + sep + tail.replace("with self._lock:", "if True:", 1)
            )
            report = _analyze_tree(scratch_src)
            hits = [
                v
                for v in report.violations
                if v.rule_id == "lock-discipline"
                and v.path.endswith("metrics.py")
            ]
            assert hits, "removing the lock went undetected"
            assert any(
                "'_series'" in v.message and "'_lock'" in v.message
                for v in hits
            )
        finally:
            target.write_text(original)

"""Tests for the PeerWatch-style baseline."""

import pytest

from repro.baselines import PeerWatchDetector
from repro.faults.spec import FaultSpec, build_fault


@pytest.fixture(scope="module")
def peerwatch(cluster, wordcount_runs):
    pw = PeerWatchDetector()
    pw.train(wordcount_runs)
    return pw


class TestTraining:
    def test_learns_cross_node_pairs(self, peerwatch):
        assert len(peerwatch._pairs) > 50

    def test_learned_pairs_are_strongly_correlated(self, peerwatch):
        for stat in peerwatch._pairs:
            assert abs(stat.correlation) >= peerwatch.min_correlation

    def test_master_excluded(self, peerwatch):
        for stat in peerwatch._pairs:
            assert "master" not in (stat.node_a, stat.node_b)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            PeerWatchDetector().train([])

    def test_detect_requires_training(self, cluster):
        pw = PeerWatchDetector()
        with pytest.raises(RuntimeError):
            pw.detect(cluster.run("wordcount", seed=1))

    def test_flag_fraction_validated(self):
        with pytest.raises(ValueError):
            PeerWatchDetector(flag_fraction=0.0)


class TestDetection:
    def test_healthy_run_not_flagged(self, peerwatch, cluster):
        report = peerwatch.detect(cluster.run("wordcount", seed=5100))
        assert not report.fault_detected
        assert max(report.node_scores.values()) < peerwatch.flag_fraction

    def test_localises_single_node_fault(self, peerwatch, cluster):
        fault = build_fault("CPU-hog", FaultSpec("slave-3", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=5101)
        report = peerwatch.detect(run)
        assert report.flagged[:1] == ["slave-3"]
        assert report.node_scores["slave-3"] == max(
            report.node_scores.values()
        )

    def test_faulty_node_scores_above_peers(self, peerwatch, cluster):
        fault = build_fault("Mem-hog", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=5102)
        report = peerwatch.detect(run)
        target = report.node_scores["slave-1"]
        others = [
            v for k, v in report.node_scores.items() if k != "slave-1"
        ]
        assert target > max(others)

    def test_node_granularity_only(self, peerwatch, cluster):
        """The §5 criticism: peer methods locate nodes, never causes."""
        report = peerwatch.detect(cluster.run("wordcount", seed=5103))
        assert not hasattr(report, "root_cause")

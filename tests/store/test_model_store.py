"""Unit tests for the model-registry backends."""

import json

import numpy as np
import pytest

from repro.core.anomaly import AnomalyDetector, DriftThreshold, ThresholdRule
from repro.core.context import GLOBAL_CONTEXT, OperationContext
from repro.core.invariants import InvariantSet
from repro.core.signatures import SignatureDatabase
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import (
    ContextModels,
    DirectoryStore,
    MemoryStore,
    StoreError,
)
from repro.store.directory import context_dirname, parse_dirname
from repro.telemetry.metrics import MetricCatalog

CTX = OperationContext("wordcount", "slave-1", "10.0.0.11")
CTX2 = OperationContext("wordcount", "slave-2", "10.0.0.12")


def make_models(context=CTX) -> ContextModels:
    """A small fully-populated slot built without any training."""
    model = ARIMAModel(
        order=ARIMAOrder(2, 1, 1),
        ar=np.array([0.5, -0.2]),
        ma=np.array([0.3]),
        intercept=0.01,
        sigma2=0.002,
    )
    detector = AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.15)
    )
    catalog = MetricCatalog(names=("a", "b", "c", "d"))
    invariants = InvariantSet(
        pairs=[(0, 1), (2, 3)],
        baseline=np.array([0.85, 0.4]),
        catalog=catalog,
    )
    database = SignatureDatabase()
    database.add(
        np.array([True, False]), "CPU-hog",
        ip=context.ip, workload=context.workload,
    )
    return ContextModels(
        context=context,
        detector=detector,
        invariants=invariants,
        database=database,
    )


def assert_models_equal(a: ContextModels, b: ContextModels) -> None:
    assert a.detector is not None and b.detector is not None
    assert a.detector.model is not None and b.detector.model is not None
    assert a.detector.model.order == b.detector.model.order
    assert np.array_equal(a.detector.model.ar, b.detector.model.ar)
    assert np.array_equal(a.detector.model.ma, b.detector.model.ma)
    assert a.detector.threshold == b.detector.threshold
    assert a.invariants is not None and b.invariants is not None
    assert a.invariants.pairs == b.invariants.pairs
    assert np.array_equal(a.invariants.baseline, b.invariants.baseline)
    assert [s.problem for s in a.database.signatures] == [
        s.problem for s in b.database.signatures
    ]
    assert [s.violations for s in a.database.signatures] == [
        s.violations for s in b.database.signatures
    ]


class TestContextModels:
    def test_untrained(self):
        models = ContextModels()
        assert not models.trained
        assert models.artifacts() == []

    def test_trained_and_artifacts(self):
        models = make_models()
        assert models.trained
        assert models.artifacts() == ["model", "invariants", "signatures"]


class TestMemoryStore:
    def test_slot_creates_and_returns_same_object(self):
        store = MemoryStore()
        slot = store.slot(CTX.key(), CTX)
        assert slot.context == CTX
        assert store.slot(CTX.key()) is slot
        assert store.keys() == [CTX.key()]
        assert CTX.key() in store

    def test_peek_does_not_create(self):
        store = MemoryStore()
        assert store.peek(CTX.key()) is None
        assert store.keys() == []

    def test_persist_is_noop_without_backing(self):
        store = MemoryStore()
        store.slot(CTX.key(), CTX)
        assert store.persist(CTX.key()) == []

    def test_bound_requires_backing(self):
        with pytest.raises(ValueError, match="backing"):
            MemoryStore(max_contexts=2)

    def test_bound_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_contexts"):
            MemoryStore(max_contexts=0, backing=DirectoryStore(tmp_path))

    def test_lru_eviction_spills_and_reloads(self, tmp_path):
        backing = DirectoryStore(tmp_path)
        store = MemoryStore(max_contexts=1, backing=backing)
        original = make_models()
        store.adopt(CTX.key(), original)
        store.adopt(CTX2.key(), make_models(CTX2))
        # CTX was evicted from the front: resident set is bounded, but the
        # spilled slot is durable and reloads on the next miss.
        assert store.resident_keys() == [CTX2.key()]
        assert (tmp_path / "contexts" / context_dirname(CTX.key())).is_dir()
        reloaded = store.slot(CTX.key())
        assert_models_equal(reloaded, original)
        assert store.resident_keys() == [CTX.key()]  # CTX2 evicted in turn

    def test_keys_include_backing(self, tmp_path):
        backing = DirectoryStore(tmp_path)
        backing.adopt(CTX.key(), make_models())
        backing.persist(CTX.key())
        store = MemoryStore(backing=DirectoryStore(tmp_path))
        assert store.keys() == [CTX.key()]
        assert store.slot(CTX.key()).trained

    def test_discard_reaches_backing(self, tmp_path):
        backing = DirectoryStore(tmp_path)
        store = MemoryStore(backing=backing)
        store.adopt(CTX.key(), make_models())
        store.persist(CTX.key())
        store.discard(CTX.key())
        assert store.keys() == []
        assert backing.keys() == []


class TestDirectoryStore:
    def test_empty_registry(self, tmp_path):
        store = DirectoryStore(tmp_path)
        assert store.keys() == []
        assert store.peek(CTX.key()) is None
        assert store.revision(CTX.key()) == 0

    def test_persist_unknown_key_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="no resident slot"):
            DirectoryStore(tmp_path).persist(CTX.key())

    def test_persist_writes_artifacts_and_manifest(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.adopt(CTX.key(), make_models())
        written = store.persist(CTX.key())
        assert sorted(p.name for p in written) == [
            "invariants.xml", "model.xml", "signatures.xml",
        ]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        entry = manifest["contexts"][context_dirname(CTX.key())]
        assert entry["workload"] == "wordcount"
        assert entry["node"] == "slave-1"
        assert entry["ip"] == "10.0.0.11"
        assert entry["revision"] == 1

    def test_revision_bumps_on_each_publish(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.adopt(CTX.key(), make_models())
        store.persist(CTX.key())
        store.persist(CTX.key())
        assert store.revision(CTX.key()) == 2

    def test_lazy_load_round_trip(self, tmp_path):
        original = make_models()
        first = DirectoryStore(tmp_path)
        first.adopt(CTX.key(), original)
        first.persist(CTX.key())
        # a fresh instance sees the context in the manifest and loads the
        # XML only when the slot is actually requested
        second = DirectoryStore(tmp_path)
        assert second.keys() == [CTX.key()]
        assert second.resident_keys() == []
        assert_models_equal(second.slot(CTX.key()), original)
        assert second.resident_keys() == [CTX.key()]

    def test_max_resident_bounds_memory(self, tmp_path):
        store = DirectoryStore(tmp_path, max_resident=1)
        store.adopt(CTX.key(), make_models())
        store.adopt(CTX2.key(), make_models(CTX2))
        assert store.resident_keys() == [CTX2.key()]
        # the evicted slot was persisted, not lost
        assert store.revision(CTX.key()) >= 1
        assert store.slot(CTX.key()).trained

    def test_evict_persists_and_drops(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.adopt(CTX.key(), make_models())
        store.evict(CTX.key())
        assert store.resident_keys() == []
        assert store.revision(CTX.key()) == 1

    def test_partial_slot_round_trip(self, tmp_path):
        partial = make_models()
        partial.invariants = None
        partial.database = SignatureDatabase()
        store = DirectoryStore(tmp_path)
        store.adopt(CTX.key(), partial)
        written = store.persist(CTX.key())
        assert [p.name for p in written] == ["model.xml"]
        loaded = DirectoryStore(tmp_path).slot(CTX.key())
        assert loaded.detector is not None
        assert loaded.invariants is None
        assert len(loaded.database) == 0

    def test_stale_artifacts_removed_on_republish(self, tmp_path):
        store = DirectoryStore(tmp_path)
        models = make_models()
        store.adopt(CTX.key(), models)
        store.persist(CTX.key())
        sig_path = (
            tmp_path / "contexts" / context_dirname(CTX.key())
            / "signatures.xml"
        )
        assert sig_path.exists()
        models.database = SignatureDatabase()
        store.persist(CTX.key())
        assert not sig_path.exists()
        assert store.entries()[CTX.key()]["artifacts"] == [
            "model", "invariants",
        ]

    def test_discard_removes_entry_and_directory(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.adopt(CTX.key(), make_models())
        store.persist(CTX.key())
        store.discard(CTX.key())
        assert store.keys() == []
        assert not (tmp_path / "contexts" / context_dirname(CTX.key())).exists()
        assert DirectoryStore(tmp_path).keys() == []

    def test_unknown_manifest_format_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": 999, "contexts": {}})
        )
        with pytest.raises(StoreError, match="format"):
            DirectoryStore(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(StoreError, match="unreadable"):
            DirectoryStore(tmp_path)

    def test_max_resident_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_resident"):
            DirectoryStore(tmp_path, max_resident=0)


class TestContextDirnames:
    @pytest.mark.parametrize(
        "key",
        [
            ("wordcount", "slave-1"),
            GLOBAL_CONTEXT.key(),
            ("odd workload/name", "node@strange__id"),
            ("café", "über-node"),
        ],
    )
    def test_quoting_round_trips(self, key):
        name = context_dirname(key)
        assert "/" not in name
        assert parse_dirname(name) == key

    def test_global_sentinel_persists(self, tmp_path):
        store = DirectoryStore(tmp_path)
        key = GLOBAL_CONTEXT.key()
        store.adopt(key, make_models(GLOBAL_CONTEXT))
        store.persist(key)
        assert DirectoryStore(tmp_path).slot(key).trained

    def test_malformed_dirname_rejected(self):
        with pytest.raises(StoreError, match="malformed"):
            parse_dirname("no-separator")

"""The registry round-trip contract (tier-1).

A pipeline trained in one process, persisted via :class:`DirectoryStore`,
and reloaded into a fresh :class:`InvarNetX` must produce *identical*
results on the same runs as the original in-memory pipeline: same
anomaly report, same ranked causes, same scores.  The XML codecs
round-trip floats through ``repr``, so equality here is exact, not
approximate.
"""

import numpy as np
import pytest

from repro.core import InvarNetX, OperationContext
from repro.core.online import DiagnosisEvent, OnlineMonitor
from repro.faults.spec import FaultSpec, build_fault
from repro.store import ContextModels, DirectoryStore, MemoryStore


@pytest.fixture()
def faulty_run(cluster):
    fault = build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))
    return cluster.run("wordcount", faults=[fault], seed=7100)


@pytest.fixture()
def registry(tmp_path, trained_pipeline, wordcount_context):
    """The trained pipeline's context published to an on-disk registry."""
    store = DirectoryStore(tmp_path / "registry")
    key = wordcount_context.key()
    store.adopt(key, trained_pipeline.context_models(wordcount_context))
    store.persist(key)
    return store


def assert_same_diagnosis(original, reloaded) -> None:
    assert reloaded.detected == original.detected
    assert reloaded.anomaly.problem_ticks == original.anomaly.problem_ticks
    assert np.array_equal(
        reloaded.anomaly.residuals, original.anomaly.residuals,
        equal_nan=True,
    )
    assert np.array_equal(
        reloaded.anomaly.anomalous, original.anomaly.anomalous
    )
    assert reloaded.root_cause == original.root_cause
    if original.inference is not None:
        assert reloaded.inference is not None
        assert [
            (c.problem, c.score) for c in reloaded.inference.causes
        ] == [(c.problem, c.score) for c in original.inference.causes]
        assert np.array_equal(
            reloaded.inference.violations, original.inference.violations
        )


class TestDirectoryStoreRoundTrip:
    def test_identical_diagnosis_after_restart(
        self, registry, trained_pipeline, wordcount_context, faulty_run
    ):
        """Train -> publish -> 'restart' -> load -> identical verdicts."""
        fresh = InvarNetX.attached_to(DirectoryStore(registry.root))
        assert fresh.is_trained(wordcount_context)
        original = trained_pipeline.diagnose_run(wordcount_context, faulty_run)
        reloaded = fresh.diagnose_run(wordcount_context, faulty_run)
        assert original.detected  # the contract is vacuous otherwise
        assert_same_diagnosis(original, reloaded)

    def test_identical_on_healthy_run(
        self, registry, trained_pipeline, wordcount_context, cluster
    ):
        healthy = cluster.run("wordcount", seed=7101)
        fresh = InvarNetX.attached_to(DirectoryStore(registry.root))
        assert_same_diagnosis(
            trained_pipeline.diagnose_run(wordcount_context, healthy),
            fresh.diagnose_run(wordcount_context, healthy),
        )

    def test_streaming_monitor_from_registry(
        self, registry, trained_pipeline, wordcount_context, faulty_run
    ):
        """A monitor in a process that never trained matches the original."""
        node = faulty_run.node("slave-1")
        fresh = InvarNetX.attached_to(DirectoryStore(registry.root))
        events_orig = OnlineMonitor(
            trained_pipeline, wordcount_context
        ).run_stream(node.metrics, node.cpi)
        events_fresh = OnlineMonitor(fresh, wordcount_context).run_stream(
            node.metrics, node.cpi
        )
        assert len(events_fresh) == len(events_orig)
        for a, b in zip(events_orig, events_fresh):
            assert a.tick == b.tick
            if isinstance(a, DiagnosisEvent):
                assert isinstance(b, DiagnosisEvent)
                assert b.root_cause == a.root_cause
                assert [
                    (c.problem, c.score) for c in b.inference.causes
                ] == [(c.problem, c.score) for c in a.inference.causes]

    def test_bounded_front_store_serves_identically(
        self, registry, trained_pipeline, wordcount_context, faulty_run
    ):
        """An LRU MemoryStore over the registry changes nothing but RAM."""
        front = MemoryStore(
            max_contexts=1, backing=DirectoryStore(registry.root)
        )
        pipe = InvarNetX.attached_to(front)
        assert_same_diagnosis(
            trained_pipeline.diagnose_run(wordcount_context, faulty_run),
            pipe.diagnose_run(wordcount_context, faulty_run),
        )


class TestFlatSaveLoadRoundTrip:
    def test_load_context_restores_diagnosis(
        self, tmp_path, trained_pipeline, wordcount_context, faulty_run
    ):
        """save_context finally has its load counterpart."""
        written = trained_pipeline.save_context(wordcount_context, tmp_path)
        assert len(written) == 3
        fresh = InvarNetX()
        models = fresh.load_context(wordcount_context, tmp_path)
        assert models.trained and len(models.database) > 0
        assert_same_diagnosis(
            trained_pipeline.diagnose_run(wordcount_context, faulty_run),
            fresh.diagnose_run(wordcount_context, faulty_run),
        )

    def test_load_context_without_artifacts_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            InvarNetX().load_context(
                OperationContext("wordcount", "slave-1"), tmp_path
            )


class TestTrainingPublishesAsItGoes:
    def test_training_against_directory_store_persists(
        self, tmp_path, cluster, wordcount_context, wordcount_runs
    ):
        """With a durable store attached, training needs no explicit save:
        every module's output is published the moment it is trained."""
        store = DirectoryStore(tmp_path / "auto")
        pipe = InvarNetX.attached_to(store)
        pipe.train_from_runs(wordcount_context, wordcount_runs[:3])
        entry = store.entries()[wordcount_context.key()]
        assert "model" in entry["artifacts"]
        assert "invariants" in entry["artifacts"]
        fault = build_fault("Mem-hog", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=7102)
        pipe.train_signature_from_run(wordcount_context, "Mem-hog", run)
        entry = store.entries()[wordcount_context.key()]
        assert "signatures" in entry["artifacts"]
        # and a restarted pipeline can name the problem it never learned
        fresh = InvarNetX.attached_to(DirectoryStore(tmp_path / "auto"))
        assert fresh.known_problems(wordcount_context) == ["Mem-hog"]

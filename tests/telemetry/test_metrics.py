"""Unit tests for the 26-metric vocabulary."""

import pytest

from repro.telemetry.metrics import METRIC_GROUPS, METRIC_NAMES, MetricCatalog


class TestVocabulary:
    def test_exactly_26_metrics(self):
        """The paper collects exactly 26 performance metrics (§4)."""
        assert len(METRIC_NAMES) == 26

    def test_names_unique(self):
        assert len(set(METRIC_NAMES)) == 26

    def test_groups_partition_the_vocabulary(self):
        grouped = [m for g in METRIC_GROUPS.values() for m in g]
        assert sorted(grouped) == sorted(METRIC_NAMES)

    def test_coarse_families_present(self):
        """The paper names CPU, memory, disk and network utilisation plus
        fine-grained metrics such as context switches and page faults."""
        for g in ("cpu", "memory", "disk", "network", "fine"):
            assert g in METRIC_GROUPS
        assert "ctxt_per_sec" in METRIC_GROUPS["fine"]
        assert "pgfault_per_sec" in METRIC_GROUPS["fine"]


class TestCatalog:
    def test_index_roundtrip(self):
        cat = MetricCatalog()
        for idx, name in enumerate(METRIC_NAMES):
            assert cat.index(name) == idx
            assert cat.name(idx) == name

    def test_unknown_metric_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown metric"):
            MetricCatalog().index("nope")

    def test_pair_count_formula(self):
        """M(M-1)/2 association pairs (paper §3.3)."""
        cat = MetricCatalog()
        assert cat.pair_count() == 26 * 25 // 2 == 325
        assert len(cat.pairs()) == cat.pair_count()

    def test_pairs_canonical_order(self):
        pairs = MetricCatalog().pairs()
        assert all(i < j for i, j in pairs)
        assert pairs == sorted(pairs)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MetricCatalog(names=("a", "b", "a"))

    def test_len(self):
        assert len(MetricCatalog()) == 26
        assert len(MetricCatalog(names=("x", "y"))) == 2

"""Unit tests for the collectl-like metric sampler."""

import numpy as np
import pytest

from repro.cluster.demand import ResourceDemand
from repro.cluster.hardware import NodeSpec
from repro.cluster.node import FaultModifiers, SimulatedNode
from repro.telemetry.collectl import CollectlSampler, MetricEffects
from repro.telemetry.metrics import METRIC_NAMES


def _internals(rng, cpu=0.5, disk=30_000.0, net=10_000.0, mem=5_000.0):
    node = SimulatedNode("n", "1.2.3.4", NodeSpec())
    demand = ResourceDemand(
        cpu=cpu,
        mem_mb=mem,
        disk_read_kbs=disk,
        disk_write_kbs=disk / 3,
        net_rx_kbs=net,
        net_tx_kbs=net,
    )
    return node.tick(demand, FaultModifiers(), rng)


def _idx(name: str) -> int:
    return METRIC_NAMES.index(name)


class TestSampling:
    def test_vector_shape_and_nonnegative(self, rng):
        sampler = CollectlSampler()
        out = sampler.sample(_internals(rng), None, rng)
        assert out.shape == (26,)
        assert np.all(out >= 0.0)

    def test_noise_free_sampling_is_deterministic(self, rng):
        sampler = CollectlSampler(noise_pct=0.0)
        s = _internals(rng)
        a = sampler.sample(s, None, np.random.default_rng(1))
        b = sampler.sample(s, None, np.random.default_rng(2))
        assert np.allclose(a, b)

    def test_cpu_percentages_sum_to_100(self, rng):
        sampler = CollectlSampler(noise_pct=0.0)
        out = sampler.sample(_internals(rng), None, rng)
        total = (
            out[_idx("cpu_user_pct")]
            + out[_idx("cpu_sys_pct")]
            + out[_idx("cpu_wait_pct")]
            + out[_idx("cpu_idle_pct")]
        )
        assert total == pytest.approx(100.0, abs=0.01)

    def test_packet_rate_tracks_byte_rate(self, rng):
        sampler = CollectlSampler(noise_pct=0.0)
        low = sampler.sample(_internals(rng, net=5_000), None, rng)
        high = sampler.sample(_internals(rng, net=50_000), None, rng)
        ratio_low = low[_idx("net_rx_pkts")] / low[_idx("net_rx_kbs")]
        ratio_high = high[_idx("net_rx_pkts")] / high[_idx("net_rx_kbs")]
        assert ratio_low == pytest.approx(ratio_high, rel=1e-6)

    def test_cpu_drives_context_switches(self, rng):
        sampler = CollectlSampler(noise_pct=0.0)
        idle = sampler.sample(_internals(rng, cpu=0.05), None, rng)
        busy = sampler.sample(_internals(rng, cpu=0.9), None, rng)
        assert busy[_idx("ctxt_per_sec")] > idle[_idx("ctxt_per_sec")] * 2

    def test_quiet_metrics_are_exactly_zero(self, rng):
        """Quantised counters are the stable MIC=0 invariants."""
        sampler = CollectlSampler()
        out = sampler.sample(_internals(rng), None, rng)
        assert out[_idx("swap_used_mb")] == 0.0
        assert out[_idx("pgmajfault_per_sec")] == 0.0
        assert out[_idx("tcp_retrans_per_sec")] == 0.0

    def test_memory_pressure_activates_swap_metrics(self, rng):
        sampler = CollectlSampler()
        out = sampler.sample(_internals(rng, mem=16_500.0), None, rng)
        assert out[_idx("swap_used_mb")] > 0.0
        assert out[_idx("pgmajfault_per_sec")] > 0.0

    def test_negative_noise_pct_rejected(self):
        with pytest.raises(ValueError):
            CollectlSampler(noise_pct=-0.1)


class TestMetricEffects:
    def test_add_and_scale_applied(self, rng):
        sampler = CollectlSampler(noise_pct=0.0)
        s = _internals(rng)
        base = sampler.sample(s, None, rng)
        fx = MetricEffects(
            add={"ctxt_per_sec": 1000.0}, scale={"disk_read_kbs": 0.5}
        )
        out = sampler.sample(s, fx, rng)
        assert out[_idx("ctxt_per_sec")] == pytest.approx(
            base[_idx("ctxt_per_sec")] + 1000.0
        )
        assert out[_idx("disk_read_kbs")] == pytest.approx(
            base[_idx("disk_read_kbs")] * 0.5
        )

    def test_noise_effect_perturbs(self, rng):
        sampler = CollectlSampler(noise_pct=0.0)
        s = _internals(rng)
        fx = MetricEffects(noise={"cpu_user_pct": 0.3})
        a = sampler.sample(s, fx, np.random.default_rng(1))
        b = sampler.sample(s, fx, np.random.default_rng(2))
        assert a[_idx("cpu_user_pct")] != b[_idx("cpu_user_pct")]

    def test_combine_semantics(self):
        a = MetricEffects(
            add={"x": 1.0}, scale={"y": 2.0}, noise={"z": 0.3}
        )
        b = MetricEffects(
            add={"x": 2.0}, scale={"y": 3.0}, noise={"z": 0.4}
        )
        c = a.combine(b)
        assert c.add["x"] == 3.0
        assert c.scale["y"] == 6.0
        assert c.noise["z"] == pytest.approx(0.5)  # quadrature

    def test_combine_disjoint_keys(self):
        c = MetricEffects(add={"x": 1.0}).combine(MetricEffects(add={"y": 2.0}))
        assert c.add == {"x": 1.0, "y": 2.0}

"""Round-trip tests for trace import/export."""

import numpy as np
import pytest

from repro.telemetry.io import (
    load_node_csv,
    load_run_npz,
    save_node_csv,
    save_run_npz,
)
from repro.telemetry.metrics import METRIC_NAMES


class TestNpzRoundtrip:
    def test_full_roundtrip(self, cluster, tmp_path):
        run = cluster.run("grep", seed=11)
        path = tmp_path / "run.npz"
        save_run_npz(run, path)
        loaded = load_run_npz(path)
        assert loaded.workload == run.workload
        assert loaded.execution_ticks == run.execution_ticks
        assert loaded.completed == run.completed
        assert loaded.seed == run.seed
        assert set(loaded.nodes) == set(run.nodes)
        for node_id in run.nodes:
            assert np.array_equal(
                loaded.node(node_id).metrics, run.node(node_id).metrics
            )
            assert np.array_equal(
                loaded.node(node_id).cpi, run.node(node_id).cpi
            )
            assert loaded.node(node_id).ip == run.node(node_id).ip

    def test_fault_metadata_roundtrip(self, cluster, tmp_path):
        from repro.faults.spec import FaultSpec, build_fault

        fault = build_fault("Mem-hog", FaultSpec("slave-2", 25, 30))
        run = cluster.run("grep", faults=[fault], seed=12)
        path = tmp_path / "run.npz"
        save_run_npz(run, path)
        loaded = load_run_npz(path)
        assert loaded.fault == "Mem-hog"
        assert loaded.fault_node == "slave-2"
        assert loaded.fault_window == run.fault_window
        assert loaded.all_faults == ("Mem-hog",)

    def test_normal_run_has_no_fault_fields(self, cluster, tmp_path):
        run = cluster.run("grep", seed=13)
        path = tmp_path / "run.npz"
        save_run_npz(run, path)
        loaded = load_run_npz(path)
        assert loaded.fault is None
        assert loaded.fault_window is None
        assert loaded.all_faults == ()


class TestSeedRoundtrip:
    """Regression: -1 used to be an in-band sentinel for seed=None, so a
    run legitimately seeded with -1 deserialized as None."""

    def _roundtrip(self, cluster, tmp_path, seed):
        run = cluster.run("grep", seed=16)
        run.seed = seed
        path = tmp_path / "run.npz"
        save_run_npz(run, path)
        return load_run_npz(path)

    def test_negative_one_seed_survives(self, cluster, tmp_path):
        loaded = self._roundtrip(cluster, tmp_path, seed=-1)
        assert loaded.seed == -1

    def test_none_seed_survives(self, cluster, tmp_path):
        loaded = self._roundtrip(cluster, tmp_path, seed=None)
        assert loaded.seed is None

    def test_zero_seed_survives(self, cluster, tmp_path):
        loaded = self._roundtrip(cluster, tmp_path, seed=0)
        assert loaded.seed == 0

    def test_legacy_file_without_has_seed_flag(self, cluster, tmp_path):
        # Files written before the has_seed flag used -1 as the None
        # sentinel; they must still load (as None).
        run = cluster.run("grep", seed=17)
        path = tmp_path / "legacy.npz"
        save_run_npz(run, path)
        with np.load(path, allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files}
        del payload["has_seed"]
        payload["seed"] = np.array(-1)
        np.savez_compressed(path, **payload)
        assert load_run_npz(path).seed is None


class TestCsvRoundtrip:
    def test_roundtrip(self, cluster, tmp_path):
        trace = cluster.run("grep", seed=14).node("slave-1")
        path = tmp_path / "node.csv"
        save_node_csv(trace, path)
        loaded = load_node_csv(path, node_id="slave-1", ip=trace.ip)
        assert np.allclose(loaded.metrics, trace.metrics)
        assert np.allclose(loaded.cpi, trace.cpi)

    def test_header_is_canonical(self, cluster, tmp_path):
        trace = cluster.run("grep", seed=15).node("slave-1")
        path = tmp_path / "node.csv"
        save_node_csv(trace, path)
        header = path.read_text().splitlines()[0].split(",")
        assert header[0] == "tick"
        assert header[-1] == "cpi"
        assert tuple(header[1:-1]) == METRIC_NAMES

    def test_column_order_free_load(self, tmp_path):
        """Real collectl exports may order columns differently."""
        names = list(METRIC_NAMES)
        shuffled = ["cpi", *reversed(names), "tick"]
        rows = [",".join(shuffled)]
        for t in range(12):
            vals = {n: float(i) for i, n in enumerate(names)}
            row = [
                "1.5" if c == "cpi" else str(t) if c == "tick"
                else repr(vals[c])
                for c in shuffled
            ]
            rows.append(",".join(row))
        path = tmp_path / "shuffled.csv"
        path.write_text("\n".join(rows))
        trace = load_node_csv(path)
        assert trace.ticks == 12
        assert trace.metric("cpu_user_pct")[0] == 0.0
        assert trace.metric("sock_used")[0] == 25.0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("tick,foo,cpi\n0,1,1.5\n")
        with pytest.raises(ValueError, match="bad header"):
            load_node_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_node_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("tick," + ",".join(METRIC_NAMES) + ",cpi\n")
        with pytest.raises(ValueError, match="no samples"):
            load_node_csv(path)

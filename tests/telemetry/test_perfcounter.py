"""Unit tests for the perf-like CPI sampler."""

import numpy as np
import pytest

from repro.cluster.demand import ResourceDemand
from repro.cluster.hardware import NodeSpec
from repro.cluster.node import FaultModifiers, SimulatedNode
from repro.core.kpi import execution_time_seconds
from repro.telemetry.perfcounter import PerfCounterSampler
from repro.telemetry.trace import TICK_SECONDS


def _internals(rng, cpu=0.5, modifiers=None):
    node = SimulatedNode("n", "1.2.3.4", NodeSpec())
    demand = ResourceDemand(cpu=cpu, mem_mb=4000.0)
    return node.tick(demand, modifiers or FaultModifiers(), rng)


class TestCpiSampling:
    def test_unloaded_cpi_near_base(self, rng):
        sampler = PerfCounterSampler(NodeSpec(), noise_pct=0.0)
        sample = sampler.sample(_internals(rng), base_cpi=1.2, rng=rng)
        assert sample.cpi == pytest.approx(1.2, rel=0.02)

    def test_contention_inflates_cpi(self, rng):
        sampler = PerfCounterSampler(NodeSpec(), noise_pct=0.0)
        calm = sampler.sample(_internals(rng, cpu=0.5), 1.2, rng)
        hot = sampler.sample(
            _internals(
                rng,
                cpu=0.5,
                modifiers=FaultModifiers(external=ResourceDemand(cpu=0.9)),
            ),
            1.2,
            rng,
        )
        assert hot.cpi > calm.cpi * 1.2

    def test_suspended_process_shows_stall_artifact(self, rng):
        sampler = PerfCounterSampler(NodeSpec(), noise_pct=0.0)
        stalled = sampler.sample(
            _internals(rng, modifiers=FaultModifiers(activity_factor=0.0)),
            1.2,
            rng,
        )
        assert stalled.cpi > 1.2 * 2.0

    def test_invalid_base_cpi(self, rng):
        sampler = PerfCounterSampler(NodeSpec())
        with pytest.raises(ValueError):
            sampler.sample(_internals(rng), base_cpi=0.0, rng=rng)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            PerfCounterSampler(NodeSpec(), noise_pct=-0.01)


class TestCounterIdentity:
    def test_cycles_instructions_cpi_consistent(self, rng):
        """cycles / instructions == CPI, as read from real counters."""
        sampler = PerfCounterSampler(NodeSpec(), noise_pct=0.0)
        s = sampler.sample(_internals(rng, cpu=0.7), 1.4, rng)
        assert s.cycles / s.instructions == pytest.approx(s.cpi, rel=1e-9)

    def test_t_equals_i_cpi_c(self, rng):
        """The §3.1 identity: per-tick work obeys T = I * CPI * C."""
        spec = NodeSpec()
        sampler = PerfCounterSampler(spec, noise_pct=0.0)
        s = sampler.sample(_internals(rng, cpu=1.0), 1.0, rng)
        # One fully-utilised tick's instructions at this CPI take one tick.
        t = execution_time_seconds(s.instructions, s.cpi, spec.cycle_seconds)
        # the job owns cpu_task_share of the cores; normalise
        assert t == pytest.approx(
            TICK_SECONDS * spec.cores * 1.0, rel=1e-6
        ) or t <= TICK_SECONDS * spec.cores

    def test_execution_time_validation(self):
        with pytest.raises(ValueError):
            execution_time_seconds(-1, 1.0, 1e-9)
        with pytest.raises(ValueError):
            execution_time_seconds(1e9, 0.0, 1e-9)

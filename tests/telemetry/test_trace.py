"""Unit tests for the trace containers."""

import numpy as np
import pytest

from repro.telemetry.trace import TICK_SECONDS, NodeTrace, RunTrace


def _node_trace(ticks=20, node_id="slave-1", ip="10.0.0.1"):
    rng = np.random.default_rng(0)
    return NodeTrace(
        node_id=node_id,
        ip=ip,
        metrics=rng.uniform(0, 1, size=(ticks, 26)),
        cpi=rng.uniform(1, 2, size=ticks),
    )


class TestNodeTrace:
    def test_ticks(self):
        assert _node_trace(15).ticks == 15

    def test_metric_by_name(self):
        nt = _node_trace()
        assert np.allclose(nt.metric("cpu_user_pct"), nt.metrics[:, 0])

    def test_window_bounds(self):
        nt = _node_trace(20)
        w = nt.window(5, 15)
        assert w.ticks == 10
        assert np.allclose(w.cpi, nt.cpi[5:15])
        with pytest.raises(ValueError):
            nt.window(15, 5)
        with pytest.raises(ValueError):
            nt.window(0, 25)

    def test_wrong_metric_width_rejected(self):
        with pytest.raises(ValueError, match="26"):
            NodeTrace("n", "ip", np.ones((5, 10)), np.ones(5))

    def test_cpi_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NodeTrace("n", "ip", np.ones((5, 26)), np.ones(6))


class TestRunTrace:
    def test_basic_properties(self):
        run = RunTrace(
            workload="wordcount",
            nodes={"slave-1": _node_trace(30)},
            execution_ticks=30,
        )
        assert run.ticks == 30
        assert run.execution_seconds == 30 * TICK_SECONDS
        assert run.node("slave-1").node_id == "slave-1"

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            RunTrace(
                workload="w",
                nodes={"a": _node_trace(10), "b": _node_trace(12)},
                execution_ticks=10,
            )

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError):
            RunTrace(workload="w", nodes={}, execution_ticks=5)

    def test_fault_slice(self):
        run = RunTrace(
            workload="w",
            nodes={"slave-1": _node_trace(40)},
            execution_ticks=40,
            fault="CPU-hog",
            fault_node="slave-1",
            fault_window=(10, 30),
        )
        s = run.fault_slice("slave-1")
        assert s.ticks == 20

    def test_fault_slice_clamps_to_trace_end(self):
        run = RunTrace(
            workload="w",
            nodes={"slave-1": _node_trace(25)},
            execution_ticks=25,
            fault_window=(10, 40),
        )
        assert run.fault_slice("slave-1").ticks == 15

    def test_fault_slice_requires_window(self):
        run = RunTrace(
            workload="w",
            nodes={"slave-1": _node_trace(25)},
            execution_ticks=25,
        )
        with pytest.raises(ValueError, match="fault window"):
            run.fault_slice("slave-1")

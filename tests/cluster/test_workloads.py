"""Unit tests for the workload profiles."""

import pytest

from repro.cluster.demand import ResourceDemand
from repro.cluster.workloads import (
    BATCH_WORKLOADS,
    WORKLOADS,
    PhaseSpec,
    QuerySpec,
    WorkloadProfile,
    WorkloadType,
    get_workload,
)


class TestCatalog:
    def test_paper_workloads_present(self):
        """§4.1: Sort, Wordcount, Grep, Bayes batch + TPC-DS interactive."""
        for name in ("wordcount", "sort", "grep", "bayes", "tpcds"):
            assert name in WORKLOADS

    def test_batch_interactive_split(self):
        assert set(BATCH_WORKLOADS) == {"wordcount", "sort", "grep", "bayes"}
        assert WORKLOADS["tpcds"].kind is WorkloadType.INTERACTIVE
        for name in BATCH_WORKLOADS:
            assert WORKLOADS[name].kind is WorkloadType.BATCH

    def test_tpcds_has_eight_queries(self):
        """§4.1: the 8 TPC-DS queries run in a mixed mode."""
        assert len(WORKLOADS["tpcds"].queries) == 8

    def test_batch_phases_are_map_shuffle_reduce(self):
        for name in BATCH_WORKLOADS:
            assert [p.name for p in WORKLOADS[name].phases] == [
                "map",
                "shuffle",
                "reduce",
            ]

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError, match="known:"):
            get_workload("terasort")

    def test_nominal_ticks(self):
        wc = WORKLOADS["wordcount"]
        assert wc.nominal_ticks == sum(p.work_ticks for p in wc.phases)
        assert WORKLOADS["tpcds"].nominal_ticks == 120


class TestValidation:
    def test_phase_requires_positive_work(self):
        with pytest.raises(ValueError):
            PhaseSpec("map", 0, ResourceDemand())

    def test_phase_jitter_bounds(self):
        with pytest.raises(ValueError):
            PhaseSpec("map", 10, ResourceDemand(), jitter=1.5)

    def test_query_requires_positive_duration(self):
        with pytest.raises(ValueError):
            QuerySpec("q1", 0, ResourceDemand())

    def test_batch_profile_requires_phases(self):
        with pytest.raises(ValueError, match="phases"):
            WorkloadProfile(name="x", kind=WorkloadType.BATCH, base_cpi=1.0)

    def test_interactive_profile_requires_queries(self):
        with pytest.raises(ValueError, match="queries"):
            WorkloadProfile(
                name="x", kind=WorkloadType.INTERACTIVE, base_cpi=1.0
            )

    def test_base_cpi_positive(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="x",
                kind=WorkloadType.BATCH,
                base_cpi=0.0,
                phases=(PhaseSpec("map", 1, ResourceDemand()),),
            )


class TestProfileCharacter:
    def test_sort_is_io_heavier_than_wordcount(self):
        """Sort shuffles/writes far more data per §3.1's workload variety."""
        wc = WORKLOADS["wordcount"]
        sort = WORKLOADS["sort"]
        wc_io = sum(
            p.demand.disk_write_kbs + p.demand.net_rx_kbs for p in wc.phases
        )
        sort_io = sum(
            p.demand.disk_write_kbs + p.demand.net_rx_kbs for p in sort.phases
        )
        assert sort_io > wc_io

    def test_bayes_is_memory_heaviest_batch(self):
        mems = {
            name: max(p.demand.mem_mb for p in WORKLOADS[name].phases)
            for name in BATCH_WORKLOADS
        }
        assert max(mems, key=mems.get) == "bayes"

    def test_base_cpis_distinct(self):
        cpis = [w.base_cpi for w in WORKLOADS.values()]
        assert len(set(cpis)) == len(cpis)

"""Unit tests for resource-demand vectors."""

import pytest

from repro.cluster.demand import ResourceDemand


class TestResourceDemand:
    def test_addition_is_channelwise(self):
        a = ResourceDemand(cpu=0.2, mem_mb=100, disk_read_kbs=10)
        b = ResourceDemand(cpu=0.3, net_tx_kbs=5)
        c = a + b
        assert c.cpu == pytest.approx(0.5)
        assert c.mem_mb == 100
        assert c.disk_read_kbs == 10
        assert c.net_tx_kbs == 5

    def test_scaling(self):
        d = ResourceDemand(cpu=0.4, mem_mb=200).scaled(0.5)
        assert d.cpu == pytest.approx(0.2)
        assert d.mem_mb == pytest.approx(100)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ResourceDemand(cpu=0.1).scaled(-1.0)

    def test_negative_channel_rejected(self):
        with pytest.raises(ValueError):
            ResourceDemand(cpu=-0.1)

    def test_jittered_clamps_at_zero(self):
        d = ResourceDemand(cpu=0.5).jittered({"cpu": -2.0})
        assert d.cpu == 0.0

    def test_jittered_missing_channels_unchanged(self):
        d = ResourceDemand(cpu=0.5, mem_mb=100).jittered({"cpu": 2.0})
        assert d.cpu == pytest.approx(1.0)
        assert d.mem_mb == 100

    def test_immutable(self):
        d = ResourceDemand(cpu=0.5)
        with pytest.raises(AttributeError):
            d.cpu = 0.9

"""Unit tests for per-node resource accounting."""

import numpy as np
import pytest

from repro.cluster.demand import ResourceDemand
from repro.cluster.hardware import NodeSpec
from repro.cluster.node import FaultModifiers, SimulatedNode


@pytest.fixture()
def node():
    return SimulatedNode("slave-1", "10.0.0.11", NodeSpec())


class TestCpuAccounting:
    def test_no_contention_below_capacity(self, node, rng):
        s = node.tick(ResourceDemand(cpu=0.6), FaultModifiers(), rng)
        assert s.cpu_contention == 0.0
        assert s.cpu_util == pytest.approx(0.6)
        assert s.cpi_inflation == pytest.approx(1.0, abs=0.05)

    def test_contention_above_capacity(self, node, rng):
        mods = FaultModifiers(external=ResourceDemand(cpu=0.8))
        s = node.tick(ResourceDemand(cpu=0.6), mods, rng)
        assert s.cpu_contention == pytest.approx(0.4)
        assert s.cpu_util == 1.0
        assert s.cpi_inflation > 1.3

    def test_fig2_premise_disturbance_with_headroom_is_free(self, node, rng):
        """A 30% external load with spare cores must not move CPI (§3.1)."""
        calm = node.tick(ResourceDemand(cpu=0.55), FaultModifiers(), rng)
        noisy = node.tick(
            ResourceDemand(cpu=0.55),
            FaultModifiers(external=ResourceDemand(cpu=0.30)),
            rng,
        )
        assert noisy.cpi_inflation == pytest.approx(
            calm.cpi_inflation, rel=0.02
        )

    def test_task_share_proportional_under_contention(self, node, rng):
        mods = FaultModifiers(external=ResourceDemand(cpu=0.5))
        s = node.tick(ResourceDemand(cpu=1.0), mods, rng)
        assert s.cpu_task_share == pytest.approx(1.0 / 1.5)


class TestDiskAccounting:
    def test_throttling_at_capacity(self, node, rng):
        s = node.tick(
            ResourceDemand(disk_read_kbs=100_000, disk_write_kbs=100_000),
            FaultModifiers(),
            rng,
        )
        assert s.disk_read_kbs + s.disk_write_kbs <= NodeSpec().disk_kbs * 1.001
        assert s.disk_util == 1.0
        assert s.io_wait > 0.4

    def test_no_wait_when_idle(self, node, rng):
        s = node.tick(ResourceDemand(), FaultModifiers(), rng)
        assert s.io_wait == 0.0
        assert s.disk_util == 0.0

    def test_capacity_factor_shrinks_disk(self, node, rng):
        demand = ResourceDemand(disk_read_kbs=60_000)
        full = node.tick(demand, FaultModifiers(), rng)
        halved = node.tick(
            demand, FaultModifiers(disk_capacity_factor=0.25), rng
        )
        assert halved.disk_read_kbs < full.disk_read_kbs
        assert halved.io_wait > full.io_wait


class TestNetworkAccounting:
    def test_congestion_above_capacity(self, node, rng):
        s = node.tick(
            ResourceDemand(net_rx_kbs=200_000), FaultModifiers(), rng
        )
        assert s.net_congestion > 0.5
        assert s.net_rx_kbs <= NodeSpec().net_kbs * 1.001

    def test_net_capacity_factor(self, node, rng):
        demand = ResourceDemand(net_rx_kbs=50_000, net_tx_kbs=50_000)
        squeezed = node.tick(
            demand, FaultModifiers(net_capacity_factor=0.2), rng
        )
        assert squeezed.net_rx_kbs <= 25_000 * 1.001
        assert squeezed.net_congestion > 0.0


class TestMemoryAccounting:
    def test_no_swap_under_normal_load(self, node, rng):
        s = node.tick(ResourceDemand(mem_mb=8_000), FaultModifiers(), rng)
        assert s.swap_used_mb == 0.0
        assert s.mem_pressure == 0.0

    def test_overcommit_swaps_and_pressures(self, node, rng):
        s = node.tick(ResourceDemand(mem_mb=16_500), FaultModifiers(), rng)
        assert s.swap_used_mb > 0.0
        assert s.mem_pressure > 0.0
        assert s.swap_io_kbs > 0.0
        assert s.cpi_inflation > 1.5

    def test_memory_identity(self, node, rng):
        s = node.tick(ResourceDemand(mem_mb=6_000), FaultModifiers(), rng)
        total = s.mem_used_mb + s.mem_free_mb + s.mem_cached_mb
        assert total <= NodeSpec().mem_mb * 1.001


class TestProgressAndModifiers:
    def test_suspension_stops_progress(self, node, rng):
        s = node.tick(
            ResourceDemand(cpu=0.5),
            FaultModifiers(activity_factor=0.0, progress_factor=0.0),
            rng,
        )
        assert s.progress_rate == 0.0
        assert s.cpu_util == 0.0

    def test_progress_inverse_to_inflation(self, node, rng):
        calm = node.tick(ResourceDemand(cpu=0.5), FaultModifiers(), rng)
        hot = node.tick(
            ResourceDemand(cpu=0.5),
            FaultModifiers(external=ResourceDemand(cpu=1.0)),
            rng,
        )
        assert hot.progress_rate < calm.progress_rate
        assert hot.progress_rate == pytest.approx(
            1.0 / hot.cpi_inflation, rel=1e-6
        )

    def test_modifier_combination(self):
        a = FaultModifiers(
            external=ResourceDemand(cpu=0.2), cpi_factor=1.2,
            progress_factor=0.8,
        )
        b = FaultModifiers(
            external=ResourceDemand(cpu=0.3), cpi_factor=1.5,
            net_capacity_factor=0.5,
        )
        c = a.combine(b)
        assert c.external.cpu == pytest.approx(0.5)
        assert c.cpi_factor == pytest.approx(1.8)
        assert c.progress_factor == pytest.approx(0.8)
        assert c.net_capacity_factor == pytest.approx(0.5)

    def test_reset_clears_cache_state(self, node, rng):
        for _ in range(20):
            node.tick(
                ResourceDemand(disk_read_kbs=80_000), FaultModifiers(), rng
            )
        warmed = node._cached_mb
        node.reset()
        assert node._cached_mb != warmed or warmed == 2500.0

"""Property-based tests of the node model's physical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.demand import ResourceDemand
from repro.cluster.hardware import NodeSpec
from repro.cluster.node import FaultModifiers, SimulatedNode

_frac = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
_kbs = st.floats(min_value=0.0, max_value=300_000.0, allow_nan=False)
_mb = st.floats(min_value=0.0, max_value=30_000.0, allow_nan=False)


@st.composite
def demands(draw):
    return ResourceDemand(
        cpu=draw(_frac),
        mem_mb=draw(_mb),
        disk_read_kbs=draw(_kbs),
        disk_write_kbs=draw(_kbs),
        net_rx_kbs=draw(_kbs),
        net_tx_kbs=draw(_kbs),
    )


def _tick(demand, modifiers=None, seed=0):
    node = SimulatedNode("n", "ip", NodeSpec())
    return node.tick(
        demand, modifiers or FaultModifiers(), np.random.default_rng(seed)
    )


class TestPhysicalBounds:
    @given(demands())
    @settings(max_examples=60, deadline=None)
    def test_utilisations_bounded(self, demand):
        s = _tick(demand)
        assert 0.0 <= s.cpu_util <= 1.0
        assert 0.0 <= s.disk_util <= 1.0
        assert 0.0 <= s.net_util <= 1.0
        assert 0.0 <= s.io_wait <= 1.0

    @given(demands())
    @settings(max_examples=60, deadline=None)
    def test_throughput_never_exceeds_capacity(self, demand):
        spec = NodeSpec()
        s = _tick(demand)
        assert s.disk_read_kbs + s.disk_write_kbs <= spec.disk_kbs * 1.0001
        assert s.net_rx_kbs <= spec.net_kbs * 1.0001
        assert s.net_tx_kbs <= spec.net_kbs * 1.0001

    @given(demands())
    @settings(max_examples=60, deadline=None)
    def test_cpi_inflation_at_least_one(self, demand):
        s = _tick(demand)
        assert s.cpi_inflation >= 1.0

    @given(demands())
    @settings(max_examples=60, deadline=None)
    def test_progress_bounded_by_inverse_inflation(self, demand):
        s = _tick(demand)
        assert 0.0 <= s.progress_rate <= 1.0 / s.cpi_inflation + 1e-9

    @given(demands())
    @settings(max_examples=60, deadline=None)
    def test_memory_nonnegative_and_within_ram(self, demand):
        spec = NodeSpec()
        s = _tick(demand)
        assert s.mem_used_mb >= 0
        assert s.mem_free_mb >= 0
        assert s.mem_cached_mb >= 0
        assert s.mem_used_mb <= spec.mem_mb


class TestMonotonicity:
    @given(demands(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_more_external_cpu_never_deflates_cpi(self, demand, extra):
        base = _tick(demand)
        loaded = _tick(
            demand,
            FaultModifiers(external=ResourceDemand(cpu=extra)),
        )
        assert loaded.cpi_inflation >= base.cpi_inflation - 1e-9

    @given(demands())
    @settings(max_examples=40, deadline=None)
    def test_suspension_dominates(self, demand):
        """A suspended task consumes nothing and makes no progress."""
        s = _tick(demand, FaultModifiers(activity_factor=0.0))
        assert s.progress_rate == 0.0
        baseline = _tick(demand)
        assert s.cpu_util <= baseline.cpu_util + 1e-9


class TestModifierAlgebra:
    @given(
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_combine_commutative_on_factors(self, f1, f2):
        a = FaultModifiers(cpi_factor=f1, progress_factor=f2)
        b = FaultModifiers(cpi_factor=f2, net_capacity_factor=f1)
        ab = a.combine(b)
        ba = b.combine(a)
        assert ab.cpi_factor == pytest.approx(ba.cpi_factor)
        assert ab.progress_factor == pytest.approx(ba.progress_factor)
        assert ab.net_capacity_factor == pytest.approx(ba.net_capacity_factor)

    def test_identity_modifiers(self):
        ident = FaultModifiers()
        other = FaultModifiers(
            external=ResourceDemand(cpu=0.5), cpi_factor=1.3
        )
        combined = ident.combine(other)
        assert combined.cpi_factor == other.cpi_factor
        assert combined.external.cpu == other.external.cpu

"""Unit tests for the job execution engines."""

import numpy as np
import pytest

from repro.cluster.job import (
    ArOneProcess,
    BatchJobExecution,
    InteractiveMixExecution,
)
from repro.cluster.workloads import WORKLOADS


class TestArOneProcess:
    def test_fluctuates_around_one(self, rng):
        proc = ArOneProcess()
        vals = np.array([proc.step(rng) for _ in range(3000)])
        assert vals.mean() == pytest.approx(1.0, abs=0.05)
        assert vals.std() > 0.02

    def test_never_negative(self, rng):
        proc = ArOneProcess(rho=0.9, sigma=2.0, amp=1.0)
        vals = [proc.step(rng) for _ in range(1000)]
        assert min(vals) >= 0.05

    def test_autocorrelated(self, rng):
        proc = ArOneProcess(rho=0.9, sigma=0.3, amp=0.5)
        vals = np.array([proc.step(rng) for _ in range(3000)])
        lag1 = np.corrcoef(vals[:-1], vals[1:])[0, 1]
        assert lag1 > 0.6

    def test_rho_bounds(self):
        with pytest.raises(ValueError):
            ArOneProcess(rho=1.0)


class TestBatchJobExecution:
    def test_phase_progression(self, rng):
        job = BatchJobExecution(WORKLOADS["wordcount"], rng)
        phases_seen = []
        while not job.done:
            phases_seen.append(job.current_phase)
            job.node_demand(rng)
            job.advance(1.0)
        assert phases_seen[0] == "map"
        assert "shuffle" in phases_seen
        assert phases_seen[-1] == "reduce"
        assert job.current_phase == "done"

    def test_nominal_duration_at_unit_rate(self, rng):
        profile = WORKLOADS["wordcount"]
        job = BatchJobExecution(profile, rng)
        ticks = 0
        while not job.done:
            job.advance(1.0)
            ticks += 1
        assert ticks == profile.nominal_ticks

    def test_slow_rate_stretches_duration(self, rng):
        profile = WORKLOADS["grep"]
        job = BatchJobExecution(profile, rng)
        ticks = 0
        while not job.done and ticks < 10_000:
            job.advance(0.5)
            ticks += 1
        assert ticks == pytest.approx(profile.nominal_ticks * 2, abs=2)

    def test_zero_rate_never_finishes(self, rng):
        job = BatchJobExecution(WORKLOADS["grep"], rng)
        for _ in range(100):
            job.advance(0.0)
        assert not job.done

    def test_demand_positive_in_each_phase(self, rng):
        job = BatchJobExecution(WORKLOADS["sort"], rng)
        d = job.node_demand(rng)
        assert d.cpu > 0
        assert d.disk_read_kbs > 0

    def test_done_job_demands_nothing(self, rng):
        job = BatchJobExecution(WORKLOADS["grep"], rng)
        while not job.done:
            job.advance(5.0)
        d = job.node_demand(rng)
        assert d.cpu == 0.0

    def test_negative_rate_rejected(self, rng):
        job = BatchJobExecution(WORKLOADS["grep"], rng)
        with pytest.raises(ValueError):
            job.advance(-0.1)

    def test_interactive_profile_rejected(self, rng):
        with pytest.raises(ValueError, match="not a batch"):
            BatchJobExecution(WORKLOADS["tpcds"], rng)


class TestInteractiveMixExecution:
    def test_never_done(self, rng):
        mix = InteractiveMixExecution(WORKLOADS["tpcds"], rng)
        for _ in range(100):
            mix.node_demand(rng)
            mix.advance(1.0)
        assert not mix.done

    def test_maintains_concurrency(self, rng):
        mix = InteractiveMixExecution(WORKLOADS["tpcds"], rng)
        counts = []
        for _ in range(200):
            mix.node_demand(rng)
            mix.advance(1.0)
            counts.append(mix.active_queries)
        assert np.mean(counts) == pytest.approx(
            WORKLOADS["tpcds"].concurrency, abs=1.5
        )

    def test_overload_raises_load(self, rng):
        mix = InteractiveMixExecution(WORKLOADS["tpcds"], rng)
        normal = []
        for _ in range(100):
            normal.append(mix.node_demand(rng).cpu)
            mix.advance(1.0)
        mix.extra_concurrency = 9
        overloaded = []
        for _ in range(100):
            overloaded.append(mix.node_demand(rng).cpu)
            mix.advance(1.0)
        assert np.mean(overloaded) > np.mean(normal) * 2

    def test_batch_profile_rejected(self, rng):
        with pytest.raises(ValueError, match="not an interactive"):
            InteractiveMixExecution(WORKLOADS["wordcount"], rng)

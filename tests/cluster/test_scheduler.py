"""Unit tests for FIFO scheduling semantics."""

import pytest

from repro.cluster.scheduler import FIFOScheduler, JobRequest


class TestFIFOScheduler:
    def test_fifo_order(self):
        sched = FIFOScheduler()
        sched.submit(JobRequest("wordcount", seed=1, tag="a"))
        sched.submit(JobRequest("sort", seed=2, tag="b"))
        first = sched.next_job()
        assert first is not None and first.tag == "a"
        sched.job_finished()
        second = sched.next_job()
        assert second is not None and second.tag == "b"

    def test_exclusivity(self):
        """A batch job owns the cluster (paper §2 restriction)."""
        sched = FIFOScheduler()
        sched.submit(JobRequest("wordcount", seed=1))
        sched.submit(JobRequest("sort", seed=2))
        sched.next_job()
        with pytest.raises(RuntimeError, match="exclusive"):
            sched.next_job()

    def test_empty_queue_returns_none(self):
        assert FIFOScheduler().next_job() is None

    def test_finish_without_running_rejected(self):
        with pytest.raises(RuntimeError):
            FIFOScheduler().job_finished()

    def test_completed_bookkeeping(self):
        sched = FIFOScheduler()
        sched.submit(JobRequest("wordcount", seed=1, tag="x"))
        sched.next_job()
        assert sched.pending == 0
        sched.job_finished()
        assert [j.tag for j in sched.completed] == ["x"]
        assert sched.running is None

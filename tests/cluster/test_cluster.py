"""Integration-leaning tests for the cluster facade."""

import numpy as np
import pytest

from repro.cluster import HadoopCluster, NodeSpec
from repro.cluster.scheduler import FIFOScheduler, JobRequest
from repro.faults.spec import FaultSpec, build_fault


class TestTopology:
    def test_default_five_servers(self, cluster):
        """The paper's testbed: five servers (§4.1)."""
        assert len(cluster.nodes) == 5
        assert cluster.slave_ids == [
            "slave-1", "slave-2", "slave-3", "slave-4",
        ]

    def test_ips_unique(self, cluster):
        ips = [n.ip for n in cluster.nodes.values()]
        assert len(set(ips)) == len(ips)

    def test_heterogeneous_specs(self):
        specs = [NodeSpec(cores=c) for c in (4, 8, 8, 16)]
        c = HadoopCluster(n_slaves=4, slave_specs=specs)
        assert c.nodes["slave-1"].spec.cores == 4
        assert c.nodes["slave-4"].spec.cores == 16

    def test_spec_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HadoopCluster(n_slaves=3, slave_specs=[NodeSpec()])

    def test_at_least_one_slave(self):
        with pytest.raises(ValueError):
            HadoopCluster(n_slaves=0)


class TestRuns:
    def test_batch_run_completes(self, cluster):
        run = cluster.run("wordcount", seed=5)
        assert run.completed
        assert 80 <= run.execution_ticks <= 140
        assert set(run.nodes) == set(cluster.nodes)

    def test_reproducible_with_same_seed(self, cluster):
        a = cluster.run("grep", seed=42)
        b = cluster.run("grep", seed=42)
        assert a.execution_ticks == b.execution_ticks
        assert np.allclose(a.node("slave-1").metrics, b.node("slave-1").metrics)
        assert np.allclose(a.node("slave-2").cpi, b.node("slave-2").cpi)

    def test_different_seeds_differ(self, cluster):
        a = cluster.run("grep", seed=1)
        b = cluster.run("grep", seed=2)
        assert not np.allclose(
            a.node("slave-1").cpi[:50], b.node("slave-1").cpi[: a.ticks][:50]
        )

    def test_interactive_run_fixed_window(self, cluster):
        run = cluster.run("tpcds", seed=3)
        assert run.execution_ticks == 120
        assert run.completed

    def test_interactive_window_override(self, cluster):
        run = cluster.run("tpcds", seed=3, observation_ticks=50)
        assert run.ticks == 50

    def test_unknown_workload_rejected(self, cluster):
        with pytest.raises(KeyError):
            cluster.run("terasort", seed=1)

    def test_fault_on_unknown_node_rejected(self, cluster):
        fault = build_fault("CPU-hog", FaultSpec("slave-99", 10, 10))
        with pytest.raises(ValueError, match="unknown node"):
            cluster.run("wordcount", faults=[fault], seed=1)

    def test_fault_metadata_recorded(self, cluster):
        fault = build_fault("Mem-hog", FaultSpec("slave-2", 25, 30))
        run = cluster.run("wordcount", faults=[fault], seed=9)
        assert run.fault == "Mem-hog"
        assert run.fault_node == "slave-2"
        assert run.fault_window is not None
        assert run.fault_window[0] == 25

    def test_fault_extends_execution(self, cluster):
        clean = cluster.run("wordcount", seed=77)
        fault = build_fault("CPU-hog", FaultSpec("slave-1", 20, 40))
        slowed = cluster.run("wordcount", faults=[fault], seed=77)
        assert slowed.execution_ticks > clean.execution_ticks

    def test_fault_localised_to_target(self, cluster):
        fault = build_fault("Mem-hog", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=12)
        hit = run.node("slave-1").metric("swap_used_mb")[30:60]
        spared = run.node("slave-3").metric("swap_used_mb")[30:60]
        assert hit.max() > 0
        assert spared.max() == 0.0

    def test_suspend_caps_at_max_ticks_when_permanent(self, cluster):
        fault = build_fault("Suspend", FaultSpec("slave-1", 10, 10_000))
        run = cluster.run("wordcount", faults=[fault], seed=4, max_ticks=150)
        assert not run.completed
        assert run.execution_ticks == 150

    def test_master_sees_coordination_load_only(self, cluster):
        run = cluster.run("sort", seed=6)
        master_cpu = run.node("master").metric("cpu_user_pct").mean()
        slave_cpu = run.node("slave-1").metric("cpu_user_pct").mean()
        assert master_cpu < slave_cpu


class TestRunQueue:
    def test_drains_in_order(self, cluster):
        sched = FIFOScheduler()
        sched.submit(JobRequest("grep", seed=1))
        sched.submit(JobRequest("wordcount", seed=2))
        traces = cluster.run_queue(sched)
        assert [t.workload for t in traces] == ["grep", "wordcount"]
        assert sched.pending == 0
        assert len(sched.completed) == 2

"""Tests for the command-line interface (driving main() directly)."""

import json

import pytest

import repro.obs as obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workload", "terasort", "--out", "x.npz"]
            )

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "simulate", "--workload", "grep", "--out", "x.npz",
                    "--fault", "Quantum-hog",
                ]
            )


class TestSimulate:
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        code = main(
            ["simulate", "--workload", "grep", "--seed", "3",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "workload=grep" in capsys.readouterr().out

    def test_with_fault_and_csv(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        csv_dir = tmp_path / "csvs"
        code = main(
            [
                "simulate", "--workload", "grep", "--seed", "4",
                "--fault", "CPU-hog", "--out", str(out),
                "--csv-dir", str(csv_dir),
            ]
        )
        assert code == 0
        assert "fault=CPU-hog" in capsys.readouterr().out
        assert (csv_dir / "slave-1.csv").exists()
        assert (csv_dir / "master.csv").exists()


class TestDiagnose:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("traces")
        normals = []
        for i in range(6):
            p = tmp / f"normal{i}.npz"
            main(
                ["simulate", "--workload", "grep", "--seed", str(300 + i),
                 "--out", str(p)]
            )
            normals.append(p)
        sig = tmp / "hog.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "400",
             "--fault", "CPU-hog", "--out", str(sig)]
        )
        incident = tmp / "incident.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "401",
             "--fault", "CPU-hog", "--out", str(incident)]
        )
        healthy = tmp / "healthy.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "402",
             "--out", str(healthy)]
        )
        return {"normals": normals, "sig": sig,
                "incident": incident, "healthy": healthy}

    def test_diagnoses_incident(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--signature", f"CPU-hog={traces['sig']}",
                "--incident", str(traces["incident"]),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "performance problem detected" in out
        assert "verdict: CPU-hog" in out

    def test_healthy_incident_clean(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["healthy"]),
            ]
        )
        assert code == 0
        assert "no performance problem" in capsys.readouterr().out

    def test_bad_signature_spec(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--signature", "missing-equals",
                "--incident", str(traces["incident"]),
            ]
        )
        assert code == 2
        assert "bad --signature" in capsys.readouterr().err

    def test_unknown_node(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["incident"]),
                "--node", "slave-99",
            ]
        )
        assert code == 2
        assert "not in trace" in capsys.readouterr().err


class TestExplain:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("explain-traces")
        normals = []
        for i in range(6):
            p = tmp / f"normal{i}.npz"
            main(
                ["simulate", "--workload", "grep", "--seed", str(500 + i),
                 "--out", str(p)]
            )
            normals.append(p)
        sig = tmp / "hog.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "510",
             "--fault", "CPU-hog", "--out", str(sig)]
        )
        incident = tmp / "incident.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "511",
             "--fault", "CPU-hog", "--out", str(incident)]
        )
        healthy = tmp / "healthy.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "512",
             "--out", str(healthy)]
        )
        return {"normals": normals, "sig": sig,
                "incident": incident, "healthy": healthy}

    @staticmethod
    def _argv(traces, *extra):
        return [
            "explain",
            "--normal", *[str(p) for p in traces["normals"]],
            "--signature", f"CPU-hog={traces['sig']}",
            "--incident", str(traces["incident"]),
            *extra,
        ]

    def test_text_report_on_clean_stdout(self, traces, capsys):
        code = main(self._argv(traces))
        assert code == 0
        captured = capsys.readouterr()
        assert "InvarNet-X incident explanation: grep@slave-1" in captured.out
        assert "verdict: CPU-hog" in captured.out
        assert "violated invariants" in captured.out
        assert "CPI residuals around alarm tick" in captured.out
        # progress goes to stderr so stdout is exactly the report
        assert "training" in captured.err
        assert "training" not in captured.out

    def test_stdout_is_byte_deterministic(self, traces, capsys):
        main(self._argv(traces))
        first = capsys.readouterr().out
        main(self._argv(traces))
        assert capsys.readouterr().out == first

    def test_json_mode(self, traces, capsys):
        code = main(self._argv(traces, "--json"))
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["matched"] is True
        assert data["top_cause"] == "CPU-hog"
        assert data["context"]["workload"] == "grep"
        assert data["causes"] and data["pairs"] and data["residuals"]

    def test_healthy_incident_clean(self, traces, capsys):
        code = main(
            [
                "explain",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["healthy"]),
            ]
        )
        assert code == 0
        assert "no performance problem" in capsys.readouterr().out

    def test_trace_flag_prints_spans_to_stderr(self, traces, capsys):
        try:
            code = main(["--trace", *self._argv(traces)])
        finally:
            obs.configure(enabled=False)
            obs.remove_handler()
            obs.reset()
        assert code == 0
        err = capsys.readouterr().err
        assert "pipeline.train_from_runs" in err
        assert "arima.fit" in err
        assert "pipeline.detect" in err

    def test_log_level_flag_streams_events(self, traces, capsys):
        try:
            code = main(["--log-level", "info", *self._argv(traces)])
        finally:
            obs.configure(enabled=False)
            obs.remove_handler()
            obs.reset()
        assert code == 0
        assert "event=trained" in capsys.readouterr().err


class TestExperiment:
    def test_fig2(self, capsys):
        code = main(["experiment", "fig2"])
        assert code == 0
        assert "Fig. 2" in capsys.readouterr().out

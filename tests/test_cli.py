"""Tests for the command-line interface (driving main() directly)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workload", "terasort", "--out", "x.npz"]
            )

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "simulate", "--workload", "grep", "--out", "x.npz",
                    "--fault", "Quantum-hog",
                ]
            )


class TestSimulate:
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        code = main(
            ["simulate", "--workload", "grep", "--seed", "3",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "workload=grep" in capsys.readouterr().out

    def test_with_fault_and_csv(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        csv_dir = tmp_path / "csvs"
        code = main(
            [
                "simulate", "--workload", "grep", "--seed", "4",
                "--fault", "CPU-hog", "--out", str(out),
                "--csv-dir", str(csv_dir),
            ]
        )
        assert code == 0
        assert "fault=CPU-hog" in capsys.readouterr().out
        assert (csv_dir / "slave-1.csv").exists()
        assert (csv_dir / "master.csv").exists()


class TestDiagnose:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("traces")
        normals = []
        for i in range(6):
            p = tmp / f"normal{i}.npz"
            main(
                ["simulate", "--workload", "grep", "--seed", str(300 + i),
                 "--out", str(p)]
            )
            normals.append(p)
        sig = tmp / "hog.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "400",
             "--fault", "CPU-hog", "--out", str(sig)]
        )
        incident = tmp / "incident.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "401",
             "--fault", "CPU-hog", "--out", str(incident)]
        )
        healthy = tmp / "healthy.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "402",
             "--out", str(healthy)]
        )
        return {"normals": normals, "sig": sig,
                "incident": incident, "healthy": healthy}

    def test_diagnoses_incident(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--signature", f"CPU-hog={traces['sig']}",
                "--incident", str(traces["incident"]),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "performance problem detected" in out
        assert "verdict: CPU-hog" in out

    def test_healthy_incident_clean(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["healthy"]),
            ]
        )
        assert code == 0
        assert "no performance problem" in capsys.readouterr().out

    def test_bad_signature_spec(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--signature", "missing-equals",
                "--incident", str(traces["incident"]),
            ]
        )
        assert code == 2
        assert "bad --signature" in capsys.readouterr().err

    def test_unknown_node(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["incident"]),
                "--node", "slave-99",
            ]
        )
        assert code == 2
        assert "not in trace" in capsys.readouterr().err


class TestExperiment:
    def test_fig2(self, capsys):
        code = main(["experiment", "fig2"])
        assert code == 0
        assert "Fig. 2" in capsys.readouterr().out

"""Tests for the command-line interface (driving main() directly)."""

import json

import pytest

import repro.obs as obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--workload", "terasort", "--out", "x.npz"]
            )

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "simulate", "--workload", "grep", "--out", "x.npz",
                    "--fault", "Quantum-hog",
                ]
            )


class TestSimulate:
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        code = main(
            ["simulate", "--workload", "grep", "--seed", "3",
             "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "workload=grep" in capsys.readouterr().out

    def test_with_fault_and_csv(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        csv_dir = tmp_path / "csvs"
        code = main(
            [
                "simulate", "--workload", "grep", "--seed", "4",
                "--fault", "CPU-hog", "--out", str(out),
                "--csv-dir", str(csv_dir),
            ]
        )
        assert code == 0
        assert "fault=CPU-hog" in capsys.readouterr().out
        assert (csv_dir / "slave-1.csv").exists()
        assert (csv_dir / "master.csv").exists()


class TestDiagnose:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("traces")
        normals = []
        for i in range(6):
            p = tmp / f"normal{i}.npz"
            main(
                ["simulate", "--workload", "grep", "--seed", str(300 + i),
                 "--out", str(p)]
            )
            normals.append(p)
        sig = tmp / "hog.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "400",
             "--fault", "CPU-hog", "--out", str(sig)]
        )
        incident = tmp / "incident.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "401",
             "--fault", "CPU-hog", "--out", str(incident)]
        )
        healthy = tmp / "healthy.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "402",
             "--out", str(healthy)]
        )
        return {"normals": normals, "sig": sig,
                "incident": incident, "healthy": healthy}

    def test_diagnoses_incident(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--signature", f"CPU-hog={traces['sig']}",
                "--incident", str(traces["incident"]),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "performance problem detected" in out
        assert "verdict: CPU-hog" in out

    def test_healthy_incident_clean(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["healthy"]),
            ]
        )
        assert code == 0
        assert "no performance problem" in capsys.readouterr().out

    def test_bad_signature_spec(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--signature", "missing-equals",
                "--incident", str(traces["incident"]),
            ]
        )
        assert code == 2
        assert "bad --signature" in capsys.readouterr().err

    def test_unknown_node(self, traces, capsys):
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["incident"]),
                "--node", "slave-99",
            ]
        )
        assert code == 2
        assert "not in trace" in capsys.readouterr().err


class TestExplain:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("explain-traces")
        normals = []
        for i in range(6):
            p = tmp / f"normal{i}.npz"
            main(
                ["simulate", "--workload", "grep", "--seed", str(500 + i),
                 "--out", str(p)]
            )
            normals.append(p)
        sig = tmp / "hog.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "510",
             "--fault", "CPU-hog", "--out", str(sig)]
        )
        incident = tmp / "incident.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "511",
             "--fault", "CPU-hog", "--out", str(incident)]
        )
        healthy = tmp / "healthy.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "512",
             "--out", str(healthy)]
        )
        return {"normals": normals, "sig": sig,
                "incident": incident, "healthy": healthy}

    @staticmethod
    def _argv(traces, *extra):
        return [
            "explain",
            "--normal", *[str(p) for p in traces["normals"]],
            "--signature", f"CPU-hog={traces['sig']}",
            "--incident", str(traces["incident"]),
            *extra,
        ]

    def test_text_report_on_clean_stdout(self, traces, capsys):
        code = main(self._argv(traces))
        assert code == 0
        captured = capsys.readouterr()
        assert "InvarNet-X incident explanation: grep@slave-1" in captured.out
        assert "verdict: CPU-hog" in captured.out
        assert "violated invariants" in captured.out
        assert "CPI residuals around alarm tick" in captured.out
        # progress goes to stderr so stdout is exactly the report
        assert "training" in captured.err
        assert "training" not in captured.out

    def test_stdout_is_byte_deterministic(self, traces, capsys):
        main(self._argv(traces))
        first = capsys.readouterr().out
        main(self._argv(traces))
        assert capsys.readouterr().out == first

    def test_json_mode(self, traces, capsys):
        code = main(self._argv(traces, "--json"))
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["matched"] is True
        assert data["top_cause"] == "CPU-hog"
        assert data["context"]["workload"] == "grep"
        assert data["causes"] and data["pairs"] and data["residuals"]

    def test_healthy_incident_clean(self, traces, capsys):
        code = main(
            [
                "explain",
                "--normal", *[str(p) for p in traces["normals"]],
                "--incident", str(traces["healthy"]),
            ]
        )
        assert code == 0
        assert "no performance problem" in capsys.readouterr().out

    def test_trace_flag_prints_spans_to_stderr(self, traces, capsys):
        try:
            code = main(["--trace", *self._argv(traces)])
        finally:
            obs.configure(enabled=False)
            obs.remove_handler()
            obs.reset()
        assert code == 0
        err = capsys.readouterr().err
        assert "pipeline.train_from_runs" in err
        assert "arima.fit" in err
        assert "pipeline.detect" in err

    def test_log_level_flag_streams_events(self, traces, capsys):
        try:
            code = main(["--log-level", "info", *self._argv(traces)])
        finally:
            obs.configure(enabled=False)
            obs.remove_handler()
            obs.reset()
        assert code == 0
        assert "event=trained" in capsys.readouterr().err


class TestExperiment:
    def test_fig2(self, capsys):
        code = main(["experiment", "fig2"])
        assert code == 0
        assert "Fig. 2" in capsys.readouterr().out


class TestHealthAndLedger:
    @pytest.fixture(scope="class")
    def registry(self, tmp_path_factory):
        """A DirectoryStore registry populated through the CLI: one
        training pass, one signature, one diagnosed incident — the
        colocated ledger records all three."""
        tmp = tmp_path_factory.mktemp("health-cli")
        normals = []
        for i in range(6):
            p = tmp / f"normal{i}.npz"
            main(
                ["simulate", "--workload", "grep", "--seed", str(600 + i),
                 "--out", str(p)]
            )
            normals.append(p)
        sig = tmp / "hog.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "610",
             "--fault", "CPU-hog", "--out", str(sig)]
        )
        incident = tmp / "incident.npz"
        main(
            ["simulate", "--workload", "grep", "--seed", "611",
             "--fault", "CPU-hog", "--out", str(incident)]
        )
        reg = tmp / "reg"
        code = main(
            [
                "diagnose",
                "--normal", *[str(p) for p in normals],
                "--signature", f"CPU-hog={sig}",
                "--incident", str(incident),
                "--store", str(reg),
            ]
        )
        assert code == 0
        return {"reg": reg, "normals": normals, "incident": incident}

    def test_health_text_report(self, registry, capsys):
        code = main(["health", str(registry["reg"])])
        assert code == 0
        out = capsys.readouterr().out
        assert "grep@slave-1" in out
        for check in (
            "residual-drift", "fragile-invariants", "ambiguous-signatures",
            "staleness", "timing-regression",
        ):
            assert check in out
        assert "status=" in out and "score=" in out

    def test_health_json_byte_deterministic(self, registry, capsys):
        """Acceptance: two invocations over the same registry produce
        byte-identical JSON."""
        assert main(["health", str(registry["reg"]), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["health", str(registry["reg"]), "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["contexts"][0]["context"] == ["grep", "slave-1"]
        assert report["thresholds"]["stale_runs"] == 50

    def test_health_threshold_flags_reach_the_report(self, registry, capsys):
        code = main(
            ["health", str(registry["reg"]), "--json", "--stale-runs", "1"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["thresholds"]["stale_runs"] == 1

    def test_health_requires_a_registry(self, tmp_path, capsys):
        code = main(["health", str(tmp_path)])
        assert code == 2
        assert "no model registry" in capsys.readouterr().err

    def test_ledger_list_round_trips_every_run(self, registry, capsys):
        from repro.obs.ledger import RunLedger

        recorded = RunLedger(registry["reg"] / "ledger.jsonl").entries()
        assert recorded  # the diagnose invocation left a trail
        code = main(["ledger", "list", str(registry["reg"])])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = lines[1:]  # header first
        assert len(rows) == len(recorded)
        for entry, row in zip(recorded, rows):
            assert row.split()[0] == str(entry["seq"])
            assert entry["kind"] in row
        kinds = {e["kind"] for e in recorded}
        assert {"train", "signature", "diagnose"} <= kinds

    def test_ledger_list_kind_filter(self, registry, capsys):
        code = main(
            ["ledger", "list", str(registry["reg"]), "--kind", "train"]
        )
        assert code == 0
        rows = capsys.readouterr().out.strip().splitlines()[1:]
        assert rows and all("train" in r for r in rows)

    def test_ledger_show_latest_and_by_seq(self, registry, capsys):
        assert main(["ledger", "show", str(registry["reg"])]) == 0
        latest = json.loads(capsys.readouterr().out)
        assert latest["kind"] == "diagnose"
        assert main(
            ["ledger", "show", str(registry["reg"]), "--seq", "1"]
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["seq"] == 1
        assert first["kind"] == "train"

    def test_ledger_show_unknown_seq(self, registry, capsys):
        code = main(["ledger", "show", str(registry["reg"]), "--seq", "999"])
        assert code == 2
        assert "no entry with seq=999" in capsys.readouterr().err

    def test_store_inspect_reports_health_and_last_entry(
        self, registry, capsys
    ):
        code = main(
            ["store", "inspect", str(registry["reg"]),
             "--workload", "grep", "--node", "slave-1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health:" in out and "score=" in out
        assert "last ledger entry:" in out
        assert "kind=diagnose" in out

    def test_trace_out_writes_chrome_trace(self, registry, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        try:
            code = main(
                [
                    "--trace-out", str(trace_path),
                    "diagnose",
                    "--normal", *[str(p) for p in registry["normals"]],
                    "--incident", str(registry["incident"]),
                    "--store", str(registry["reg"]),
                ]
            )
        finally:
            obs.configure(enabled=False)
            obs.remove_handler()
            obs.reset()
        assert code == 0
        assert "wrote trace to" in capsys.readouterr().err
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        assert "pipeline.detect" in names
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        assert doc["otherData"]["producer"] == "repro.obs"


class TestRuns:
    def test_run_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs", "run", "--spec", "smoke"])

    def test_run_requires_a_spec_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs", "run", "--dir", "x"])

    def test_run_rejects_unknown_builtin(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["runs", "run", "--dir", "x", "--spec", "fig99"]
            )

    def test_run_spec_and_spec_file_are_exclusive(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text("{}")
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["runs", "run", "--dir", "x", "--spec", "smoke",
                 "--spec-file", str(spec_file)]
            )

    def test_run_bad_spec_file_exits_2(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text("{not json")
        code = main(
            ["runs", "run", "--dir", str(tmp_path / "reg"),
             "--spec-file", str(spec_file)]
        )
        assert code == 2
        assert "bad campaign spec" in capsys.readouterr().err

    def test_run_spec_file_missing_fields_exits_2(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text('{"name": "half-a-spec"}')
        code = main(
            ["runs", "run", "--dir", str(tmp_path / "reg"),
             "--spec-file", str(spec_file)]
        )
        assert code == 2
        assert "bad campaign spec" in capsys.readouterr().err

    def test_list_on_empty_registry(self, tmp_path, capsys):
        code = main(["runs", "list", "--dir", str(tmp_path)])
        assert code == 0
        assert "no indexed runs" in capsys.readouterr().out

    def test_show_unknown_run_exits_2(self, tmp_path, capsys):
        code = main(
            ["runs", "show", "nope-000000000000", "--dir", str(tmp_path)]
        )
        assert code == 2
        assert "no committed run" in capsys.readouterr().err

    def test_compare_on_empty_index_exits_2(self, tmp_path, capsys):
        code = main(
            ["runs", "compare", "InvarNet-X", "ARX", "--dir", str(tmp_path)]
        )
        assert code == 2
        assert "no indexed measurements" in capsys.readouterr().err

    def test_compare_same_system_exits_2(self, tmp_path, capsys):
        code = main(
            ["runs", "compare", "ARX", "ARX", "--dir", str(tmp_path)]
        )
        assert code == 2
        assert "itself" in capsys.readouterr().err


class TestIncidentsAndReplay:
    @pytest.fixture()
    def incident_registry(self, tmp_path_factory):
        """A registry whose blackbox committed bundles for a two-node
        fault (driven in-process; bundles land in <registry>/incidents)."""
        from repro.core import OperationContext
        from repro.serve import FleetMonitor
        from repro.store import DirectoryStore

        from tests.obs.test_blackbox import drive_fault, incident_pipeline

        registry = tmp_path_factory.mktemp("incident-cli") / "registry"
        contexts = [
            OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
            for i in range(3)
        ]
        pipe = incident_pipeline(
            contexts, store=DirectoryStore(registry)
        )
        for context in contexts:
            pipe.store.persist(context.key())
        fleet = FleetMonitor(
            pipe,
            shards=2,
            workers=0,
            window_ticks=8,
            warmup_ticks=12,
            cooldown_ticks=4,
            blackbox_dir=registry / "incidents",
        )
        with fleet:
            drive_fault(
                fleet, contexts, {contexts[0].key(), contexts[1].key()}
            )
        obs.configure(enabled=False)
        obs.reset()
        return registry

    def test_incidents_list_accepts_registry_root(
        self, incident_registry, capsys
    ):
        code = main(["incidents", "list", str(incident_registry)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("P01  shared-workload")
        assert "cause disk_hog" in out
        assert "P02" not in out  # one platform incident, not singletons

    def test_incidents_list_horizon_and_json(
        self, incident_registry, capsys
    ):
        code = main(
            ["incidents", "list", str(incident_registry / "incidents"),
             "--horizon", "5", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert [i["incident_id"] for i in doc] == ["P01", "P02", "P03"]
        assert all(
            i["classification"] == "shared-workload" for i in doc
        )

    def test_incidents_show(self, incident_registry, capsys):
        code = main(["incidents", "show", str(incident_registry), "P01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "causes: disk_hog" in out
        assert "request-id req-" in out

    def test_incidents_show_unknown_exits_2(
        self, incident_registry, capsys
    ):
        code = main(["incidents", "show", str(incident_registry), "P99"])
        assert code == 2
        assert "no platform incident" in capsys.readouterr().err

    def test_replay_reproduces_and_exits_0(
        self, incident_registry, capsys
    ):
        bundle = sorted((incident_registry / "incidents").iterdir())[0]
        code = main(["replay", str(bundle)])
        assert code == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out
        assert "byte-identical" in out

    def test_replay_json_mode(self, incident_registry, capsys):
        bundle = sorted((incident_registry / "incidents").iterdir())[0]
        code = main(["replay", str(bundle), "--json", "--passes", "3"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["passes"] == 3

    def test_replay_tampered_bundle_exits_1(
        self, incident_registry, capsys
    ):
        bundle = sorted((incident_registry / "incidents").iterdir())[0]
        explain = bundle / "explain.txt"
        explain.write_text(
            explain.read_text(encoding="utf-8") + "tamper\n",
            encoding="utf-8",
        )
        code = main(["replay", str(bundle)])
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_missing_bundle_exits_2(self, tmp_path, capsys):
        code = main(["replay", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_health_folds_in_platform_incidents(
        self, incident_registry, capsys
    ):
        code = main(["health", str(incident_registry)])
        assert code == 0
        out = capsys.readouterr().out
        assert "platform-incidents" in out

    def test_health_json_carries_incident_check(
        self, incident_registry, capsys
    ):
        code = main(["health", str(incident_registry), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        names = [c["name"] for c in doc["fleet"]]
        assert "platform-incidents" in names

    def test_serve_parser_accepts_blackbox_flags(self):
        args = build_parser().parse_args(
            ["serve", "reg", "--no-blackbox", "--blackbox-capacity", "32"]
        )
        assert args.no_blackbox is True
        assert args.blackbox_capacity == 32
        assert args.blackbox is None

"""Bit-parity of the serving fast lane against the full ARIMA recursion.

The fleet's whole speedup rests on one claim: for ``q == 0`` models the
tail prediction equals :meth:`ARIMAModel.predict_next` on the full
history *bit for bit* (same float ops in the same order).  These tests
pin that claim with ``==``, not ``pytest.approx``.
"""

import numpy as np
import pytest

from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.online import MonitorState, OnlineMonitor
from repro.serve.fastpath import (
    fast_check,
    predict_next_from_tail,
    tail_length,
)
from repro.stats.arima import ARIMAModel, ARIMAOrder, fit_arima

from tests.serve.conftest import build_pipeline
from repro.core import OperationContext

PURE_AR_ORDERS = [(0, 1, 0), (1, 0, 0), (2, 1, 0), (3, 0, 0), (1, 2, 0)]


def _fitted(order, rng):
    series = np.cumsum(rng.normal(0.0, 0.1, size=200)) + 5.0
    return fit_arima(series, order)


class TestTailPrediction:
    @pytest.mark.parametrize("order", PURE_AR_ORDERS)
    def test_bit_identical_to_full_recursion(self, order, rng):
        model = _fitted(order, rng)
        history = np.cumsum(rng.normal(0.0, 0.2, size=120)) + 3.0
        need = tail_length(model)
        full = model.predict_next(history)
        fast = predict_next_from_tail(model, history[-need:])
        assert fast == full  # exact, not approx

    @pytest.mark.parametrize("order", PURE_AR_ORDERS)
    def test_longer_tails_change_nothing(self, order, rng):
        model = _fitted(order, rng)
        history = np.cumsum(rng.normal(0.0, 0.2, size=90)) + 3.0
        full = model.predict_next(history)
        for extra in (0, 1, 5, 40):
            tail = history[-(tail_length(model) + extra) :]
            assert predict_next_from_tail(model, tail) == full

    def test_tail_length_values(self):
        def model_of(order):
            p, d, q = order
            return ARIMAModel(
                order=ARIMAOrder(*order),
                ar=np.zeros(p),
                ma=np.zeros(q),
                intercept=0.0,
                sigma2=1.0,
            )

        assert tail_length(model_of((0, 1, 0))) == 2
        assert tail_length(model_of((2, 1, 0))) == 3
        assert tail_length(model_of((3, 0, 0))) == 3
        assert tail_length(model_of((0, 2, 0))) == 3

    def test_ma_models_rejected(self, rng):
        model = _fitted((1, 0, 1), rng)
        with pytest.raises(ValueError, match="q == 0"):
            tail_length(model)
        with pytest.raises(ValueError, match="q == 0"):
            predict_next_from_tail(model, np.ones(10))

    def test_short_tail_rejected(self, rng):
        model = _fitted((3, 1, 0), rng)
        with pytest.raises(ValueError, match="tail too short"):
            predict_next_from_tail(model, np.ones(tail_length(model) - 1))


class TestFastCheck:
    def _monitor(self, detector=None, warmup=12):
        context = OperationContext("wordcount", "slave-1")
        pipe = build_pipeline([context], detector)
        return OnlineMonitor(
            pipe, context, window_ticks=8, warmup_ticks=warmup,
            cooldown_ticks=4,
        )

    def test_declines_outside_monitoring(self):
        monitor = self._monitor()
        assert monitor.state is MonitorState.WARMUP
        assert fast_check(monitor, 1.0) is None

    def test_declines_ma_models(self, rng):
        model = _fitted((1, 0, 1), rng)
        detector = AnomalyDetector.from_artifacts(
            model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
        )
        monitor = self._monitor(detector)
        for _ in range(12):
            monitor.observe(np.zeros(4), 5.0)
        assert monitor.state is MonitorState.MONITORING
        assert fast_check(monitor, 5.0) is None

    def test_matches_monitor_verdict_tick_for_tick(self, rng):
        """Drive two identical monitors through noise + a fault ramp;
        the fast lane's verdict stream must equal the slow one's."""
        model = fit_arima(
            np.cumsum(rng.normal(0.0, 0.1, size=150)) + 4.0, (2, 1, 0)
        )
        detector = AnomalyDetector.from_artifacts(
            model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.3)
        )
        fast_monitor = self._monitor(detector)
        slow_monitor = self._monitor(detector)
        cpi = list(4.0 + rng.normal(0.0, 0.05, size=30)) + [
            5.0, 6.0, 7.0, 8.0, 9.0, 10.0,
        ]
        fast_events, slow_events = [], []
        for value in cpi:
            verdict = fast_check(fast_monitor, float(value))
            ev = fast_monitor.observe(np.zeros(4), float(value), anomalous=verdict)
            if ev is not None:
                fast_events.append((type(ev).__name__, ev.tick))
            ev = slow_monitor.observe(np.zeros(4), float(value))
            if ev is not None:
                slow_events.append((type(ev).__name__, ev.tick))
        assert fast_events == slow_events
        assert fast_events  # the ramp must actually alarm
        assert fast_monitor.state is slow_monitor.state

    def test_pre_warmup_gate_matches_monitor(self):
        """Below warmup_ticks the monitor never checks; the fast lane
        must report False (not run the prediction) identically."""
        monitor = self._monitor(warmup=12)
        # force MONITORING early to isolate the history-length gate
        for _ in range(12):
            monitor.observe(np.zeros(4), 1.0)
        assert monitor.cpi_len == 12
        assert fast_check(monitor, 1.0) in (True, False)

"""Fleet-wide incident correlation, concurrent alarms, and the
``X-Request-Id`` thread through ledger, span, explain and bundle.

Covers :mod:`repro.serve.incidents` (classification on the paper's
context axes, horizon chaining, rendering) plus the fleet-level
contracts the blackbox adds: no DiagnosisEvent is lost under concurrent
alarms, the bounded incident ring evicts deterministically, and evicted
incidents always have an already-committed bundle on disk.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from collections import Counter

import numpy as np
import pytest

import repro.obs as obs
from repro.core import OperationContext
from repro.core.online import DiagnosisEvent
from repro.obs.blackbox import BUNDLE_MANIFEST, load_bundle
from repro.serve import FleetMonitor, Tick, build_server
from repro.serve.incidents import (
    DEFAULT_HORIZON,
    IncidentRecord,
    classify,
    correlate,
    records_from_fleet,
    render_incident_list,
    render_incident_show,
    scan_bundles,
    summarize,
)
from repro.store import DirectoryStore

from tests.obs.test_blackbox import drive_fault, incident_pipeline

MONITOR_KW = dict(window_ticks=8, warmup_ticks=12, cooldown_ticks=4)


def _rec(
    bundle_id: str,
    workload: str,
    node: str,
    alarm: int,
    cause: str | None = "disk_hog",
) -> IncidentRecord:
    return IncidentRecord(
        bundle_id=bundle_id,
        workload=workload,
        node=node,
        alarm_tick=alarm,
        tick=alarm + 3,
        cause=cause,
        matched=cause is not None,
    )


class TestClassify:
    def test_single_context(self):
        group = (_rec("a", "wc", "n0", 5), _rec("b", "wc", "n0", 8))
        assert classify(group) == "single-context"

    def test_shared_workload(self):
        group = (_rec("a", "wc", "n0", 5), _rec("b", "wc", "n1", 6))
        assert classify(group) == "shared-workload"

    def test_shared_node(self):
        group = (_rec("a", "wc", "n0", 5), _rec("b", "sort", "n0", 6))
        assert classify(group) == "shared-node"

    def test_fleet_wide(self):
        group = (
            _rec("a", "wc", "n0", 5),
            _rec("b", "sort", "n1", 6),
            _rec("c", "wc", "n2", 7),
        )
        assert classify(group) == "fleet-wide"


class TestCorrelate:
    def test_empty(self):
        assert correlate([]) == []
        assert summarize([]) == {
            "bundles": 0,
            "platform_incidents": 0,
            "multi_context": 0,
            "classes": {},
        }

    def test_horizon_chains_transitively(self):
        # 10-apart alarms chain pairwise even though first..last > horizon
        records = [_rec(f"r{i}", "wc", f"n{i}", 10 * i) for i in range(5)]
        incidents = correlate(records, horizon=10)
        assert len(incidents) == 1
        assert incidents[0].first_alarm == 0
        assert incidents[0].last_alarm == 40

    def test_gap_beyond_horizon_splits(self):
        records = [
            _rec("a", "wc", "n0", 10),
            _rec("b", "wc", "n1", 15),
            _rec("c", "wc", "n0", 80),
        ]
        incidents = correlate(records, horizon=30)
        assert [i.incident_id for i in incidents] == ["P01", "P02"]
        assert len(incidents[0].records) == 2
        assert incidents[1].classification == "single-context"

    def test_horizon_zero_requires_same_tick(self):
        records = [_rec("a", "wc", "n0", 5), _rec("b", "wc", "n1", 6)]
        assert len(correlate(records, horizon=0)) == 2

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            correlate([], horizon=-1)

    def test_summary_counts_classes(self):
        records = [
            _rec("a", "wc", "n0", 10),
            _rec("b", "wc", "n1", 12),
            _rec("c", "sort", "n5", 200),
        ]
        summary = summarize(records)
        assert summary == {
            "bundles": 3,
            "platform_incidents": 2,
            "multi_context": 1,
            "classes": {"shared-workload": 1, "single-context": 1},
        }


class TestRendering:
    def test_list_and_show_are_deterministic(self):
        records = [
            _rec("inc-b", "wc", "n1", 12),
            _rec("inc-a", "wc", "n0", 10),
        ]
        incidents = correlate(records)
        listed = render_incident_list(incidents)
        assert listed == render_incident_list(correlate(list(records)))
        assert listed.startswith("P01  shared-workload")
        assert "2 bundle(s)" in listed
        shown = render_incident_show(incidents[0])
        assert "causes: disk_hog" in shown
        assert "contexts: wc@n0, wc@n1" in shown
        # members are listed alarm-order first
        assert shown.index("inc-a") < shown.index("inc-b")

    def test_empty_list_renders_placeholder(self):
        assert render_incident_list([]) == "no platform incidents"


class TestScanBundles:
    def test_missing_root_is_empty(self, tmp_path):
        assert scan_bundles(tmp_path / "nope") == []

    def test_aborted_commits_are_skipped(self, tmp_path):
        contexts = [
            OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
            for i in range(2)
        ]
        incidents = tmp_path / "incidents"
        fleet = FleetMonitor(
            incident_pipeline(contexts),
            shards=2,
            workers=0,
            blackbox_dir=incidents,
            **MONITOR_KW,
        )
        with fleet:
            drive_fault(fleet, contexts, {contexts[0].key()}, ticks=22)
        committed = scan_bundles(incidents)
        assert committed
        # an aborted attempt: directory without the manifest commit point
        aborted = incidents / "inc-aborted00000"
        aborted.mkdir()
        (aborted / "window.json").write_text("{}", encoding="utf-8")
        assert scan_bundles(incidents) == committed


class TestFleetCorrelation:
    def _run_fleet(self, tmp_path, contexts, faulty):
        incidents = tmp_path / "incidents"
        fleet = FleetMonitor(
            incident_pipeline(contexts),
            shards=2,
            workers=0,
            blackbox_dir=incidents,
            **MONITOR_KW,
        )
        with fleet:
            drive_fault(fleet, contexts, faulty)
        return incidents

    def test_multi_context_fault_is_one_platform_incident(self, tmp_path):
        """The acceptance bar: a fault spanning contexts correlates into
        ONE platform incident, not N per-lane singletons."""
        contexts = [
            OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
            for i in range(3)
        ]
        incidents_dir = self._run_fleet(
            tmp_path, contexts, {contexts[0].key(), contexts[1].key()}
        )
        records = scan_bundles(incidents_dir)
        assert len(records) == 6  # 3 alarms per faulty lane
        incidents = correlate(records)
        assert len(incidents) == 1
        assert incidents[0].classification == "shared-workload"
        assert incidents[0].causes == ["disk_hog"]
        summary = summarize(records)
        assert summary["platform_incidents"] == 1
        assert summary["multi_context"] == 1

    def test_shared_node_classification(self, tmp_path):
        contexts = [
            OperationContext("wordcount", "node-0", ip="10.0.0.0"),
            OperationContext("terasort", "node-0", ip="10.0.0.0"),
        ]
        incidents_dir = self._run_fleet(
            tmp_path, contexts, {c.key() for c in contexts}
        )
        incidents = correlate(scan_bundles(incidents_dir))
        assert len(incidents) == 1
        assert incidents[0].classification == "shared-node"

    def test_records_from_fleet_prefers_bundles(self, tmp_path):
        contexts = [
            OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
            for i in range(2)
        ]
        fleet = FleetMonitor(
            incident_pipeline(contexts),
            shards=2,
            workers=0,
            blackbox_dir=tmp_path / "incidents",
            **MONITOR_KW,
        )
        with fleet:
            drive_fault(fleet, contexts, {contexts[0].key()}, ticks=22)
            records = records_from_fleet(fleet)
        assert records
        assert all(r.bundle_id.startswith("inc-") for r in records)
        assert all(r.path is not None for r in records)

    def test_records_from_fleet_ring_fallback(self):
        contexts = [
            OperationContext("wordcount", f"node-{i}") for i in range(2)
        ]
        fleet = FleetMonitor(
            incident_pipeline(contexts), shards=2, workers=0, **MONITOR_KW
        )
        with fleet:
            drive_fault(fleet, contexts, {contexts[0].key()}, ticks=22)
            records = records_from_fleet(fleet)
        assert records
        assert all(r.bundle_id.startswith("mem-") for r in records)
        assert all(r.path is None for r in records)


class TestConcurrentAlarms:
    THREADS = 8

    def _concurrent_fleet(self, incidents_dir):
        contexts = [
            OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
            for i in range(self.THREADS)
        ]
        fleet = FleetMonitor(
            incident_pipeline(contexts),
            shards=4,
            workers=0,
            max_incidents=4,
            blackbox_dir=incidents_dir,
            **MONITOR_KW,
        )
        return fleet, contexts

    def _drive_concurrently(self, fleet, contexts):
        barrier = threading.Barrier(self.THREADS)
        per_thread: list[list] = [[] for _ in contexts]
        errors: list[BaseException] = []

        def work(i: int) -> None:
            try:
                barrier.wait()
                for t in range(40):
                    fault = t >= 14
                    cpi = 1.0 + (t - 13) * 1.0 if fault else 1.0
                    result = fleet.ingest(
                        [
                            Tick(
                                context=contexts[i],
                                metrics=np.array([1.0, 2.0, 3.0, 4.0])
                                + t * 0.01,
                                cpi=cpi,
                            )
                        ]
                    )
                    per_thread[i].extend(result.events)
            except BaseException as exc:  # surfaced by the test body
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        return per_thread

    def test_no_lost_diagnoses_and_evicted_bundles_survive(self, tmp_path):
        incidents_dir = tmp_path / "incidents"
        fleet, contexts = self._concurrent_fleet(incidents_dir)
        with fleet:
            per_thread = self._drive_concurrently(fleet, contexts)
            diagnoses = [
                e
                for events in per_thread
                for e in events
                if isinstance(e.event, DiagnosisEvent)
            ]
            # every lane alarms at ticks 16/26/36: 3 diagnoses apiece,
            # none lost to concurrency
            assert len(diagnoses) == self.THREADS * 3
            assert fleet.bundles_committed == self.THREADS * 3

            ring = fleet.retained_incidents()
            # the ring is bounded and every resident entry already has
            # its committed bundle id
            assert len(ring) == 4
            assert all(r.bundle_id for _, r in ring)

        # evicted incidents still have committed bundles: all 24 on disk
        records = scan_bundles(incidents_dir)
        assert len(records) == self.THREADS * 3
        per_context = Counter((r.workload, r.node) for r in records)
        assert all(per_context[c.key()] == 3 for c in contexts)
        # and the whole storm correlates into one fleet incident
        incidents = correlate(records)
        assert len(incidents) == 1
        assert incidents[0].classification == "shared-workload"

    def test_ring_eviction_is_deterministic(self, tmp_path):
        """Identical sequential ingest twice: identical ring contents
        (LRU order is insertion order, not timing)."""

        def run(incidents_dir):
            contexts = [
                OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
                for i in range(8)
            ]
            fleet = FleetMonitor(
                incident_pipeline(contexts),
                shards=4,
                workers=0,
                max_incidents=4,
                blackbox_dir=incidents_dir,
                **MONITOR_KW,
            )
            with fleet:
                drive_fault(
                    fleet, contexts, {c.key() for c in contexts}, ticks=22
                )
                return [key for key, _ in fleet.retained_incidents()]

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second
        assert len(first) == 4


class TestRequestIdEndToEnd:
    def _served_incident_fleet(self, tmp_path):
        contexts = [
            OperationContext("wordcount", f"node-{i}") for i in range(2)
        ]
        store = DirectoryStore(tmp_path / "registry")
        pipe = incident_pipeline(contexts, store=store)
        for context in contexts:
            pipe.store.persist(context.key())
        fleet = FleetMonitor(
            pipe,
            shards=2,
            workers=0,
            blackbox_dir=tmp_path / "incidents",
            **MONITOR_KW,
        )
        obs.configure(enabled=True)
        server = build_server(fleet)  # ephemeral port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        return fleet, contexts, f"http://{host}:{port}", server, thread

    @staticmethod
    def _post(url, payload, request_id):
        req = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": request_id,
            },
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())

    @staticmethod
    def _tick_json(context, cpi, t):
        return {
            "workload": context.workload,
            "node": context.node_id,
            "metrics": [
                1.0 + t * 0.01,
                2.0 + t * 0.01,
                3.0 + t * 0.01,
                4.0 + t * 0.01,
            ],
            "cpi": cpi,
        }

    def test_request_id_reaches_ledger_span_bundle_and_explain(
        self, tmp_path
    ):
        fleet, contexts, base, server, thread = self._served_incident_fleet(
            tmp_path
        )
        target = contexts[0]
        try:
            diagnosed_rid = None
            for t in range(22):
                fault = t >= 14
                cpi = 1.0 + (t - 13) * 1.0 if fault else 1.0
                rid = f"rid-{t:03d}"
                _, reply = self._post(
                    f"{base}/ingest",
                    {"ticks": [self._tick_json(c, cpi if c is target else 1.0, t) for c in contexts]},
                    rid,
                )
                if any(
                    e.get("type") == "diagnosis" for e in reply["events"]
                ):
                    diagnosed_rid = rid
            assert diagnosed_rid is not None

            # 1. the fleet-diagnose ledger line carries the id
            entries = fleet.pipeline.ledger.entries(kind="fleet-diagnose")
            assert entries
            assert entries[-1]["request_id"] == diagnosed_rid
            bundle_id = entries[-1]["bundle"]

            # 2. the committed bundle's manifest carries the id
            bundle = load_bundle(tmp_path / "incidents" / bundle_id)
            assert bundle.manifest["request_id"] == diagnosed_rid
            assert f"request-id: {diagnosed_rid}" in bundle.explain_text()

            # 3. the serving span of that request carries the id
            attrs = []

            def collect(span):
                attrs.append(span.attributes)
                for child in span.children:
                    collect(child)

            for root in list(obs.tracer().finished):
                collect(root)
            assert any(
                a.get("request_id") == diagnosed_rid for a in attrs
            )

            # 4. explain output renders the id
            explanation = fleet.explain(target)
            assert explanation.request_id == diagnosed_rid
            assert (
                f"request-id: {diagnosed_rid}"
                in explanation.render_text()
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            fleet.close()

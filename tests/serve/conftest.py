"""Serve-test isolation: same obs hygiene as tests/obs (the fleet emits
process-global metrics), plus shared hand-built fleet fixtures."""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.core import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.inference import InferenceResult
from repro.core.invariants import InvariantSet
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

CATALOG = MetricCatalog(names=("m0", "m1", "m2", "m3"))


@pytest.fixture(autouse=True)
def clean_obs():
    saved_clock = obs.tracer().clock
    obs.configure(enabled=False)
    obs.reset()
    yield
    obs.configure(enabled=False)
    obs.tracer().clock = saved_clock
    obs.remove_handler()
    obs.reset()


def last_value_detector() -> AnomalyDetector:
    """ARIMA(0, 1, 0): anomalous when CPI moves > 0.5 from its
    predecessor — the hand-checkable harness of tests/core."""
    model = ARIMAModel(
        order=ARIMAOrder(0, 1, 0),
        ar=np.empty(0),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    return AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
    )


def adopt_context(
    pipe: InvarNetX,
    context: OperationContext,
    detector: AnomalyDetector | None = None,
) -> None:
    invariants = InvariantSet(
        pairs=[(0, 1)], baseline=np.array([0.9]), catalog=CATALOG
    )
    pipe.store.adopt(
        context.key(),
        ContextModels(
            context=context,
            detector=detector or last_value_detector(),
            invariants=invariants,
        ),
    )


def stub_infer(pipe: InvarNetX) -> None:
    """Replace MIC inference with a deterministic stub (inference is
    covered elsewhere; these tests exercise the fleet machinery)."""
    pipe.infer = lambda ctx, window, top_k=3: InferenceResult(
        causes=[], violations=np.zeros(1, dtype=bool)
    )


def build_pipeline(
    contexts: list[OperationContext],
    detector: AnomalyDetector | None = None,
) -> InvarNetX:
    pipe = InvarNetX(catalog=CATALOG)
    for context in contexts:
        adopt_context(pipe, context, detector)
    stub_infer(pipe)
    return pipe


@pytest.fixture()
def obs_served_fleet():
    """A live ephemeral-port server with observability collection on."""
    import threading

    from repro.serve import FleetMonitor, build_server

    contexts = [OperationContext("wordcount", f"node-{i}") for i in range(3)]
    fleet = FleetMonitor(
        build_pipeline(contexts),
        shards=2,
        workers=0,
        window_ticks=8,
        warmup_ticks=12,
        cooldown_ticks=4,
    )
    obs.configure(enabled=True)
    server = build_server(fleet)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield fleet, contexts, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    fleet.close()

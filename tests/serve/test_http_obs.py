"""Tests of the HTTP layer's operational surface: RED metrics,
``/metrics``, ``/debug/prof``, request ids, edge cases and client
disconnects."""

from __future__ import annotations

import http.client
import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request
from urllib.parse import urlparse

import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry
from repro.serve.http import (
    DISCONNECTS_TOTAL,
    MAX_BODY,
    REQUEST_SECONDS,
    REQUESTS_TOTAL,
    FleetRequestHandler,
    HttpMetrics,
    endpoint_label,
)

from tests.serve.test_http import _get, _post, _tick_json


@pytest.fixture()
def served_fleet(obs_served_fleet):
    return obs_served_fleet


def _hostport(base):
    url = urlparse(base)
    return url.hostname, url.port


def _await(predicate, timeout=10.0):
    """Wait out the reply-first/record-second window of ``_dispatch``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestEndpointLabel:
    def test_known_paths_are_themselves(self):
        for path in ("/health", "/contexts", "/metrics", "/ingest"):
            assert endpoint_label(path) == path

    def test_parameterised_paths_collapse(self):
        assert endpoint_label("/explain/wc@node-1") == "/explain"
        assert endpoint_label("/explain") == "/explain"
        assert endpoint_label("/debug/prof") == "/debug/prof"

    def test_unknown_paths_are_bounded(self):
        assert endpoint_label("/nope") == "(other)"
        assert endpoint_label("/explain-not-really") == "(other)"


class TestMetricsEndpoint:
    def test_exposition_counts_per_endpoint(self, served_fleet):
        fleet, contexts, base = served_fleet
        _get(f"{base}/health")
        requests = obs.metrics_registry().family(REQUESTS_TOTAL)
        assert _await(
            lambda: requests.value(
                endpoint="/health", method="GET", status="200"
            )
            == 1
        )
        status, body = _get(f"{base}/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert (
            'invarnetx_http_requests_total'
            '{endpoint="/health",method="GET",status="200"} 1'
        ) in text
        # recorded after the reply: a /metrics body never includes its
        # own request
        assert 'endpoint="/metrics"' not in text
        assert _await(
            lambda: requests.value(
                endpoint="/metrics", method="GET", status="200"
            )
            == 1
        )
        status, body = _get(f"{base}/metrics")
        assert (
            'invarnetx_http_requests_total'
            '{endpoint="/metrics",method="GET",status="200"} 1'
        ) in body.decode("utf-8")

    def test_latency_histogram_present(self, served_fleet):
        fleet, contexts, base = served_fleet
        _get(f"{base}/health")
        requests = obs.metrics_registry().family(REQUESTS_TOTAL)
        assert _await(
            lambda: requests.value(
                endpoint="/health", method="GET", status="200"
            )
            == 1
        )
        _, body = _get(f"{base}/metrics")
        text = body.decode("utf-8")
        assert "# TYPE invarnetx_http_request_seconds histogram" in text
        assert (
            'invarnetx_http_request_seconds_count{endpoint="/health"} 1'
        ) in text
        assert 'le="0.5"' in text  # the SLO-aligned bound

    def test_exposition_is_byte_stable(self, served_fleet):
        fleet, contexts, base = served_fleet
        _get(f"{base}/health")
        registry = obs.metrics_registry()
        assert (
            registry.render_prometheus() == registry.render_prometheus()
        )

    def test_errors_carry_their_status_label(self, served_fleet):
        fleet, contexts, base = served_fleet
        with pytest.raises(urllib.error.HTTPError):
            _get(f"{base}/nope")
        requests = obs.metrics_registry().family(REQUESTS_TOTAL)
        assert _await(
            lambda: requests.value(
                endpoint="(other)", method="GET", status="404"
            )
            == 1
        )


class TestRequestIds:
    def test_client_supplied_id_is_echoed(self, served_fleet):
        fleet, contexts, base = served_fleet
        req = urllib.request.Request(
            f"{base}/health", headers={"X-Request-Id": "abc-123"}
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.headers["X-Request-Id"] == "abc-123"

    def test_generated_ids_are_unique(self, served_fleet):
        fleet, contexts, base = served_fleet
        seen = set()
        for _ in range(3):
            with urllib.request.urlopen(
                f"{base}/health", timeout=10
            ) as resp:
                rid = resp.headers["X-Request-Id"]
            assert rid.startswith("req-")
            seen.add(rid)
        assert len(seen) == 3


class TestDebugProf:
    def test_speedscope_profile_of_live_ingest(self, served_fleet):
        fleet, contexts, base = served_fleet
        stop = threading.Event()

        def _pound():
            t = 0
            while not stop.is_set():
                _post(
                    f"{base}/ingest",
                    {"ticks": [_tick_json(contexts[0], 1.0, t)]},
                )
                t += 1

        pounder = threading.Thread(target=_pound, daemon=True)
        pounder.start()
        try:
            status, body = _get(f"{base}/debug/prof?seconds=0.3")
        finally:
            stop.set()
            pounder.join(timeout=10)
        assert status == 200
        doc = json.loads(body)
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["endValue"] > 0
        assert len(doc["shared"]["frames"]) > 0

    def test_collapsed_format(self, served_fleet):
        fleet, contexts, base = served_fleet
        status, body = _get(
            f"{base}/debug/prof?seconds=0.1&hz=200&format=collapsed"
        )
        assert status == 200
        text = body.decode("utf-8")
        # the handler thread itself is parked in the capture wait
        assert any(
            line.rsplit(" ", 1)[1].isdigit()
            for line in text.splitlines()
        )

    def test_query_validation(self, served_fleet):
        fleet, contexts, base = served_fleet
        for query in (
            "seconds=0",
            "seconds=31",
            "seconds=abc",
            "seconds=0.1&hz=0.5",
            "seconds=0.1&format=pprof",
            "seconds=0.1&bogus=1",
            "seconds=0.1&seconds=0.2",
        ):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{base}/debug/prof?{query}")
            assert err.value.code == 400, query


class TestEdgeCases:
    def test_oversized_content_length_is_400(self, served_fleet):
        fleet, contexts, base = served_fleet
        host, port = _hostport(base)
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/ingest")
            conn.putheader("Content-Length", str(MAX_BODY + 1))
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert b"Content-Length" in resp.read()
        finally:
            conn.close()

    def test_negative_content_length_is_400(self, served_fleet):
        fleet, contexts, base = served_fleet
        host, port = _hostport(base)
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/ingest")
            conn.putheader("Content-Length", "-5")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_non_dict_json_body_is_400(self, served_fleet):
        fleet, contexts, base = served_fleet
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base}/ingest", json.dumps([1, 2, 3]).encode())
        assert err.value.code == 400

    def test_explain_unknown_query_is_400(self, served_fleet):
        fleet, contexts, base = served_fleet
        for query in ("bogus=1", "format=xml", "format=json&format=json"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{base}/explain/wordcount@node-0?{query}")
            assert err.value.code == 400, query

    def test_concurrent_ingest_accounting_is_exact(self, served_fleet):
        fleet, contexts, base = served_fleet
        workers, each = 4, 5
        errors = []

        def _loop(worker):
            try:
                for t in range(each):
                    status, reply = _post(
                        f"{base}/ingest",
                        {"ticks": [_tick_json(contexts[worker % 3], 1.0, t)]},
                    )
                    assert status == 200
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)

        threads = [
            threading.Thread(target=_loop, args=(i,)) for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        registry = obs.metrics_registry()
        requests = registry.family(REQUESTS_TOTAL)
        _await(
            lambda: requests.value(
                endpoint="/ingest", method="POST", status="200"
            )
            >= workers * each
        )
        assert (
            requests.value(endpoint="/ingest", method="POST", status="200")
            == workers * each
        )
        ((labels, _sum, count, _buckets),) = [
            s
            for s in registry.family(REQUEST_SECONDS).samples()
            if s[0] == {"endpoint": "/ingest"}
        ]
        assert count == workers * each


class TestDisconnects:
    def test_broken_pipe_is_counted_not_raised(self):
        registry = MetricsRegistry(enabled=True)
        handler = object.__new__(FleetRequestHandler)
        handler.path = "/health"
        handler.headers = {}
        handler.metrics = HttpMetrics(registry)
        handler.close_connection = False

        def _explode():
            raise BrokenPipeError("client went away")

        handler._dispatch("GET", _explode)  # must not raise
        assert handler.close_connection
        metrics = handler.metrics
        assert metrics.disconnects.value(endpoint="/health") == 1
        assert (
            metrics.requests.value(
                endpoint="/health", method="GET", status="0"
            )
            == 1
        )

    def test_connection_reset_is_counted_too(self):
        registry = MetricsRegistry(enabled=True)
        handler = object.__new__(FleetRequestHandler)
        handler.path = "/contexts"
        handler.headers = {"X-Request-Id": "rst-1"}
        handler.metrics = HttpMetrics(registry)
        handler.close_connection = False

        def _explode():
            raise ConnectionResetError

        handler._dispatch("GET", _explode)
        assert handler.metrics.disconnects.value(endpoint="/contexts") == 1

    def test_early_closing_socket_leaves_server_alive(self, served_fleet):
        fleet, contexts, base = served_fleet
        host, port = _hostport(base)
        sock = socket.create_connection((host, port), timeout=10)
        # a slow endpoint guarantees the reply lands after our RST
        sock.sendall(
            b"GET /debug/prof?seconds=0.4&hz=50 HTTP/1.1\r\n"
            b"Host: test\r\n\r\n"
        )
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            struct.pack("ii", 1, 0),  # close() sends RST immediately
        )
        sock.close()
        disconnects = obs.metrics_registry().family(DISCONNECTS_TOTAL)
        _await(lambda: disconnects.value(endpoint="/debug/prof") >= 1)
        assert disconnects.value(endpoint="/debug/prof") == 1
        # the handler thread absorbed the error; the server still serves
        status, _ = _get(f"{base}/health")
        assert status == 200

"""FleetMonitor behaviour: parity, sharding, eviction, threads, sink.

The ground truth for every parity test is N standalone
:class:`OnlineMonitor` instances fed the identical per-context streams —
the fleet is pure multiplexing machinery and must never change *what*
is detected, only *where* it runs.
"""

import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.core import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.online import AlarmEvent, DiagnosisEvent, OnlineMonitor
from repro.serve import FleetMonitor, Tick, shard_index
from repro.stats.arima import fit_arima
from repro.store import DirectoryStore, LockedStore

from tests.serve.conftest import (
    CATALOG,
    adopt_context,
    build_pipeline,
    stub_infer,
)

MONITOR_KW = dict(window_ticks=8, warmup_ticks=12, cooldown_ticks=4)


def _contexts(n, workload="wordcount"):
    return [OperationContext(workload, f"node-{i}") for i in range(n)]


def _staggered_cpi(tick, i):
    """Context ``i`` ramps +1/tick from tick ``15 + i`` (staggered
    faults); healthy level 1.0 before that."""
    onset = 15 + i
    return 1.0 if tick < onset else 1.0 + (tick - onset + 1)


def _standalone_events(contexts, ticks, cpi_of, detector=None):
    """Reference: one OnlineMonitor per context, fed sequentially."""
    events = {c.key(): [] for c in contexts}
    monitors = {
        c.key(): OnlineMonitor(
            build_pipeline([c], detector), c, **MONITOR_KW
        )
        for c in contexts
    }
    for t in range(ticks):
        for i, c in enumerate(contexts):
            ev = monitors[c.key()].observe(
                np.full(4, float(t)), cpi_of(t, i)
            )
            if ev is not None:
                events[c.key()].append((type(ev).__name__, ev.tick))
    return events


def _fleet_events(fleet, contexts, ticks, cpi_of):
    events = {c.key(): [] for c in contexts}
    for t in range(ticks):
        batch = [
            Tick(c, np.full(4, float(t)), cpi_of(t, i))
            for i, c in enumerate(contexts)
        ]
        for fe in fleet.ingest(batch).events:
            events[fe.context.key()].append(
                (type(fe.event).__name__, fe.event.tick)
            )
    return events


class TestFleetParity:
    def test_matches_standalone_monitors(self):
        contexts = _contexts(12)
        fleet = FleetMonitor(
            build_pipeline(contexts), shards=4, workers=0, **MONITOR_KW
        )
        with fleet:
            got = _fleet_events(fleet, contexts, 45, _staggered_cpi)
        want = _standalone_events(contexts, 45, _staggered_cpi)
        assert got == want
        # the staggered ramps really produced incidents to compare
        assert sum(len(v) for v in want.values()) >= 2 * len(contexts)

    def test_matches_standalone_with_ma_fallback(self, rng):
        """A q=1 detector forces the slow path; parity must still hold
        (the fast lane declines instead of approximating)."""
        model = fit_arima(
            np.cumsum(rng.normal(0.0, 0.1, size=150)) + 4.0, (1, 0, 1)
        )
        detector = AnomalyDetector.from_artifacts(
            model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.3)
        )

        def cpi_of(t, i):
            onset = 15 + i
            return 4.0 if t < onset else 4.0 + 2.0 * (t - onset + 1)

        contexts = _contexts(4)
        fleet = FleetMonitor(
            build_pipeline(contexts, detector),
            shards=2,
            workers=0,
            **MONITOR_KW,
        )
        with fleet:
            got = _fleet_events(fleet, contexts, 40, cpi_of)
        want = _standalone_events(contexts, 40, cpi_of, detector)
        assert got == want
        assert sum(len(v) for v in want.values()) > 0

    def test_threaded_ingest_matches_inline(self):
        contexts = _contexts(16)
        inline = FleetMonitor(
            build_pipeline(contexts), shards=8, workers=0, **MONITOR_KW
        )
        threaded = FleetMonitor(
            build_pipeline(contexts), shards=8, workers=8, **MONITOR_KW
        )
        with inline, threaded:
            got_inline = _fleet_events(inline, contexts, 45, _staggered_cpi)
            got_threaded = _fleet_events(
                threaded, contexts, 45, _staggered_cpi
            )
        assert got_threaded == got_inline


class TestFleetRegistry:
    def test_lazy_construction(self):
        contexts = _contexts(6)
        fleet = FleetMonitor(
            build_pipeline(contexts), shards=2, workers=0, **MONITOR_KW
        )
        with fleet:
            assert fleet.contexts() == []
            fleet.ingest([Tick(contexts[0], np.zeros(4), 1.0)])
            assert fleet.contexts() == [contexts[0].key()]
            fleet.ingest(
                [Tick(c, np.zeros(4), 1.0) for c in contexts[1:3]]
            )
            assert fleet.contexts() == sorted(
                c.key() for c in contexts[:3]
            )

    def test_untrained_context_rejected_not_fatal(self):
        trained = _contexts(2)
        stranger = OperationContext("terasort", "node-x")
        fleet = FleetMonitor(
            build_pipeline(trained), shards=2, workers=0, **MONITOR_KW
        )
        with fleet:
            batch = [Tick(c, np.zeros(4), 1.0) for c in trained]
            batch.insert(1, Tick(stranger, np.zeros(4), 1.0))
            with pytest.warns(RuntimeWarning, match="untrained context"):
                result = fleet.ingest(batch)
            assert result.accepted == 2
            assert result.rejected == 1
            assert fleet.rejected_total == 1
            assert stranger.key() not in fleet.contexts()

    def test_shard_assignment_is_stable_and_total(self):
        keys = [c.key() for c in _contexts(64)]
        for key in keys:
            idx = shard_index(key, 8)
            assert 0 <= idx < 8
            assert idx == shard_index(key, 8)
        assert len({shard_index(k, 8) for k in keys}) > 1

    def test_lru_eviction_and_warm_restart(self):
        contexts = _contexts(3)
        fleet = FleetMonitor(
            build_pipeline(contexts),
            shards=1,
            workers=0,
            max_lanes_per_shard=2,
            **MONITOR_KW,
        )
        with fleet:
            for c in contexts[:2]:
                fleet.ingest([Tick(c, np.zeros(4), 1.0)])
            # touch 0 so 1 is the LRU lane, then force an eviction
            fleet.ingest([Tick(contexts[0], np.zeros(4), 1.0)])
            fleet.ingest([Tick(contexts[2], np.zeros(4), 1.0)])
            resident = fleet.contexts()
            assert len(resident) == 2
            assert contexts[1].key() not in resident
            # the evicted context is rebuilt from the store on return
            result = fleet.ingest([Tick(contexts[1], np.zeros(4), 1.0)])
            assert result.accepted == 1
            lane = fleet.lane(contexts[1])
            assert lane is not None and lane.cpi_len == 1  # fresh monitor

    def test_store_is_wrapped_in_locked_store(self):
        pipe = build_pipeline(_contexts(1))
        fleet = FleetMonitor(pipe, workers=0, **MONITOR_KW)
        with fleet:
            assert isinstance(pipe.store, LockedStore)
            # idempotent: building a second fleet must not double-wrap
            fleet2 = FleetMonitor(pipe, workers=0, **MONITOR_KW)
            with fleet2:
                assert pipe.store.inner is not None
                assert not isinstance(pipe.store.inner, LockedStore)


class TestFleetStress:
    N_THREADS = 8

    def _drive(self, seed_contexts, ticks=45):
        """One complete staggered-fault run with 8 ingest threads; the
        ingest calls themselves also come from multiple threads."""
        fleet = FleetMonitor(
            build_pipeline(seed_contexts),
            shards=8,
            workers=self.N_THREADS,
            **MONITOR_KW,
        )
        collected: dict = {c.key(): [] for c in seed_contexts}
        lock = threading.Lock()
        # split the contexts over caller threads; each thread streams its
        # slice tick by tick (per-context order is what parity needs)
        slices = [seed_contexts[i :: self.N_THREADS] for i in range(self.N_THREADS)]

        def worker(slice_contexts):
            for t in range(ticks):
                batch = [
                    Tick(
                        c,
                        np.full(4, float(t)),
                        _staggered_cpi(t, seed_contexts.index(c)),
                    )
                    for c in slice_contexts
                ]
                result = fleet.ingest(batch)
                with lock:
                    for fe in result.events:
                        collected[fe.context.key()].append(
                            (type(fe.event).__name__, fe.event.tick)
                        )

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in slices if s
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        fleet.close()
        return collected

    def test_no_lost_events_under_concurrency(self):
        contexts = _contexts(24)
        collected = self._drive(contexts)
        want = _standalone_events(contexts, 45, _staggered_cpi)
        # per-context event streams survive the thread fan-out intact
        assert {k: sorted(v) for k, v in collected.items()} == {
            k: sorted(v) for k, v in want.items()
        }

    def test_prometheus_snapshot_is_byte_stable(self):
        contexts = _contexts(24)

        def run_once():
            obs.reset()
            obs.configure(enabled=True)
            self._drive(contexts)
            return obs.metrics_registry().render_prometheus()

        first = run_once()
        second = run_once()
        assert first == second
        assert "invarnetx_fleet_ticks_total" in first
        assert "invarnetx_monitor_checks_total" in first


class TestIncidentSink:
    def _incident_fleet(self, tmp_path=None):
        contexts = _contexts(2)
        if tmp_path is not None:
            store = DirectoryStore(tmp_path / "registry")
            pipe = InvarNetX(catalog=CATALOG, store=store)
            for c in contexts:
                adopt_context(pipe, c)
                pipe.store.persist(c.key())
            stub_infer(pipe)
        else:
            pipe = build_pipeline(contexts)
        fleet = FleetMonitor(pipe, shards=2, workers=0, **MONITOR_KW)
        _fleet_events(fleet, contexts, 30, _staggered_cpi)
        return fleet, contexts

    def test_last_incident_retained_with_window(self):
        fleet, contexts = self._incident_fleet()
        with fleet:
            event = fleet.last_incident(contexts[0])
            assert isinstance(event, DiagnosisEvent)
            assert event.window is not None
            assert event.window.shape == (8, 4)

    def test_explain_unknown_context_raises(self):
        fleet, _ = self._incident_fleet()
        with fleet:
            with pytest.raises(KeyError):
                fleet.explain(OperationContext("wordcount", "node-99"))

    def test_ledger_records_fleet_diagnoses(self, tmp_path):
        fleet, contexts = self._incident_fleet(tmp_path)
        with fleet:
            assert fleet.pipeline.ledger is not None
            entries = fleet.pipeline.ledger.entries(kind="fleet-diagnose")
            assert len(entries) >= 2  # every context diagnosed at least once
            recorded = {tuple(e["context"]) for e in entries}
            assert recorded == {c.key() for c in contexts}
            for entry in entries:
                assert entry["alarm_tick"] < entry["tick"]

    def test_warm_start_from_directory_store(self, tmp_path):
        """A fresh pipeline attached to the populated registry serves the
        fleet without any in-process training."""
        contexts = _contexts(2)
        store = DirectoryStore(tmp_path / "registry")
        seed_pipe = InvarNetX(catalog=CATALOG, store=store)
        for c in contexts:
            adopt_context(seed_pipe, c)
            seed_pipe.store.persist(c.key())
        # new process simulation: attach a fresh pipeline to the registry
        cold = InvarNetX.attached_to(DirectoryStore(tmp_path / "registry"))
        stub_infer(cold)
        fleet = FleetMonitor(cold, shards=2, workers=0, **MONITOR_KW)
        with fleet:
            got = _fleet_events(fleet, contexts, 30, _staggered_cpi)
        assert all(len(v) >= 2 for v in got.values())

"""Tests of the ``invarnetx top`` dashboard (repro.serve.top)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.serve.top import (
    CLEAR,
    HttpSource,
    RegistrySource,
    TopApp,
    histogram_quantile,
    parse_prometheus,
)

from tests.serve.test_http import _get, _post, _tick_json


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    requests = registry.counter(
        "invarnetx_http_requests_total",
        "requests",
        ("endpoint", "method", "status"),
    )
    requests.inc(10, endpoint="/ingest", method="POST", status="200")
    requests.inc(2, endpoint="/ingest", method="POST", status="500")
    requests.inc(3, endpoint="/health", method="GET", status="200")
    seconds = registry.histogram(
        "invarnetx_http_request_seconds",
        "latency",
        ("endpoint",),
        buckets=(0.1, 0.5, 1.0),
    )
    for _ in range(8):
        seconds.observe(0.05, endpoint="/ingest")
    for _ in range(4):
        seconds.observe(0.3, endpoint="/ingest")
    registry.counter(
        "invarnetx_fleet_ticks_total", "ticks", ("shard",)
    ).inc(40, shard="0")
    registry.counter(
        "invarnetx_fleet_ticks_total", "ticks", ("shard",)
    ).inc(20, shard="1")
    return registry


class TestParsePrometheus:
    def test_round_trips_the_registry_exposition(self):
        registry = _populated_registry()
        families = parse_prometheus(registry.render_prometheus())
        assert (
            {"endpoint": "/ingest", "method": "POST", "status": "200"},
            10.0,
        ) in families["invarnetx_http_requests_total"]
        buckets = {
            labels["le"]: value
            for labels, value in families[
                "invarnetx_http_request_seconds_bucket"
            ]
            if labels["endpoint"] == "/ingest"
        }
        assert buckets == {"0.1": 8.0, "0.5": 12.0, "1": 12.0, "+Inf": 12.0}

    def test_escaped_label_values(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("weird_total", "w", ("tag",)).inc(
            1, tag='say "hi"\nback\\slash'
        )
        families = parse_prometheus(registry.render_prometheus())
        ((labels, value),) = families["weird_total"]
        assert labels["tag"] == 'say "hi"\nback\\slash'
        assert value == 1.0

    def test_unlabelled_samples(self):
        families = parse_prometheus("# TYPE x counter\nx_total 7\n")
        assert families["x_total"] == [({}, 7.0)]


class TestHistogramQuantile:
    BUCKETS = [(0.1, 8.0), (0.5, 12.0), (1.0, 12.0), (float("inf"), 12.0)]

    def test_median_interpolates_inside_a_bucket(self):
        # rank 6 of 12 lands inside the first bucket: 6/8 of [0, 0.1]
        assert histogram_quantile(0.5, self.BUCKETS) == pytest.approx(0.075)

    def test_p99_lands_in_the_slow_bucket(self):
        p99 = histogram_quantile(0.99, self.BUCKETS)
        assert 0.1 < p99 <= 0.5

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        assert histogram_quantile(
            1.0, [(0.1, 0.0), (float("inf"), 5.0)]
        ) == pytest.approx(0.1)

    def test_empty_histogram_is_none(self):
        assert histogram_quantile(0.5, []) is None
        assert histogram_quantile(0.5, [(0.1, 0.0)]) is None

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            histogram_quantile(1.5, self.BUCKETS)

    def test_all_zero_histogram_is_none(self):
        # a scraped-but-never-observed histogram: every cumulative
        # count 0, including +Inf — must degrade to None, not divide
        # by a zero span
        assert (
            histogram_quantile(
                0.99, [(0.1, 0.0), (1.0, 0.0), (float("inf"), 0.0)]
            )
            is None
        )

    def test_poisoned_counts_are_none(self):
        nan = float("nan")
        assert histogram_quantile(0.5, [(0.1, nan), (1.0, 5.0)]) is None
        assert histogram_quantile(0.5, [(0.1, -3.0), (1.0, 5.0)]) is None
        assert (
            histogram_quantile(0.5, [(0.1, float("inf"))]) is None
        )

    def test_poisoned_bounds_are_none(self):
        nan = float("nan")
        assert histogram_quantile(0.5, [(nan, 5.0), (1.0, 9.0)]) is None
        assert (
            histogram_quantile(0.5, [(-float("inf"), 5.0), (1.0, 9.0)])
            is None
        )

    def test_latency_cell_renders_dash_for_degraded_quantile(self):
        from repro.serve.top import _ms

        assert _ms(None) == "-"
        assert _ms(float("nan")) == "-"
        assert _ms(float("inf")) == "-"
        assert _ms(0.0753) == "75.3ms"


class TestRegistrySourceAndRender:
    def test_one_deterministic_frame(self):
        registry = _populated_registry()
        source = RegistrySource(registry, clock=lambda: 100.0)
        app = TopApp(source, clock=lambda: 100.0)
        frame = app.frame()
        assert frame == app.render(source.snapshot())  # pure rendering
        assert "lanes -" in frame
        assert "ticks 60" in frame
        assert "s0:40  s1:20" in frame
        assert "/ingest" in frame and "/health" in frame
        # first frame has no rate baseline
        assert "-" in frame.splitlines()[2]

    def test_rates_come_from_snapshot_deltas(self):
        registry = _populated_registry()
        clock_box = [100.0]
        source = RegistrySource(registry, clock=lambda: clock_box[0])
        app = TopApp(source, clock=lambda: clock_box[0])
        app.frame()
        clock_box[0] = 110.0
        registry.counter(
            "invarnetx_fleet_ticks_total", "ticks", ("shard",)
        ).inc(50, shard="0")
        registry.counter(
            "invarnetx_http_requests_total",
            "requests",
            ("endpoint", "method", "status"),
        ).inc(20, endpoint="/ingest", method="POST", status="200")
        frame = app.frame()
        assert "(5.0/s)" in frame  # 50 ticks over 10 injected seconds
        ingest_line = next(
            line for line in frame.splitlines() if line.startswith("/ingest")
        )
        assert "2.0/s" in ingest_line

    def test_error_and_latency_columns(self):
        registry = _populated_registry()
        app = TopApp(RegistrySource(registry, clock=lambda: 1.0))
        frame = app.frame()
        ingest_line = next(
            line for line in frame.splitlines() if line.startswith("/ingest")
        )
        assert " 2 " in ingest_line  # the two 500s
        assert "75.0ms" in ingest_line  # p50 of 8×0.05 + 4×0.3
        # /health has requests but no histogram series
        health_line = next(
            line for line in frame.splitlines() if line.startswith("/health")
        )
        assert health_line.rstrip().endswith("-")

    def test_incidents_header_cell(self):
        # no fleet attached: the incidents counter is unknowable -> "-"
        registry = _populated_registry()
        app = TopApp(RegistrySource(registry, clock=lambda: 1.0))
        header = app.frame().splitlines()[2]
        assert header.endswith("incidents -")

        class FakeFleet:
            bundles_committed = 7

            def contexts(self):
                return {}

        app = TopApp(
            RegistrySource(registry, fleet=FakeFleet(), clock=lambda: 1.0)
        )
        header = app.frame().splitlines()[2]
        assert header.endswith("incidents 7")

    def test_empty_registry_renders_placeholder(self):
        app = TopApp(
            RegistrySource(MetricsRegistry(enabled=True), clock=lambda: 0.0)
        )
        assert "(no requests yet)" in app.frame()

    def test_interval_validation(self):
        source = RegistrySource(MetricsRegistry(), clock=lambda: 0.0)
        with pytest.raises(ValueError):
            TopApp(source, interval=0.0)


class TestRunLoop:
    def test_once_mode_emits_no_escape_codes(self):
        registry = _populated_registry()
        app = TopApp(RegistrySource(registry, clock=lambda: 0.0))
        frames = []
        app.run(frames.append, once=True)
        assert len(frames) == 1
        assert CLEAR not in frames[0]

    def test_iterations_repaint_and_sleep(self):
        registry = _populated_registry()
        clock_box = [0.0]
        slept = []

        def _sleep(seconds):
            slept.append(seconds)
            clock_box[0] += seconds

        app = TopApp(
            RegistrySource(registry, clock=lambda: clock_box[0]),
            interval=2.0,
            sleep=_sleep,
        )
        frames = []
        app.run(frames.append, iterations=3)
        assert len(frames) == 3
        assert all(frame.startswith(CLEAR) for frame in frames)
        assert slept == [2.0, 2.0]  # no sleep after the last frame


class TestHttpSource:
    def test_snapshot_over_live_server(self, obs_served_fleet):
        fleet, contexts, base = obs_served_fleet
        for t in range(3):
            _post(
                f"{base}/ingest",
                {"ticks": [_tick_json(c, 1.0, t) for c in contexts]},
            )
        source = HttpSource(base, clock=lambda: 5.0)
        snapshot = source.snapshot()
        assert snapshot.taken_at == 5.0
        assert snapshot.contexts == 3  # resident lanes via /health
        assert snapshot.ticks == 9.0
        ingest = next(
            e for e in snapshot.endpoints if e.endpoint == "/ingest"
        )
        assert ingest.requests == 3.0
        assert ingest.p50 is not None

    def test_cli_top_once(self, obs_served_fleet, capsys):
        fleet, contexts, base = obs_served_fleet
        _get(f"{base}/health")
        assert main(["top", "--once", "--url", base]) == 0
        out = capsys.readouterr().out
        assert "invarnetx top" in out
        assert CLEAR not in out

    def test_cli_top_unreachable_is_exit_2(self, capsys):
        assert (
            main(["top", "--once", "--url", "http://127.0.0.1:9"]) == 2
        )
        assert "cannot reach" in capsys.readouterr().err

"""End-to-end tests of the stdlib HTTP/JSON serving surface."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import OperationContext
from repro.serve import FleetMonitor, build_server

from tests.serve.conftest import build_pipeline

MONITOR_KW = dict(window_ticks=8, warmup_ticks=12, cooldown_ticks=4)


@pytest.fixture()
def served_fleet():
    contexts = [OperationContext("wordcount", f"node-{i}") for i in range(3)]
    fleet = FleetMonitor(
        build_pipeline(contexts), shards=2, workers=0, **MONITOR_KW
    )
    server = build_server(fleet)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield fleet, contexts, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    fleet.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read()


def _post(url, payload):
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def _tick_json(context, cpi, tick):
    return {
        "workload": context.workload,
        "node": context.node_id,
        "metrics": [float(tick)] * 4,
        "cpi": cpi,
    }


def _drive_incident(base, context, contexts):
    """Warm up all contexts, then ramp ``context`` into a diagnosis."""
    events = []
    for t in range(12):
        _post(
            f"{base}/ingest",
            {"ticks": [_tick_json(c, 1.0, t) for c in contexts]},
        )
    value = 1.0
    for t in range(12, 12 + 3 + 3):  # 3-tick ramp, then window fill
        value += 1.0
        status, reply = _post(
            f"{base}/ingest",
            {"ticks": [_tick_json(context, value, t)]},
        )
        assert status == 200
        events.extend(reply["events"])
    return events


class TestEndpoints:
    def test_health(self, served_fleet):
        fleet, contexts, base = served_fleet
        status, body = _get(f"{base}/health")
        reply = json.loads(body)
        assert status == 200
        assert reply["status"] == "ok"
        assert reply["shards"] == 2
        assert reply["contexts"] == 0  # nothing ingested yet

    def test_ingest_and_contexts(self, served_fleet):
        fleet, contexts, base = served_fleet
        status, reply = _post(
            f"{base}/ingest",
            {"ticks": [_tick_json(c, 1.0, 0) for c in contexts]},
        )
        assert status == 200
        assert reply == {
            "accepted": 3, "rejected": 0, "malformed": 0, "events": [],
        }
        status, body = _get(f"{base}/contexts")
        listed = json.loads(body)["contexts"]
        assert listed == {
            "wordcount@node-0": "warmup",
            "wordcount@node-1": "warmup",
            "wordcount@node-2": "warmup",
        }

    def test_incident_events_and_explain(self, served_fleet):
        fleet, contexts, base = served_fleet
        target = contexts[0]
        events = _drive_incident(base, target, contexts)
        kinds = [e["type"] for e in events]
        assert kinds == ["alarm", "diagnosis"]
        assert all(e["context"] == str(target) for e in events)
        diagnosis = events[-1]
        assert diagnosis["alarm_tick"] < diagnosis["tick"]
        # text report
        status, body = _get(f"{base}/explain/{target}")
        assert status == 200
        assert str(target) in body.decode()
        # JSON report
        status, body = _get(f"{base}/explain/{target}?format=json")
        report = json.loads(body)
        assert report["context"]["workload"] == target.workload

    def test_malformed_ticks_counted_not_fatal(self, served_fleet):
        fleet, contexts, base = served_fleet
        status, reply = _post(
            f"{base}/ingest",
            {
                "ticks": [
                    _tick_json(contexts[0], 1.0, 0),
                    {"workload": "wordcount"},  # missing fields
                    "not even a dict",
                    {"workload": "wc", "node": "n", "metrics": "x", "cpi": 1},
                ]
            },
        )
        assert status == 200
        assert reply["accepted"] == 1
        assert reply["malformed"] == 3

    def test_bad_envelope_is_400(self, served_fleet):
        _, _, base = served_fleet
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base}/ingest", b"this is not json")
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base}/ingest", {"not_ticks": []})
        assert err.value.code == 400

    def test_unknown_paths_are_404(self, served_fleet):
        _, _, base = served_fleet
        for url in (f"{base}/nope", f"{base}/explain"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(url)
            assert err.value.code == 404

    def test_explain_errors(self, served_fleet):
        _, contexts, base = served_fleet
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/explain/no-separator")
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/explain/wordcount@node-0")  # no incident yet
        assert err.value.code == 404

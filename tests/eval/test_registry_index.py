"""The cross-run SQLite index: upserts, queries, rebuilds."""

import sqlite3

import pytest

from repro.eval.registry.index import RunIndex
from repro.eval.registry.run import commit_manifest, measurement_row
from repro.eval.registry.spec import CampaignSpec, SystemSpec

from tests.eval.test_registry_run import make_result


def make_manifest(name="unit", system="A", base_seed=0, created=1000.0):
    spec = CampaignSpec(
        name=name,
        workload="wordcount",
        faults=("CPU-hog", "Mem-hog"),
        systems=(SystemSpec(system, kind="invarnet-x"),),
        base_seed=base_seed,
    )
    result = make_result(system)
    table = [measurement_row(spec, system, 0, result)]
    fault_scores = [
        {
            "run_id": spec.run_id,
            "system": system,
            "repetition": 0,
            "fault": fault,
            "precision": round(score.precision, 6),
            "recall": round(score.recall, 6),
            "tp": score.tp,
            "fp": score.fp,
            "fn": score.fn,
        }
        for fault, score in sorted(result.scores.items())
        if fault != "average"
    ]
    return {
        "format": 1,
        "run_id": spec.run_id,
        "spec": spec.to_json(),
        "spec_fingerprint": spec.fingerprint,
        "created": created,
        "status": "ok",
        "table": table,
        "fault_scores": fault_scores,
    }


@pytest.fixture()
def index(tmp_path) -> RunIndex:
    return RunIndex(tmp_path / "index.sqlite")


class TestUpsert:
    def test_roundtrip(self, index):
        manifest = make_manifest()
        index.upsert(manifest)
        (run,) = index.runs()
        assert run["run_id"] == manifest["run_id"]
        assert run["spec_name"] == "unit"
        assert run["systems"] == "A"
        (m,) = index.measurements()
        assert m["precision"] == pytest.approx(1 / 3, abs=1e-6)
        assert len(index.fault_scores()) == 2

    def test_reingest_is_idempotent(self, index):
        manifest = make_manifest()
        index.upsert(manifest)
        before = index.dump()
        index.upsert(manifest)
        assert index.dump() == before

    def test_reingest_replaces_child_rows(self, index):
        manifest = make_manifest()
        index.upsert(manifest)
        manifest["table"][0]["precision"] = 0.9
        manifest["fault_scores"] = manifest["fault_scores"][:1]
        index.upsert(manifest)
        (m,) = index.measurements()
        assert m["precision"] == 0.9
        assert len(index.fault_scores()) == 1

    def test_distinct_runs_accumulate(self, index):
        index.upsert(make_manifest(base_seed=0))
        index.upsert(make_manifest(base_seed=1))
        assert len(index.runs()) == 2


class TestQueries:
    def test_filters(self, index):
        index.upsert(make_manifest(name="camp-a", system="A"))
        index.upsert(make_manifest(name="camp-b", system="B"))
        assert len(index.measurements(system="A")) == 1
        assert len(index.measurements(spec_name="camp-b")) == 1
        assert index.measurements(system="A", spec_name="camp-b") == []
        assert index.systems() == ["A", "B"]
        assert index.systems(spec_name="camp-a") == ["A"]
        assert [r["spec_name"] for r in index.runs(spec_name="camp-a")] == [
            "camp-a"
        ]

    def test_empty_index(self, index):
        assert index.runs() == []
        assert index.measurements() == []
        assert index.systems() == []


class TestRebuild:
    def test_rebuild_from_manifests_is_bit_identical(self, tmp_path, index):
        runs_root = tmp_path / "runs"
        for seed in (3, 1, 2):  # committed out of order on purpose
            manifest = make_manifest(base_seed=seed, created=100.0 + seed)
            run_dir = runs_root / manifest["run_id"]
            run_dir.mkdir(parents=True)
            commit_manifest(run_dir, manifest)
            index.upsert(manifest)
        before = index.dump()
        count = index.rebuild(runs_root)
        assert count == 3
        assert index.dump() == before
        # ...and a second, fresh index over the same manifests agrees.
        other = RunIndex(tmp_path / "other.sqlite")
        other.rebuild(runs_root)
        assert other.dump() == before

    def test_rebuild_skips_aborted_attempts(self, tmp_path, index):
        runs_root = tmp_path / "runs"
        manifest = make_manifest()
        run_dir = runs_root / manifest["run_id"]
        run_dir.mkdir(parents=True)
        commit_manifest(run_dir, manifest)
        (runs_root / "unit-dead0dead0de").mkdir()  # no manifest: aborted
        assert index.rebuild(runs_root) == 1
        assert len(index.runs()) == 1

    def test_rebuild_of_missing_root(self, tmp_path, index):
        assert index.rebuild(tmp_path / "nowhere") == 0


class TestFormatGuard:
    def test_future_format_is_rejected(self, tmp_path):
        path = tmp_path / "index.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="index format 99"):
            RunIndex(path).runs()

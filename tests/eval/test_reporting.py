"""Tests for the paper-style report formatting."""

import numpy as np

from repro.eval.confusion import PrecisionRecall
from repro.eval.experiments import (
    DiagnosisExperimentResult,
    Fig2Result,
    Fig4Series,
    Fig5Series,
    Fig6RuleScore,
    OverheadRow,
)
from repro.eval.reporting import (
    format_comparison,
    format_diagnosis,
    format_fig2,
    format_fig4,
    format_fig5,
    format_fig6,
    format_table1,
)


def _pr(p, r):
    return PrecisionRecall(precision=p, recall=r, tp=1, fp=0, fn=0)


def _result(system="InvarNet-X"):
    return DiagnosisExperimentResult(
        workload="wordcount",
        system=system,
        scores={
            "CPU-hog": _pr(1.0, 0.9),
            "Lock-R": _pr(0.8, 0.3),
            "average": _pr(0.9, 0.6),
        },
    )


class TestFormatters:
    def test_fig2_mentions_all_three_conditions(self):
        r = Fig2Result(
            baseline_ticks=100,
            disturbed_ticks=101,
            hogged_ticks=110,
            baseline_cpi=np.full(100, 1.1),
            disturbed_cpi=np.full(100, 1.1),
            hogged_cpi=np.full(110, 1.4),
            disturb_window=(45, 75),
        )
        text = format_fig2(r)
        assert "baseline=100" in text
        assert "disturbed=101" in text
        assert "CPU-hog=110" in text

    def test_fig4_reports_correlation_and_fit(self):
        s = Fig4Series(
            workload="wordcount",
            exec_norm=np.array([1.0, 1.5, 2.0]),
            kpi_norm=np.array([1.0, 1.4, 2.1]),
            correlation=0.97,
            poly_coeffs=np.array([0.5, 0.2, 0.3]),
            poly_r2=0.99,
        )
        text = format_fig4({"wordcount": s})
        assert "r=0.970" in text
        assert "R^2=0.990" in text

    def test_fig5_reports_threshold(self):
        resid = np.full(80, 0.01)
        resid[40:70] = 0.3
        s = Fig5Series(
            workload="tpcds",
            residuals=resid,
            fault_window=(40, 70),
            threshold_upper=0.15,
        )
        text = format_fig5({"tpcds": s})
        assert "threshold=0.1500" in text
        assert "fault=0.3000" in text

    def test_fig6_lists_every_rule(self):
        rows = [
            Fig6RuleScore("max-min", 0.6, 0.01, True),
            Fig6RuleScore("95-percentile", 0.8, 0.06, True),
            Fig6RuleScore("beta-max", 0.6, 0.0, True),
        ]
        text = format_fig6({"wordcount": rows})
        for rule in ("max-min", "95-percentile", "beta-max"):
            assert rule in text

    def test_diagnosis_has_average_row_last(self):
        text = format_diagnosis(_result(), "title")
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "AVERAGE" in lines[-1]
        assert "Lock-R" in text
        # per-fault rows exclude the synthetic average key
        assert sum("average" in ln for ln in lines) == 0

    def test_comparison_lists_all_systems(self):
        text = format_comparison(
            {
                "InvarNet-X": _result(),
                "ARX": _result("ARX"),
                "no-context": _result("no-context"),
            }
        )
        for name in ("InvarNet-X", "ARX", "no-context"):
            assert name in text

    def test_table1_columns(self):
        rows = [
            OverheadRow(
                workload="wordcount",
                perf_model=0.01,
                invariant_mic=3.0,
                invariant_arx=4.0,
                signature_build=0.2,
                detect=0.0002,
                cause_infer=0.15,
                cause_infer_arx=0.01,
            )
        ]
        text = format_table1(rows)
        assert "Invar-C(ARX)" in text
        assert "wordcount" in text
        assert "3.00" in text

    def test_bars_bounded(self):
        from repro.eval.reporting import _bar

        assert _bar(0.0) == "." * 24
        assert _bar(1.0) == "#" * 24
        assert _bar(2.0) == "#" * 24  # clamped
        assert len(_bar(0.37)) == 24


class TestConfusionView:
    def test_confusion_counts(self):
        from repro.eval.confusion import DiagnosisOutcome

        result = _result()
        result.outcomes = [
            DiagnosisOutcome("CPU-hog", "CPU-hog", True),
            DiagnosisOutcome("CPU-hog", "Lock-R", True),
            DiagnosisOutcome("Lock-R", None, False),
        ]
        conf = result.confusion()
        assert conf[("CPU-hog", "CPU-hog")] == 1
        assert conf[("CPU-hog", "Lock-R")] == 1
        assert conf[("Lock-R", "none")] == 1

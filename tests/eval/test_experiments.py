"""Smoke/shape tests for the experiment runners (small repetitions)."""

import numpy as np
import pytest

from repro.core import InvarNetX, OperationContext
from repro.datagen.campaigns import CampaignConfig, FaultCampaign
from repro.eval.experiments import (
    BATCH_FAULT_NAMES,
    INTERACTIVE_FAULT_NAMES,
    run_diagnosis_experiment,
    run_fig2_cpi_disturbance,
    run_fig4_cpi_kpi,
    run_fig5_residuals,
    run_fig6_threshold_rules,
)
from repro.store import DirectoryStore


class TestFaultLists:
    def test_fifteen_interactive_faults(self):
        assert len(INTERACTIVE_FAULT_NAMES) == 15

    def test_batch_drops_overload_only(self):
        assert set(INTERACTIVE_FAULT_NAMES) - set(BATCH_FAULT_NAMES) == {
            "Overload"
        }


class TestFig2:
    def test_disturbance_is_benign_and_hog_is_not(self, cluster):
        r = run_fig2_cpi_disturbance(cluster)
        lo, hi = r.disturb_window
        base = float(np.mean(r.baseline_cpi[lo:hi]))
        disturbed = float(np.mean(r.disturbed_cpi[lo:hi]))
        hogged = float(
            np.mean(r.hogged_cpi[lo : min(hi, r.hogged_cpi.size)])
        )
        # paper: disturbance changes neither time nor CPI
        assert disturbed == pytest.approx(base, rel=0.03)
        assert abs(r.disturbed_ticks - r.baseline_ticks) <= 2
        # ...but genuine contention moves both
        assert hogged > base * 1.15
        assert r.hogged_ticks > r.baseline_ticks


class TestFig4:
    def test_cpi_tracks_execution_time(self, cluster):
        series = run_fig4_cpi_kpi(cluster, reps=10)
        for s in series.values():
            assert s.correlation > 0.9  # paper: 0.97 / 0.95
            assert s.exec_norm.min() == pytest.approx(1.0)
            assert s.kpi_norm.min() == pytest.approx(1.0)

    def test_fit_is_monotone_over_observed_range(self, cluster):
        series = run_fig4_cpi_kpi(cluster, reps=10)
        for s in series.values():
            grid = np.linspace(s.exec_norm.min(), s.exec_norm.max(), 50)
            fitted = np.polyval(s.poly_coeffs, grid)
            assert np.all(np.diff(fitted) > -0.02)


class TestFig5:
    def test_fault_residuals_exceed_threshold(self, cluster):
        series = run_fig5_residuals(cluster)
        assert set(series) == {"wordcount", "tpcds"}
        for s in series.values():
            lo, hi = s.fault_window
            resid = np.abs(s.residuals)
            inside = resid[lo:hi]
            inside = inside[~np.isnan(inside)]
            outside = resid[:lo]
            outside = outside[~np.isnan(outside)]
            assert np.mean(inside) > np.mean(outside) * 2
            assert np.max(inside) > s.threshold_upper


class TestFig6:
    def test_pct95_is_noisiest_rule(self, cluster):
        scores = run_fig6_threshold_rules(cluster)
        for rows in scores.values():
            by_rule = {r.rule: r for r in rows}
            assert (
                by_rule["95-percentile"].false_positive_rate
                >= by_rule["beta-max"].false_positive_rate
            )

    def test_all_rules_detect_the_problem(self, cluster):
        scores = run_fig6_threshold_rules(cluster)
        for rows in scores.values():
            for r in rows:
                assert r.problem_detected


class TestExperimentLedger:
    def test_experiment_appends_a_summary_entry(self, cluster, tmp_path):
        """A system over a DirectoryStore leaves one ``experiment`` ledger
        entry per campaign, carrying the scored averages."""
        config = CampaignConfig(
            workload="grep", n_normal=3, train_reps=1, test_reps=2,
            base_seed=77,
        )
        campaign = FaultCampaign(cluster, config, ("CPU-hog",))
        system = InvarNetX(store=DirectoryStore(tmp_path))
        ctx = OperationContext("grep", "slave-1", cluster.ip_of("slave-1"))
        result = run_diagnosis_experiment(system, campaign, ctx, "InvarNet-X")
        entry = system.ledger.last(kind="experiment")
        assert entry is not None
        assert entry["system"] == "InvarNet-X"
        assert entry["context"] == ["grep", "slave-1"]
        assert entry["runs"] == len(result.outcomes)
        assert entry["detected"] == sum(
            1 for o in result.outcomes if o.detected
        )
        average = result.scores["average"]
        assert entry["precision"] == pytest.approx(average.precision)
        assert entry["recall"] == pytest.approx(average.recall)
        assert entry["fingerprint"] == system.fingerprint

    def test_memory_store_system_records_nothing(self, cluster):
        config = CampaignConfig(
            workload="grep", n_normal=2, train_reps=1, test_reps=1,
            base_seed=78,
        )
        campaign = FaultCampaign(cluster, config, ("CPU-hog",))
        system = InvarNetX()
        ctx = OperationContext("grep", "slave-1", cluster.ip_of("slave-1"))
        run_diagnosis_experiment(system, campaign, ctx, "InvarNet-X")
        assert system.ledger is None

"""Unit tests for campaign generation (determinism, seed hygiene)."""

import numpy as np
import pytest

from repro.datagen.campaigns import CampaignConfig, FaultCampaign


@pytest.fixture()
def campaign(cluster):
    config = CampaignConfig(
        workload="grep", n_normal=2, train_reps=1, test_reps=2, base_seed=5
    )
    return FaultCampaign(cluster, config, ("CPU-hog", "Mem-hog"))


class TestCampaign:
    def test_normal_runs_deterministic(self, campaign):
        a = campaign.normal_runs()
        b = campaign.normal_runs()
        assert len(a) == 2
        for x, y in zip(a, b):
            assert np.allclose(
                x.node("slave-1").cpi, y.node("slave-1").cpi
            )

    def test_train_and_test_seeds_disjoint(self, campaign):
        train = list(campaign.train_runs("CPU-hog"))
        test = list(campaign.test_runs("CPU-hog"))
        assert {t.seed for t in train}.isdisjoint({t.seed for t in test})

    def test_fault_seeds_disjoint_across_faults(self, campaign):
        a = {t.seed for t in campaign.test_runs("CPU-hog")}
        b = {t.seed for t in campaign.test_runs("Mem-hog")}
        assert a.isdisjoint(b)

    def test_runs_carry_fault_metadata(self, campaign):
        run = next(campaign.train_runs("Mem-hog"))
        assert run.fault == "Mem-hog"
        assert run.fault_node == "slave-1"

    def test_counts_respected(self, campaign):
        assert len(list(campaign.train_runs("CPU-hog"))) == 1
        assert len(list(campaign.test_runs("CPU-hog"))) == 2

    def test_unknown_node_rejected(self, cluster):
        config = CampaignConfig(workload="grep", node="slave-77")
        with pytest.raises(ValueError):
            FaultCampaign(cluster, config, ("CPU-hog",))

    def test_no_faults_rejected(self, cluster):
        config = CampaignConfig(workload="grep")
        with pytest.raises(ValueError):
            FaultCampaign(cluster, config, ())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(workload="grep", n_normal=0)
        with pytest.raises(ValueError):
            CampaignConfig(workload="grep", test_reps=0)

    def test_with_workload(self):
        config = CampaignConfig(workload="grep", test_reps=7)
        other = config.with_workload("sort")
        assert other.workload == "sort"
        assert other.test_reps == 7

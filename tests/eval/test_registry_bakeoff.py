"""Bake-offs scored from the index alone: summaries, winners, bytes."""

import pytest

from repro.eval.registry.bakeoff import compare_cohorts, summarize_cohort
from repro.eval.registry.index import RunIndex
from repro.eval.registry.spec import CampaignSpec, SystemSpec


def make_manifest(system, precision, recall, base_seed=0, name="bake"):
    """A minimal committed manifest carrying chosen accuracy numbers."""
    spec = CampaignSpec(
        name=name,
        workload="wordcount",
        faults=("CPU-hog", "Mem-hog"),
        systems=(SystemSpec(system, kind="invarnet-x"),),
        base_seed=base_seed,
    )
    table = [
        {
            "run_id": spec.run_id,
            "spec_name": name,
            "spec_fingerprint": spec.fingerprint,
            "system": system,
            "repetition": 0,
            "workload": "wordcount",
            "node": "slave-1",
            "faults": 2,
            "outcomes": 4,
            "detected": 3,
            "tp": 2,
            "fp": 1,
            "fn": 1,
            "precision": precision,
            "recall": recall,
            "f1": 0.5,
            "train_seconds": 0.1,
            "signature_seconds": 0.1,
            "diagnose_seconds": 0.1,
        }
    ]
    fault_scores = [
        {
            "run_id": spec.run_id,
            "system": system,
            "repetition": 0,
            "fault": fault,
            "precision": precision,
            "recall": recall,
            "tp": 1,
            "fp": 1,
            "fn": 1,
        }
        for fault in ("CPU-hog", "Mem-hog")
    ]
    return {
        "format": 1,
        "run_id": spec.run_id,
        "spec": spec.to_json(),
        "spec_fingerprint": spec.fingerprint,
        "created": 1000.0,
        "status": "ok",
        "table": table,
        "fault_scores": fault_scores,
    }


@pytest.fixture()
def index(tmp_path) -> RunIndex:
    """Two cohorts, the stronger one measured across two runs."""
    idx = RunIndex(tmp_path / "index.sqlite")
    idx.upsert(make_manifest("Strong", 0.9, 0.8, base_seed=0))
    idx.upsert(make_manifest("Strong", 0.7, 0.6, base_seed=1))
    idx.upsert(make_manifest("Weak", 0.5, 0.4, base_seed=0))
    return idx


class TestSummarize:
    def test_means_are_unweighted_over_measurements(self, index):
        summary = summarize_cohort(index, "Strong")
        assert summary.runs == 2
        assert summary.measurements == 2
        assert summary.outcomes == 8
        assert summary.detected == 6
        assert summary.precision == pytest.approx(0.8)
        assert summary.recall == pytest.approx(0.7)
        assert summary.f1 == pytest.approx(
            2 * 0.8 * 0.7 / (0.8 + 0.7), abs=1e-6
        )

    def test_per_fault_means(self, index):
        summary = summarize_cohort(index, "Strong")
        assert [f for f, _, _ in summary.fault_scores] == [
            "CPU-hog", "Mem-hog",
        ]
        for _, precision, recall in summary.fault_scores:
            assert precision == pytest.approx(0.8)
            assert recall == pytest.approx(0.7)

    def test_missing_system_names_the_alternatives(self, index):
        with pytest.raises(ValueError, match="'Strong', 'Weak'"):
            summarize_cohort(index, "Nobody")

    def test_spec_filter(self, index):
        index.upsert(
            make_manifest("Strong", 0.1, 0.1, name="other-camp")
        )
        scoped = summarize_cohort(index, "Strong", spec_name="bake")
        assert scoped.measurements == 2
        assert scoped.precision == pytest.approx(0.8)
        everything = summarize_cohort(index, "Strong")
        assert everything.measurements == 3

    def test_to_json_is_plain_data(self, index):
        doc = summarize_cohort(index, "Weak").to_json()
        assert doc["system"] == "Weak"
        assert doc["fault_scores"][0] == {
            "fault": "CPU-hog", "precision": 0.5, "recall": 0.4,
        }


class TestCompare:
    def test_winner_by_precision(self, index):
        report = compare_cohorts(index, "Strong", "Weak")
        assert report.winner == "Strong"
        assert report.to_json()["delta"]["precision"] == pytest.approx(0.3)

    def test_order_does_not_change_the_winner(self, index):
        assert compare_cohorts(index, "Weak", "Strong").winner == "Strong"

    def test_recall_breaks_precision_ties(self, tmp_path):
        idx = RunIndex(tmp_path / "tie.sqlite")
        idx.upsert(make_manifest("A", 0.8, 0.9, base_seed=0))
        idx.upsert(make_manifest("B", 0.8, 0.5, base_seed=1))
        assert compare_cohorts(idx, "A", "B").winner == "A"

    def test_identical_cohort_data_is_a_tie(self, tmp_path):
        idx = RunIndex(tmp_path / "tie.sqlite")
        idx.upsert(make_manifest("A", 0.8, 0.9, base_seed=0))
        idx.upsert(make_manifest("B", 0.8, 0.9, base_seed=1))
        assert compare_cohorts(idx, "A", "B").winner == "tie"

    def test_cannot_compare_cohort_to_itself(self, index):
        with pytest.raises(ValueError, match="itself"):
            compare_cohorts(index, "Strong", "Strong")

    def test_render_text_is_byte_deterministic(self, index):
        first = compare_cohorts(index, "Strong", "Weak").render_text()
        second = compare_cohorts(index, "Strong", "Weak").render_text()
        assert first == second
        assert first.endswith("\n")
        assert "winner: Strong (precision +0.3000, recall +0.3000)" in first
        assert "per-fault mean precision/recall:" in first

    def test_render_lists_both_cohort_rows(self, index):
        text = compare_cohorts(index, "Strong", "Weak").render_text()
        lines = text.split("\n")
        assert any(line.startswith("Strong ") for line in lines)
        assert any(line.startswith("Weak ") for line in lines)

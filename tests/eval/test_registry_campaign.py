"""End-to-end acceptance: the Figs. 9/10 bake-off from indexed runs.

One real ``bakeoff-smoke`` campaign (InvarNet-X vs the ARX baseline on
confusable faults, a few seconds of simulated cluster time) is executed
once per test session; every test here reads the committed registry.
"""

import shutil

import pytest

from repro.cli import main
from repro.eval.registry import (
    INDEX_NAME,
    RunRegistry,
    builtin_spec,
    compare_cohorts,
)


@pytest.fixture(scope="module")
def registry(tmp_path_factory, cluster) -> RunRegistry:
    root = tmp_path_factory.mktemp("campaigns")
    registry = RunRegistry(root, clock=lambda: 1700000000.0)
    run = registry.execute(builtin_spec("bakeoff-smoke"), cluster)
    assert not run.skipped
    return registry


class TestAcceptanceOrdering:
    def test_invarnet_x_beats_arx_on_confusable_faults(self, registry):
        """The paper's Figs. 9/10 ordering, from the index alone."""
        report = compare_cohorts(
            registry.index, "InvarNet-X", "ARX", spec_name="bakeoff-smoke"
        )
        assert report.winner == "InvarNet-X"
        assert report.a.precision > report.b.precision
        assert report.a.recall > report.b.recall

    def test_rerun_is_skipped(self, registry, cluster):
        again = registry.execute(builtin_spec("bakeoff-smoke"), cluster)
        assert again.skipped

    def test_index_rebuild_from_runs_alone_is_bit_identical(
        self, registry
    ):
        live = registry.index.dump()
        registry.index.path.unlink()
        assert registry.rebuild_index() == 1
        assert registry.index.dump() == live


class TestCliDeterminism:
    def _capture(self, capsys, args):
        assert main(args) == 0
        return capsys.readouterr().out

    def test_compare_is_byte_identical_across_invocations(
        self, registry, capsys
    ):
        args = [
            "runs", "compare", "InvarNet-X", "ARX",
            "--dir", str(registry.root), "--spec", "bakeoff-smoke",
        ]
        first = self._capture(capsys, args)
        second = self._capture(capsys, args)
        assert first == second
        assert "winner: InvarNet-X" in first

    def test_compare_json_is_byte_identical(self, registry, capsys):
        args = [
            "runs", "compare", "InvarNet-X", "ARX", "--json",
            "--dir", str(registry.root),
        ]
        assert self._capture(capsys, args) == self._capture(capsys, args)

    def test_show_json_is_byte_identical(self, registry, capsys):
        (manifest,) = registry.manifests()
        args = [
            "runs", "show", manifest["run_id"],
            "--dir", str(registry.root), "--json",
        ]
        first = self._capture(capsys, args)
        assert first == self._capture(capsys, args)
        assert manifest["run_id"] in first

    def test_list_shows_the_committed_run(self, registry, capsys):
        out = self._capture(
            capsys, ["runs", "list", "--dir", str(registry.root)]
        )
        (manifest,) = registry.manifests()
        assert manifest["run_id"] in out
        assert "bakeoff-smoke" in out

    def test_list_rebuild_recovers_a_deleted_index(
        self, registry, capsys, tmp_path
    ):
        clone = tmp_path / "clone"
        shutil.copytree(registry.root, clone)
        (clone / INDEX_NAME).unlink()
        out = self._capture(
            capsys, ["runs", "list", "--dir", str(clone), "--rebuild"]
        )
        (manifest,) = registry.manifests()
        assert manifest["run_id"] in out

"""CampaignSpec: validation, fingerprints, seeds and JSON round-trips."""

import dataclasses

import pytest

from repro.eval.registry.spec import (
    BUILTIN_SPECS,
    REPETITION_STRIDE,
    CampaignSpec,
    SystemSpec,
    builtin_spec,
)


def make_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="unit",
        workload="wordcount",
        faults=("CPU-hog", "Mem-hog"),
        systems=(SystemSpec("A"), SystemSpec("B", kind="arx")),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestValidation:
    def test_rejects_unsafe_name(self):
        with pytest.raises(ValueError, match="filesystem-safe"):
            make_spec(name="bad/name")

    def test_rejects_empty_faults(self):
        with pytest.raises(ValueError, match="at least one fault"):
            make_spec(faults=())

    def test_rejects_empty_systems(self):
        with pytest.raises(ValueError, match="at least one system"):
            make_spec(systems=())

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_spec(systems=(SystemSpec("A"), SystemSpec("A", kind="arx")))

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError, match="repetitions"):
            make_spec(repetitions=0)

    def test_delegates_bounds_to_campaign_config(self):
        with pytest.raises(ValueError, match="n_normal"):
            make_spec(n_normal=0)

    def test_system_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown system kind"):
            SystemSpec("X", kind="oracle")

    def test_system_rejects_empty_label(self):
        with pytest.raises(ValueError, match="non-empty"):
            SystemSpec("")


class TestFingerprint:
    def test_stable_across_instances(self):
        assert make_spec().fingerprint == make_spec().fingerprint

    def test_changes_with_any_field(self):
        assert make_spec().fingerprint != make_spec(base_seed=1).fingerprint
        assert (
            make_spec().fingerprint
            != make_spec(faults=("CPU-hog",)).fingerprint
        )

    def test_run_id_embeds_name_and_fingerprint(self):
        spec = make_spec()
        assert spec.run_id == f"unit-{spec.fingerprint}"
        assert len(spec.fingerprint) == 12


class TestSeedSchedule:
    def test_repetitions_stride_the_seed_root(self):
        spec = make_spec(base_seed=5, repetitions=3)
        seeds = [spec.campaign_config(r).base_seed for r in range(3)]
        assert seeds == [5, 5 + REPETITION_STRIDE, 5 + 2 * REPETITION_STRIDE]

    def test_repetition_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            make_spec(repetitions=2).campaign_config(2)

    def test_config_mirrors_spec_shape(self):
        spec = make_spec(n_normal=5, train_reps=3, test_reps=4)
        config = spec.campaign_config(0)
        assert (config.n_normal, config.train_reps, config.test_reps) == (
            5, 3, 4,
        )
        assert config.workload == spec.workload
        assert config.node == spec.node


class TestJsonRoundTrip:
    def test_round_trip_preserves_fingerprint(self):
        spec = make_spec(
            systems=(
                SystemSpec("A"),
                SystemSpec("NC", kind="no-context",
                           extra_workloads=("sort",)),
            ),
            repetitions=2,
        )
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint == spec.fingerprint

    def test_rejects_unknown_fields(self):
        doc = make_spec().to_json()
        doc["budget"] = 9
        with pytest.raises(ValueError, match="unknown spec fields"):
            CampaignSpec.from_json(doc)

    def test_rejects_missing_fields(self):
        doc = make_spec().to_json()
        del doc["faults"]
        with pytest.raises(ValueError, match="missing"):
            CampaignSpec.from_json(doc)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            CampaignSpec.from_json(["not", "a", "spec"])

    def test_accepts_bare_string_systems(self):
        doc = make_spec().to_json()
        doc["systems"] = ["InvarNet-X"]
        spec = CampaignSpec.from_json(doc)
        assert spec.systems == (SystemSpec("InvarNet-X"),)


class TestBuiltins:
    def test_every_builtin_constructs(self):
        for name in BUILTIN_SPECS:
            spec = builtin_spec(name)
            assert spec.name == name

    def test_unknown_builtin(self):
        with pytest.raises(ValueError, match="unknown builtin"):
            builtin_spec("fig99")

    def test_fig9_10_is_the_three_way_comparison(self):
        spec = builtin_spec("fig9-10")
        kinds = [s.kind for s in spec.systems]
        assert kinds == ["invarnet-x", "arx", "no-context"]
        (ablation,) = [s for s in spec.systems if s.kind == "no-context"]
        assert ablation.extra_workloads == ("sort", "tpcds")

    def test_overrides_change_the_fingerprint(self):
        base = builtin_spec("smoke")
        scaled = builtin_spec("smoke", test_reps=base.test_reps + 1)
        assert scaled.fingerprint != base.fingerprint
        assert dataclasses.replace(
            scaled, test_reps=base.test_reps
        ).fingerprint == base.fingerprint

    def test_bakeoff_smoke_pits_invarnet_against_arx(self):
        spec = builtin_spec("bakeoff-smoke")
        assert [s.label for s in spec.systems] == ["InvarNet-X", "ARX"]

    def test_bakeoff_peerwatch_adds_the_peer_baseline(self):
        spec = builtin_spec("bakeoff-peerwatch")
        assert [s.label for s in spec.systems] == [
            "InvarNet-X", "ARX", "PeerWatch",
        ]
        assert [s.kind for s in spec.systems] == [
            "invarnet-x", "arx", "peerwatch",
        ]
        # same faults and seed schedule as bakeoff-smoke: scores are
        # comparable across the two campaign families
        smoke = builtin_spec("bakeoff-smoke")
        assert spec.faults == smoke.faults
        assert spec.base_seed == smoke.base_seed
        assert spec.fingerprint != smoke.fingerprint

"""Run-directory primitives: recorder, run table, manifest commit."""

import json
from pathlib import Path

import pytest

from repro.eval.confusion import DiagnosisOutcome, score_outcomes
from repro.eval.experiments import DiagnosisExperimentResult
from repro.eval.registry.run import (
    MANIFEST_NAME,
    RUN_TABLE_COLUMNS,
    RunRecorder,
    commit_manifest,
    format_run_table,
    load_manifest,
    measurement_row,
    render_report_md,
)
from repro.eval.registry.spec import CampaignSpec, SystemSpec

STAGES = ("experiment.train", "experiment.signatures", "experiment.diagnose")


def make_spec() -> CampaignSpec:
    return CampaignSpec(
        name="unit",
        workload="wordcount",
        faults=("CPU-hog", "Mem-hog"),
        systems=(SystemSpec("A"),),
        test_reps=2,
    )


def make_result(system: str = "A") -> DiagnosisExperimentResult:
    outcomes = [
        DiagnosisOutcome(truth="CPU-hog", predicted="CPU-hog", detected=True),
        DiagnosisOutcome(truth="CPU-hog", predicted="CPU-hog", detected=True),
        DiagnosisOutcome(truth="Mem-hog", predicted="CPU-hog", detected=True),
        DiagnosisOutcome(truth="Mem-hog", predicted=None, detected=False),
    ]
    return DiagnosisExperimentResult(
        workload="wordcount",
        system=system,
        scores=score_outcomes(outcomes),
        outcomes=outcomes,
        stage_seconds={name: 0.5 for name in STAGES},
    )


class TestRunRecorder:
    def test_one_stream_per_system_and_context(self, tmp_path):
        rec = RunRecorder(tmp_path, "A")
        rec.record(("wordcount", "slave-1"), "train", runs=8)
        rec.record(("wordcount", "slave-1"), "diagnose", detected=True)
        rec.record(("sort", "slave-1"), "train", runs=8)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [
            "A--sort@slave-1.jsonl",
            "A--wordcount@slave-1.jsonl",
        ]

    def test_entries_carry_seq_and_identity(self, tmp_path):
        rec = RunRecorder(tmp_path, "A", repetition=3)
        rec.record(("wordcount", "slave-1"), "train", runs=8)
        rec.record(("wordcount", "slave-1"), "diagnose", detected=False)
        (path,) = list(tmp_path.iterdir())
        lines = [
            json.loads(line)
            for line in path.read_text().strip().split("\n")
        ]
        assert [e["seq"] for e in lines] == [1, 2]
        assert all(e["system"] == "A" for e in lines)
        assert all(e["repetition"] == 3 for e in lines)
        assert lines[0]["kind"] == "train" and lines[0]["runs"] == 8

    def test_filenames_are_quoted(self, tmp_path):
        rec = RunRecorder(tmp_path, "Invar/Net X")
        rec.record(("word/count", "slave 1"), "train", runs=1)
        (path,) = list(tmp_path.iterdir())
        assert "%2F" in path.name and "%20" in path.name

    def test_rejects_empty_kind(self, tmp_path):
        with pytest.raises(ValueError, match="non-empty"):
            RunRecorder(tmp_path, "A").record(("w", "n"), "")


class TestMeasurementRow:
    def test_covers_every_documented_column(self):
        row = measurement_row(make_spec(), "A", 0, make_result())
        assert set(row) == {name for name, _ in RUN_TABLE_COLUMNS}

    def test_values(self):
        spec = make_spec()
        row = measurement_row(spec, "A", 1, make_result())
        assert row["run_id"] == spec.run_id
        assert row["spec_fingerprint"] == spec.fingerprint
        assert row["repetition"] == 1
        assert row["faults"] == 2
        assert row["outcomes"] == 4
        assert row["detected"] == 3
        # CPU-hog: p=2/3, r=1; Mem-hog: p=0, r=0 -> averages 1/3 and 0.5
        assert row["precision"] == pytest.approx(1 / 3, abs=1e-6)
        assert row["recall"] == pytest.approx(0.5, abs=1e-6)
        assert row["train_seconds"] == 0.5

    def test_run_table_header_matches_columns(self):
        spec = make_spec()
        rows = [measurement_row(spec, "A", 0, make_result())]
        text = format_run_table(rows)
        header = text.split("\n", maxsplit=1)[0]
        assert header.split(",") == [name for name, _ in RUN_TABLE_COLUMNS]

    def test_run_table_bytes_are_deterministic(self):
        spec = make_spec()
        rows = [measurement_row(spec, "A", 0, make_result())]
        assert format_run_table(rows) == format_run_table(rows)


class TestColumnDocs:
    def test_reference_doc_matches_writer(self):
        """RUN_TABLE_COLUMNS.md documents exactly the written columns."""
        doc = Path(__file__).resolve().parents[2] / "RUN_TABLE_COLUMNS.md"
        text = doc.read_text(encoding="utf-8")
        documented = set()
        for line in text.split("\n"):
            if line.startswith("| `"):
                documented.add(line.split("`")[1])
        assert documented == {name for name, _ in RUN_TABLE_COLUMNS}


class TestManifest:
    def _manifest(self, spec):
        rows = [measurement_row(spec, "A", 0, make_result())]
        return {
            "format": 1,
            "run_id": spec.run_id,
            "spec": spec.to_json(),
            "spec_fingerprint": spec.fingerprint,
            "created": 1000.0,
            "status": "ok",
            "table": rows,
            "fault_scores": [],
        }

    def test_commit_and_load(self, tmp_path):
        manifest = self._manifest(make_spec())
        commit_manifest(tmp_path, manifest)
        assert load_manifest(tmp_path) == manifest

    def test_absent_manifest_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{oops")
        with pytest.raises(ValueError, match="corrupt"):
            load_manifest(tmp_path)

    def test_non_manifest_object_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(tmp_path)

    def test_report_md_has_a_row_per_measurement(self, tmp_path):
        manifest = self._manifest(make_spec())
        text = render_report_md(manifest)
        assert manifest["run_id"] in text
        assert text.count("| A | 0 |") == 1

"""Smoke tests for the sweep/extension experiment runners (tiny scales)."""

import math

from repro.core.pipeline import InvarNetXConfig
from repro.eval.experiments import (
    run_config_sweep,
    run_intensity_sweep,
    run_multi_fault_extension,
    run_peer_blindspot_experiment,
    run_training_size_sweep,
)


class TestIntensitySweep:
    def test_point_per_intensity(self, cluster):
        points = run_intensity_sweep(
            cluster, intensities=(1.0,), reps=2
        )
        assert len(points) == 1
        p = points[0]
        assert p.intensity == 1.0
        assert p.detection_rate == 1.0
        assert not math.isnan(p.mean_latency_ticks)
        assert p.diagnosis_accuracy == 1.0


class TestTrainingSizeSweep:
    def test_monotone_invariant_counts(self, cluster):
        points = run_training_size_sweep(
            cluster, sizes=(2, 4), faults=("CPU-hog", "Mem-hog"), reps=1
        )
        assert [p.n_runs for p in points] == [2, 4]
        assert points[1].n_invariants <= points[0].n_invariants
        for p in points:
            assert 0.0 <= p.false_violation_rate <= 1.0
            assert 0.0 <= p.diagnosis_accuracy <= 1.0


class TestConfigSweep:
    def test_same_campaign_for_every_config(self, cluster):
        results = run_config_sweep(
            {
                "a": InvarNetXConfig(),
                "b": InvarNetXConfig(epsilon=0.3),
            },
            cluster,
            faults=("CPU-hog", "Suspend"),
            test_reps=1,
        )
        assert set(results) == {"a", "b"}
        for result in results.values():
            truths = sorted({o.truth for o in result.outcomes})
            assert truths == ["CPU-hog", "Suspend"]


class TestMultiFaultExtension:
    def test_rates_bounded(self, cluster):
        result = run_multi_fault_extension(
            cluster, pairs=(("CPU-hog", "Mem-hog"),), reps=2
        )
        pair = ("CPU-hog", "Mem-hog")
        assert 0.0 <= result.pair_hits[pair] <= 1.0
        assert 0.0 <= result.any_hits[pair] <= 1.0


class TestPeerBlindspotShape:
    def test_result_fields(self, cluster):
        result = run_peer_blindspot_experiment(cluster)
        assert isinstance(result.local_peer_flagged, list)
        assert isinstance(result.global_invarnet_nodes, list)
        assert set(result.peer_scores_global) == {
            "slave-1", "slave-2", "slave-3", "slave-4",
        }

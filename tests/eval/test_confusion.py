"""Unit tests for precision/recall scoring."""

import pytest

from repro.eval.confusion import DiagnosisOutcome, score_outcomes


def _o(truth, predicted, detected=True):
    return DiagnosisOutcome(truth=truth, predicted=predicted, detected=detected)


class TestScoreOutcomes:
    def test_perfect_diagnosis(self):
        outcomes = [_o("A", "A")] * 3 + [_o("B", "B")] * 3
        scores = score_outcomes(outcomes)
        assert scores["A"].precision == 1.0
        assert scores["A"].recall == 1.0
        assert scores["average"].precision == 1.0

    def test_misdiagnosis_is_fn_for_truth_and_fp_for_prediction(self):
        outcomes = [_o("A", "B"), _o("A", "A"), _o("B", "B")]
        scores = score_outcomes(outcomes)
        assert scores["A"].fn == 1
        assert scores["A"].tp == 1
        assert scores["B"].fp == 1
        assert scores["B"].precision == pytest.approx(0.5)
        assert scores["A"].recall == pytest.approx(0.5)

    def test_undetected_counts_as_fn_only(self):
        outcomes = [_o("A", None, detected=False), _o("A", "A")]
        scores = score_outcomes(outcomes)
        assert scores["A"].fn == 1
        assert scores["A"].fp == 0
        assert scores["A"].recall == pytest.approx(0.5)
        assert scores["A"].precision == 1.0

    def test_prediction_outside_fault_set_ignored_for_fp(self):
        outcomes = [_o("A", "weird-cause")]
        scores = score_outcomes(outcomes)
        assert scores["A"].fn == 1
        assert "weird-cause" not in scores

    def test_average_is_unweighted_mean(self):
        outcomes = [_o("A", "A")] * 4 + [_o("B", "A")]
        scores = score_outcomes(outcomes)
        expected_p = (scores["A"].precision + scores["B"].precision) / 2
        assert scores["average"].precision == pytest.approx(expected_p)

    def test_f1(self):
        outcomes = [_o("A", "A"), _o("A", None, detected=False)]
        pr = score_outcomes(outcomes)["A"]
        assert pr.f1 == pytest.approx(2 * 1.0 * 0.5 / 1.5)

    def test_f1_zero_when_nothing_found(self):
        pr = score_outcomes([_o("A", None, detected=False)])["A"]
        assert pr.f1 == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            score_outcomes([])

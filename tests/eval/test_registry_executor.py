"""RunRegistry mechanics: commit discipline, idempotency, crash safety.

These tests stub :func:`repro.eval.registry.executor.execute_spec` with a
deterministic fake (fixed scores, fixed stage timings) so the full
registry path — run directory, manifest commit, index upsert, ledger —
runs in milliseconds.  End-to-end execution against the real simulator
is covered by ``test_registry_campaign.py``.
"""

import json

import pytest

from repro.eval.confusion import DiagnosisOutcome, score_outcomes
from repro.eval.experiments import DiagnosisExperimentResult
from repro.eval.registry import executor as executor_module
from repro.eval.registry.executor import RunRegistry
from repro.eval.registry.run import (
    EVENTS_DIR,
    MANIFEST_NAME,
    REPORT_JSON,
    REPORT_MD,
    RUN_TABLE_NAME,
    SPEC_NAME,
)
from repro.eval.registry.spec import CampaignSpec, SystemSpec

STAGES = ("experiment.train", "experiment.signatures", "experiment.diagnose")


def make_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="fake",
        workload="wordcount",
        faults=("CPU-hog", "Mem-hog"),
        systems=(SystemSpec("Good"), SystemSpec("Bad", kind="arx")),
        test_reps=2,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def fake_result(label: str) -> DiagnosisExperimentResult:
    """'Good' names every cause; 'Bad' misses Mem-hog."""
    outcomes = [
        DiagnosisOutcome(truth="CPU-hog", predicted="CPU-hog", detected=True),
        DiagnosisOutcome(
            truth="Mem-hog",
            predicted="Mem-hog" if label == "Good" else "CPU-hog",
            detected=True,
        ),
    ]
    return DiagnosisExperimentResult(
        workload="wordcount",
        system=label,
        scores=score_outcomes(outcomes),
        outcomes=outcomes,
        stage_seconds={name: 0.25 for name in STAGES},
    )


def fake_execute_spec(spec, cluster=None, store=None, recorder_factory=None):
    out = {}
    for system_spec in spec.systems:
        per_repetition = []
        for repetition in range(spec.repetitions):
            if recorder_factory is not None:
                recorder = recorder_factory(system_spec.label, repetition)
                recorder.record(
                    (spec.workload, spec.node), "train", runs=spec.n_normal
                )
            per_repetition.append(fake_result(system_spec.label))
        out[system_spec.label] = per_repetition
    return out


@pytest.fixture()
def registry(tmp_path, monkeypatch) -> RunRegistry:
    monkeypatch.setattr(executor_module, "execute_spec", fake_execute_spec)
    return RunRegistry(tmp_path / "campaigns", clock=lambda: 1234.5)


class TestCommit:
    def test_full_run_directory_layout(self, registry):
        run = registry.execute(make_spec())
        assert not run.skipped
        for name in (
            SPEC_NAME, REPORT_JSON, REPORT_MD, RUN_TABLE_NAME, MANIFEST_NAME,
        ):
            assert (run.run_dir / name).exists(), name
        events = list((run.run_dir / EVENTS_DIR).iterdir())
        assert len(events) == 2  # one stream per system
        assert run.manifest["created"] == 1234.5
        assert run.manifest["status"] == "ok"

    def test_table_has_one_row_per_system_and_repetition(self, registry):
        run = registry.execute(make_spec(repetitions=2))
        rows = run.manifest["table"]
        assert [(r["system"], r["repetition"]) for r in rows] == [
            ("Good", 0), ("Good", 1), ("Bad", 0), ("Bad", 1),
        ]
        assert all(r["train_seconds"] == 0.25 for r in rows)

    def test_index_is_upserted(self, registry):
        run = registry.execute(make_spec())
        assert [r["run_id"] for r in registry.index.runs()] == [run.run_id]
        assert len(registry.index.measurements()) == 2

    def test_ledger_records_the_campaign(self, registry):
        registry.execute(make_spec())
        (entry,) = registry.ledger().entries(kind="campaign-run")
        assert entry["spec"] == "fake"
        assert entry["systems"] == ["Good", "Bad"]
        assert entry["ts"] == 1234.5

    def test_manifest_bytes_are_reproducible(self, tmp_path, monkeypatch):
        """Same spec + injected clock -> byte-identical manifests."""
        monkeypatch.setattr(
            executor_module, "execute_spec", fake_execute_spec
        )
        blobs = []
        for name in ("a", "b"):
            registry = RunRegistry(tmp_path / name, clock=lambda: 99.0)
            run = registry.execute(make_spec())
            blobs.append((run.run_dir / MANIFEST_NAME).read_bytes())
        assert blobs[0] == blobs[1]


class TestIdempotency:
    def test_second_execute_is_skipped(self, registry):
        first = registry.execute(make_spec())
        second = registry.execute(make_spec())
        assert second.skipped and not first.skipped
        assert second.manifest == first.manifest
        assert second.results == {}

    def test_changed_spec_is_a_new_run(self, registry):
        registry.execute(make_spec())
        registry.execute(make_spec(base_seed=1))
        assert len(registry.index.runs()) == 2

    def test_force_reruns(self, registry):
        registry.execute(make_spec())
        forced = registry.execute(make_spec(), force=True)
        assert not forced.skipped
        assert len(registry.index.runs()) == 1
        entries = registry.ledger().entries(kind="campaign-run")
        assert [e["forced"] for e in entries] == [False, True]


class TestCrashSafety:
    def test_killed_campaign_leaves_no_manifest(self, registry, monkeypatch):
        def dying_execute_spec(spec, cluster=None, **kwargs):
            recorder = kwargs["recorder_factory"]("Good", 0)
            recorder.record((spec.workload, spec.node), "train", runs=1)
            raise KeyboardInterrupt("killed mid-campaign")

        monkeypatch.setattr(
            executor_module, "execute_spec", dying_execute_spec
        )
        spec = make_spec()
        with pytest.raises(KeyboardInterrupt):
            registry.execute(spec)
        run_dir = registry.run_dir(spec.run_id)
        assert run_dir.exists()  # debris: spec + events...
        assert not (run_dir / MANIFEST_NAME).exists()  # ...but no commit
        assert registry.manifests() == []
        assert registry.index.runs() == []

    def test_resume_clears_debris_and_commits(self, registry, monkeypatch):
        calls = {"n": 0}

        def flaky_execute_spec(spec, cluster=None, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt("killed mid-campaign")
            return fake_execute_spec(spec, cluster, **kwargs)

        monkeypatch.setattr(
            executor_module, "execute_spec", flaky_execute_spec
        )
        spec = make_spec()
        with pytest.raises(KeyboardInterrupt):
            registry.execute(spec)
        run = registry.execute(spec)  # the resume
        assert not run.skipped
        assert (run.run_dir / MANIFEST_NAME).exists()
        # the committed directory holds no stale first-attempt events
        streams = list((run.run_dir / EVENTS_DIR).iterdir())
        assert len(streams) == 2

    def test_index_rebuild_matches_live_index(self, registry):
        registry.execute(make_spec())
        registry.execute(make_spec(base_seed=1))
        live = registry.index.dump()
        registry.index.path.unlink()
        assert registry.rebuild_index() == 2
        assert registry.index.dump() == live


class TestAccessors:
    def test_manifest_and_report(self, registry):
        run = registry.execute(make_spec())
        assert registry.manifest(run.run_id) == run.manifest
        report = registry.report(run.run_id)
        assert report is not None
        assert {m["system"] for m in report["measurements"]} == {
            "Good", "Bad",
        }
        for measurement in report["measurements"]:
            assert set(measurement["stage_seconds"]) == set(STAGES)

    def test_missing_run(self, registry):
        assert registry.manifest("nope-000000000000") is None
        assert registry.report("nope-000000000000") is None

    def test_spec_json_round_trips(self, registry):
        spec = make_spec()
        run = registry.execute(spec)
        doc = json.loads((run.run_dir / SPEC_NAME).read_text())
        assert CampaignSpec.from_json(doc) == spec

"""Shared fixtures.

Expensive artifacts (simulated runs, trained pipelines) are session-scoped:
the simulator is deterministic, so sharing them across tests is safe and
keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import HadoopCluster
from repro.core import InvarNetX, OperationContext
from repro.faults.spec import FaultSpec, build_fault


@pytest.fixture(scope="session")
def cluster() -> HadoopCluster:
    """One default five-server cluster shared by the whole session."""
    return HadoopCluster()


@pytest.fixture(scope="session")
def wordcount_runs(cluster) -> list:
    """Eight fault-free Wordcount runs (training corpus)."""
    return [cluster.run("wordcount", seed=1000 + i) for i in range(8)]


@pytest.fixture(scope="session")
def wordcount_context(cluster) -> OperationContext:
    return OperationContext("wordcount", "slave-1", cluster.ip_of("slave-1"))


@pytest.fixture(scope="session")
def trained_pipeline(cluster, wordcount_runs, wordcount_context) -> InvarNetX:
    """An InvarNetX trained on the Wordcount corpus with a few signatures."""
    pipe = InvarNetX()
    pipe.train_from_runs(wordcount_context, wordcount_runs)
    for fault_name, seed in (
        ("CPU-hog", 2001),
        ("Mem-hog", 2002),
        ("Disk-hog", 2003),
        ("Suspend", 2004),
    ):
        fault = build_fault(fault_name, FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=seed)
        pipe.train_signature_from_run(wordcount_context, fault_name, run)
    return pipe


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)

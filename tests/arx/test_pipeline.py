"""Tests for the ARX baseline pipeline on the simulated cluster."""

import pytest

from repro.arx.pipeline import ARXInvarNet, ARXInvarNetConfig
from repro.core import OperationContext
from repro.faults.spec import FaultSpec, build_fault


@pytest.fixture(scope="module")
def arx_trained(cluster, wordcount_runs, wordcount_context):
    arx = ARXInvarNet()
    arx.train_from_runs(wordcount_context, wordcount_runs)
    for fault_name, seed in (("CPU-hog", 3001), ("Mem-hog", 3002)):
        fault = build_fault(fault_name, FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=seed)
        arx.train_signature_from_run(wordcount_context, fault_name, run)
    return arx


class TestARXPipeline:
    def test_network_nonempty(self, arx_trained, wordcount_context):
        net = arx_trained._models[wordcount_context.key()].network
        assert net is not None
        assert len(net) > 20

    def test_normal_run_clean(self, arx_trained, cluster, wordcount_context):
        run = cluster.run("wordcount", seed=9911)
        result = arx_trained.diagnose_run(wordcount_context, run)
        assert not result.detected

    @pytest.mark.parametrize("fault_name", ["CPU-hog", "Mem-hog"])
    def test_trained_faults_diagnosed(
        self, arx_trained, cluster, wordcount_context, fault_name
    ):
        fault = build_fault(fault_name, FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=9920)
        result = arx_trained.diagnose_run(wordcount_context, run)
        assert result.detected
        assert result.root_cause == fault_name

    def test_untrained_context_rejected(self, arx_trained, cluster):
        other = OperationContext("sort", "slave-1")
        run = cluster.run("sort", seed=1)
        with pytest.raises(RuntimeError):
            arx_trained.diagnose_run(other, run)

    def test_no_context_mode_collapses(self):
        arx = ARXInvarNet(ARXInvarNetConfig(use_operation_context=False))
        a = arx._slot(OperationContext("wordcount", "slave-1"))
        b = arx._slot(OperationContext("sort", "slave-2"))
        assert a is b

"""Unit tests for ARX model estimation and the fitness score."""

import numpy as np
import pytest

from repro.arx.model import (
    DEFAULT_ORDER_GRID,
    ARXModel,
    ARXOrder,
    fit_arx,
    fit_best_arx,
)


def _simulate_arx(rng, n=400, a=0.5, b=0.8, d=1.0, noise=0.05):
    """y(t) = a y(t-1) + b u(t) + d + e."""
    u = rng.uniform(0, 1, n)
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = a * y[t - 1] + b * u[t] + d + rng.normal(0, noise)
    return u, y


class TestFitArx:
    def test_recovers_known_system(self, rng):
        u, y = _simulate_arx(rng)
        model = fit_arx(u, y, ARXOrder(1, 0, 0))
        assert model.a[0] == pytest.approx(0.5, abs=0.05)
        assert model.b[0] == pytest.approx(0.8, abs=0.08)
        assert model.d == pytest.approx(1.0, abs=0.1)

    def test_fitness_high_for_true_order(self, rng):
        # fitness = 1 - ||e||/||y - mean|| ~= 1 - sqrt(1 - R^2): a 0.05
        # noise on a 0.32-std response gives ~0.82, not ~R^2 = 0.97.
        u, y = _simulate_arx(rng)
        assert fit_arx(u, y, ARXOrder(1, 0, 0)).fitness > 0.75

    def test_fitness_low_for_unrelated_input(self, rng):
        u = rng.uniform(0, 1, 300)
        y = rng.uniform(0, 1, 300)
        model = fit_arx(u, y, ARXOrder(0, 0, 0))
        assert model.fitness < 0.3

    def test_static_relation_order_000(self, rng):
        u = rng.uniform(0, 1, 200)
        y = 3.0 * u + 2.0
        model = fit_arx(u, y, ARXOrder(0, 0, 0))
        assert model.fitness > 0.999
        assert model.b[0] == pytest.approx(3.0, abs=1e-6)

    def test_lagged_input_identified(self, rng):
        u = rng.uniform(0, 1, 300)
        y = np.zeros(300)
        y[1:] = 2.0 * u[:-1]  # pure one-tick delay
        model = fit_arx(u, y, ARXOrder(0, 0, 1))
        assert model.fitness > 0.999

    def test_too_short_rejected(self, rng):
        with pytest.raises(ValueError, match="too short"):
            fit_arx(np.ones(4), np.ones(4), ARXOrder(2, 2, 1))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_arx(np.ones(10), np.ones(11), ARXOrder(1, 0, 0))

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            ARXOrder(-1, 0, 0).validate()


class TestPredictScore:
    def test_predict_warmup_nan(self, rng):
        u, y = _simulate_arx(rng, n=100)
        model = fit_arx(u, y, ARXOrder(2, 1, 1))
        preds = model.predict(u, y)
        assert np.all(np.isnan(preds[: model.warmup]))
        assert not np.any(np.isnan(preds[model.warmup :]))

    def test_score_on_fresh_data_from_same_system(self, rng):
        u1, y1 = _simulate_arx(rng)
        model = fit_arx(u1, y1, ARXOrder(1, 0, 0))
        u2, y2 = _simulate_arx(rng)
        assert model.score(u2, y2) > 0.7

    def test_score_collapses_when_relation_breaks(self, rng):
        u, y = _simulate_arx(rng)
        model = fit_arx(u, y, ARXOrder(1, 0, 0))
        broken = y + rng.normal(0, 3.0, y.size)
        assert model.score(u, broken) < model.fitness - 0.3

    def test_perfectly_tracked_constant_scores_one(self):
        model = ARXModel(
            order=ARXOrder(0, 0, 0),
            a=np.empty(0),
            b=np.array([0.0]),
            d=5.0,
            fitness=1.0,
        )
        u = np.zeros(20)
        y = np.full(20, 5.0)
        assert model.score(u, y) == 1.0


class TestGridSearch:
    def test_grid_covers_low_orders(self):
        assert ARXOrder(0, 0, 0) in DEFAULT_ORDER_GRID
        assert ARXOrder(2, 2, 1) in DEFAULT_ORDER_GRID

    def test_best_fit_at_least_as_good_as_any_member(self, rng):
        u, y = _simulate_arx(rng, n=200)
        best = fit_best_arx(u, y)
        direct = fit_arx(u, y, ARXOrder(1, 0, 0))
        assert best.fitness >= direct.fitness - 1e-12

    def test_model_coefficient_length_validation(self):
        with pytest.raises(ValueError):
            ARXModel(
                order=ARXOrder(1, 0, 0),
                a=np.empty(0),
                b=np.array([1.0]),
                d=0.0,
                fitness=0.5,
            )

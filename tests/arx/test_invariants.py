"""Unit tests for the ARX invariant network."""

import numpy as np
import pytest

from repro.arx.invariants import ARXInvariantNetwork, build_arx_network
from repro.telemetry.metrics import MetricCatalog

CAT3 = MetricCatalog(names=("a", "b", "c"))


def _coupled_run(rng, n=80, noise=0.02):
    """Columns a and b linearly coupled; c independent."""
    base = rng.uniform(1, 2, n)
    return np.column_stack(
        [
            base * (1 + rng.normal(0, noise, n)),
            2.0 * base * (1 + rng.normal(0, noise, n)),
            rng.uniform(0, 1, n),
        ]
    )


class TestConstruction:
    def test_coupled_pair_becomes_invariant(self, rng):
        runs = [_coupled_run(rng) for _ in range(3)]
        net = build_arx_network(runs, catalog=CAT3)
        pairs = {
            frozenset((e.input_idx, e.output_idx)) for e in net.invariants
        }
        assert frozenset((0, 1)) in pairs

    def test_independent_pair_excluded(self, rng):
        runs = [_coupled_run(rng) for _ in range(3)]
        net = build_arx_network(runs, catalog=CAT3)
        pairs = {
            frozenset((e.input_idx, e.output_idx)) for e in net.invariants
        }
        assert frozenset((0, 2)) not in pairs

    def test_unstable_gain_excluded(self, rng):
        """A relation whose coefficient flips between runs is no
        invariant (Jiang's parameter-consistency requirement)."""
        base1 = rng.uniform(1, 2, 80)
        run1 = np.column_stack(
            [base1, 2.0 * base1, rng.uniform(0, 1, 80)]
        )
        base2 = rng.uniform(1, 2, 80)
        run2 = np.column_stack(
            [base2, 8.0 * base2, rng.uniform(0, 1, 80)]
        )
        net = build_arx_network([run1, run2], catalog=CAT3)
        pairs = {
            frozenset((e.input_idx, e.output_idx)) for e in net.invariants
        }
        assert frozenset((0, 1)) not in pairs

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            build_arx_network([])

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            build_arx_network([rng.uniform(0, 1, (50, 5))], catalog=CAT3)

    def test_min_fitness_recorded(self, rng):
        runs = [_coupled_run(rng) for _ in range(3)]
        net = build_arx_network(runs, catalog=CAT3)
        for edge in net.invariants:
            assert 0.5 <= edge.min_fitness <= 1.0


class TestViolations:
    @pytest.fixture()
    def network(self, rng):
        return build_arx_network(
            [_coupled_run(rng) for _ in range(3)], catalog=CAT3
        )

    def test_healthy_window_few_violations(self, network, rng):
        window = _coupled_run(rng, n=30)
        flags = network.violations(window)
        assert flags.mean() <= 0.5

    def test_broken_coupling_violates(self, network, rng):
        window = _coupled_run(rng, n=30)
        window[:, 1] = rng.uniform(0, 10, 30)  # decouple b from a
        flags = network.violations(window)
        idx = [
            k
            for k, e in enumerate(network.invariants)
            if {e.input_idx, e.output_idx} == {0, 1}
        ]
        assert flags[idx].all()

    def test_tuple_length_matches_network(self, network, rng):
        flags = network.violations(_coupled_run(rng, n=30))
        assert flags.size == len(network)

    def test_wrong_window_width_rejected(self, network, rng):
        with pytest.raises(ValueError):
            network.violations(rng.uniform(0, 1, (30, 7)))

    def test_pair_names(self, network):
        for inp, out in network.pair_names():
            assert inp in CAT3.names
            assert out in CAT3.names

"""Observability-test isolation.

The obs layer is process-global state (one tracer, one registry, one
logging handler slot).  Every test in this directory starts and ends
with observability off, empty, and on the real clock, no matter what it
toggled.
"""

from __future__ import annotations

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def clean_obs():
    saved_clock = obs.tracer().clock
    obs.configure(enabled=False)
    obs.reset()
    yield
    obs.configure(enabled=False)
    obs.tracer().clock = saved_clock
    obs.remove_handler()
    obs.reset()

"""Tests for the package-level surface: configure, reset, lazy explain."""

import pytest

import repro.obs as obs


class TestConfigure:
    def test_disabled_by_default_and_free(self):
        assert not obs.enabled()
        assert obs.span("x") is obs.NOOP_SPAN

    def test_enable_turns_on_spans_and_metrics(self):
        obs.configure(enabled=True)
        assert obs.enabled()
        with obs.span("x") as sp:
            assert sp
        assert obs.tracer().find("x")
        obs.metrics_registry().counter("c_total", "").inc()
        assert obs.metrics_registry().counter("c_total", "").value() == 1.0

    def test_trace_overrides_just_the_tracer(self):
        obs.configure(enabled=True, trace=False)
        assert obs.enabled()
        assert obs.span("x") is obs.NOOP_SPAN

    def test_clock_injection(self):
        ticks = iter(range(100))
        obs.configure(enabled=True, clock=lambda: float(next(ticks)))
        with obs.span("x") as sp:
            pass
        assert sp.duration == 1.0

    def test_reset_keeps_flags_drops_data(self):
        obs.configure(enabled=True)
        with obs.span("x"):
            pass
        obs.metrics_registry().counter("c_total", "").inc()
        obs.reset()
        assert obs.enabled()
        assert obs.tracer().roots() == []
        assert obs.metrics_registry().families() == []

    def test_render_trace(self):
        obs.configure(enabled=True)
        with obs.span("stage"):
            pass
        assert "stage" in obs.render_trace()

    def test_singletons_are_stable_across_configure(self):
        tracer = obs.tracer()
        registry = obs.metrics_registry()
        obs.configure(enabled=True)
        assert obs.tracer() is tracer
        assert obs.metrics_registry() is registry


class TestLazyExplain:
    def test_lazy_names_resolve_to_the_module(self):
        from repro.obs.explain import IncidentExplanation, explain_run

        assert obs.explain_run is explain_run
        assert obs.IncidentExplanation is IncidentExplanation

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            obs.nonexistent_name

"""Tests for the logging bridge: log_event, handlers, warn_once."""

import io
import logging
import warnings

import numpy as np

from repro.obs.bridge import (
    get_logger,
    install_handler,
    log_event,
    reset_warn_once,
    warn_once,
)


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("stats.micfast").name == "repro.stats.micfast"
        assert get_logger("repro.stats.micfast").name == "repro.stats.micfast"
        assert get_logger("repro").name == "repro"


class TestLogEvent:
    @staticmethod
    def _capture(level=logging.INFO):
        stream = io.StringIO()
        install_handler(level, stream=stream)
        return stream

    def test_key_value_format(self):
        stream = self._capture()
        log_event(
            get_logger("t"), logging.INFO, "alarm", context="wc@s1", tick=7
        )
        assert stream.getvalue() == (
            "INFO repro.t: event=alarm context=wc@s1 tick=7\n"
        )

    def test_fields_sorted_and_quoted(self):
        stream = self._capture()
        log_event(get_logger("t"), logging.INFO, "e", b="has space", a="")
        assert stream.getvalue().strip().endswith(
            "event=e a='' b='has space'"
        )

    def test_below_threshold_suppressed(self):
        stream = self._capture(logging.WARNING)
        log_event(get_logger("t"), logging.INFO, "quiet")
        assert stream.getvalue() == ""

    def test_reinstall_replaces_instead_of_stacking(self):
        first = io.StringIO()
        second = io.StringIO()
        install_handler(logging.INFO, stream=first)
        install_handler(logging.INFO, stream=second)
        log_event(get_logger("t"), logging.INFO, "once")
        assert first.getvalue() == ""
        assert second.getvalue().count("event=once") == 1


class TestWarnOnce:
    def test_first_warns_then_repeats_stay_silent(self):
        reset_warn_once()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert warn_once("k1", "msg", category=RuntimeWarning)
            assert not warn_once("k1", "msg", category=RuntimeWarning)
        assert len(caught) == 1
        assert caught[0].category is RuntimeWarning
        assert "msg" in str(caught[0].message)

    def test_distinct_keys_warn_independently(self):
        reset_warn_once()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_once("ka", "a")
            warn_once("kb", "b")
        assert len(caught) == 2


class TestSerialFallbackWarning:
    def test_mic_fallback_fires_once_per_process(self, rng, monkeypatch):
        """The MIC engine's serial-fallback RuntimeWarning routes through
        warn_once: a broken process pool nags exactly once, and results
        stay contractually identical to serial."""
        import repro.stats.micfast as micfast

        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(micfast, "ProcessPoolExecutor", broken_pool)
        reset_warn_once()
        data = rng.normal(size=(30, 7))  # 21 pairs: above the pool floor
        serial = micfast.mic_matrix_fast(data)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = micfast.mic_matrix_fast(data, max_workers=2)
            second = micfast.mic_matrix_fast(data, max_workers=2)
        fallback = [
            w for w in caught if "serial" in str(w.message).lower()
        ]
        assert len(fallback) == 1
        assert fallback[0].category is RuntimeWarning
        assert np.array_equal(first, serial)
        assert np.array_equal(second, serial)

"""Deterministic observability tests for the streaming monitor.

The same hand-built ARIMA(0,1,0) harness as ``tests/core/test_online.py``
("anomalous exactly when CPI moves more than 0.5 from its predecessor")
drives an :class:`OnlineMonitor` through one complete incident —
warm-up, 3-tick ramp alarm, window collection, diagnosis, cool-down —
under a fake span clock.  Every counter the monitor emits is then
exactly predictable, so the Prometheus exposition is snapshot-tested
byte for byte.
"""

import numpy as np

import repro.obs as obs
from repro.core import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.inference import InferenceResult
from repro.core.invariants import InvariantSet
from repro.core.online import (
    AlarmEvent,
    DiagnosisEvent,
    MonitorState,
    OnlineMonitor,
)
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

WARMUP = 12
WINDOW = 8
COOLDOWN = 4
LEAD_IN = OnlineMonitor.CONSECUTIVE + 2  # ring-buffered pre-alarm rows
LABEL = "wordcount@slave-1"


class FakeClock:
    """Monotonic fake: every read advances one millisecond."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


def _monitor() -> OnlineMonitor:
    context = OperationContext("wordcount", "slave-1")
    model = ARIMAModel(
        order=ARIMAOrder(0, 1, 0),
        ar=np.empty(0),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    detector = AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
    )
    catalog = MetricCatalog(names=("m0", "m1", "m2", "m3"))
    invariants = InvariantSet(
        pairs=[(0, 1)], baseline=np.array([0.9]), catalog=catalog
    )
    pipe = InvarNetX(catalog=catalog)
    pipe.store.adopt(
        context.key(),
        ContextModels(
            context=context, detector=detector, invariants=invariants
        ),
    )
    # inference itself is covered elsewhere; a stub keeps this harness
    # free of MIC work so the emitted counters are the monitor's alone
    pipe.infer = lambda ctx, window, top_k=3: InferenceResult(
        causes=[], violations=np.zeros(1, dtype=bool)
    )
    return OnlineMonitor(
        pipe,
        context,
        window_ticks=WINDOW,
        warmup_ticks=WARMUP,
        cooldown_ticks=COOLDOWN,
    )


def _run_incident(monitor: OnlineMonitor) -> list:
    """Drive one full incident; the exact per-state tick budget is
    12 warm-up, 3+1 monitoring, 3 collecting, 4 cool-down."""
    events = []

    def feed(value: float, ticks: int) -> None:
        for _ in range(ticks):
            event = monitor.observe(np.zeros(4), value)
            if event is not None:
                events.append(event)

    feed(1.0, WARMUP)  # constant CPI: warm-up completes, nothing fires
    for step in range(1, OnlineMonitor.CONSECUTIVE + 1):
        feed(1.0 + step, 1)  # +1/tick ramp: alarm on the third tick
    feed(4.0, WINDOW - LEAD_IN)  # fill the abnormal window -> diagnosis
    feed(4.0, COOLDOWN)  # drain the cool-down
    feed(4.0, 1)  # first re-armed monitoring tick
    return events


class TestMonitorMetrics:
    def test_counters_exact(self):
        obs.configure(enabled=True, clock=FakeClock())
        monitor = _monitor()
        events = _run_incident(monitor)
        assert [type(e) for e in events] == [AlarmEvent, DiagnosisEvent]
        assert monitor.state is MonitorState.MONITORING

        registry = obs.metrics_registry()
        ticks = registry.counter(
            "invarnetx_monitor_state_ticks_total",
            labelnames=("context", "state"),
        )
        assert ticks.value(context=LABEL, state="warmup") == WARMUP
        assert ticks.value(context=LABEL, state="monitoring") == 4
        assert ticks.value(context=LABEL, state="collecting") == 3
        assert ticks.value(context=LABEL, state="cooldown") == COOLDOWN

        transitions = registry.counter(
            "invarnetx_monitor_transitions_total",
            labelnames=("context", "from", "to"),
        )
        for src, dst in (
            ("warmup", "monitoring"),
            ("monitoring", "collecting"),
            ("collecting", "cooldown"),
            ("cooldown", "monitoring"),
        ):
            assert (
                transitions.value(
                    **{"context": LABEL, "from": src, "to": dst}
                )
                == 1
            ), (src, dst)

        # drift checks run only on MONITORING ticks: 3 ramp + 1 re-armed.
        # Warm-up, collecting and cool-down ticks do zero detector calls.
        checks = registry.counter(
            "invarnetx_monitor_checks_total", labelnames=("context",)
        )
        assert checks.value(context=LABEL) == 4
        assert checks.value(context=LABEL) == ticks.value(
            context=LABEL, state="monitoring"
        )

        alarms = registry.counter(
            "invarnetx_alarms_total", labelnames=("context",)
        )
        diagnoses = registry.counter(
            "invarnetx_diagnoses_total", labelnames=("context",)
        )
        assert alarms.value(context=LABEL) == 1
        assert diagnoses.value(context=LABEL) == 1

    def test_disabled_monitor_emits_nothing(self):
        monitor = _monitor()
        events = _run_incident(monitor)
        assert len(events) == 2  # behaviour is identical, telemetry absent
        assert obs.metrics_registry().families() == []

    def test_prometheus_snapshot(self):
        obs.configure(enabled=True, clock=FakeClock())
        _run_incident(_monitor())
        expected = "\n".join(
            [
                "# HELP invarnetx_alarms_total Alarms raised by online monitors",
                "# TYPE invarnetx_alarms_total counter",
                f'invarnetx_alarms_total{{context="{LABEL}"}} 1',
                "# HELP invarnetx_diagnoses_total Diagnosis events emitted by online monitors",
                "# TYPE invarnetx_diagnoses_total counter",
                f'invarnetx_diagnoses_total{{context="{LABEL}"}} 1',
                "# HELP invarnetx_monitor_checks_total One-step ARIMA drift checks actually run",
                "# TYPE invarnetx_monitor_checks_total counter",
                f'invarnetx_monitor_checks_total{{context="{LABEL}"}} 4',
                "# HELP invarnetx_monitor_state_ticks_total Ticks the monitor spent in each state",
                "# TYPE invarnetx_monitor_state_ticks_total counter",
                f'invarnetx_monitor_state_ticks_total{{context="{LABEL}",state="collecting"}} 3',
                f'invarnetx_monitor_state_ticks_total{{context="{LABEL}",state="cooldown"}} 4',
                f'invarnetx_monitor_state_ticks_total{{context="{LABEL}",state="monitoring"}} 4',
                f'invarnetx_monitor_state_ticks_total{{context="{LABEL}",state="warmup"}} 12',
                "# HELP invarnetx_monitor_transitions_total Monitor state-machine transitions",
                "# TYPE invarnetx_monitor_transitions_total counter",
                f'invarnetx_monitor_transitions_total{{context="{LABEL}",from="collecting",to="cooldown"}} 1',
                f'invarnetx_monitor_transitions_total{{context="{LABEL}",from="cooldown",to="monitoring"}} 1',
                f'invarnetx_monitor_transitions_total{{context="{LABEL}",from="monitoring",to="collecting"}} 1',
                f'invarnetx_monitor_transitions_total{{context="{LABEL}",from="warmup",to="monitoring"}} 1',
                "",
            ]
        )
        assert obs.metrics_registry().render_prometheus() == expected

"""Tests of the stdlib sampling profiler (repro.obs.prof)."""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro.obs as obs
from repro.obs.prof import ProfileReport, SamplingProfiler, capture, frame_label


def _parked_worker():
    """A worker thread parked in a recognisable two-frame chain.

    Returns (thread, release_event); the thread waits inside
    ``_prof_leaf`` called from ``_prof_mid`` until released.
    """
    release = threading.Event()
    ready = threading.Event()

    def _prof_leaf() -> None:
        ready.set()
        release.wait(timeout=30)

    def _prof_mid() -> None:
        _prof_leaf()

    thread = threading.Thread(target=_prof_mid, daemon=True)
    thread.start()
    assert ready.wait(timeout=10)
    return thread, release


@pytest.fixture()
def parked():
    thread, release = _parked_worker()
    yield thread
    release.set()
    thread.join(timeout=10)


class TestSampling:
    def test_sample_once_captures_the_parked_chain(self, parked):
        profiler = SamplingProfiler(tracer=False)
        assert profiler.sample_once() >= 1
        report = profiler.report()
        assert report.samples >= 1
        collapsed = report.render_collapsed()
        assert "_prof_mid" in collapsed
        assert "_prof_leaf" in collapsed
        # the chain is collapsed outermost-first on one line
        line = next(
            l for l in collapsed.splitlines() if "_prof_leaf" in l
        )
        assert line.index("_prof_mid") < line.index("_prof_leaf")

    def test_own_thread_is_excluded(self):
        profiler = SamplingProfiler(tracer=False)
        profiler.sample_once()
        assert profiler.report().total("obs/prof.py") == 0

    def test_counts_accumulate(self, parked):
        profiler = SamplingProfiler(tracer=False)
        for _ in range(5):
            profiler.sample_once()
        assert profiler.report().total("_prof_leaf") == 5

    def test_unique_stack_bound_overflows(self):
        profiler = SamplingProfiler(tracer=False, max_unique_stacks=2)
        profiler._record(("a",))
        profiler._record(("b",))
        profiler._record(("c",))
        profiler._record(("d",))
        report = profiler.report()
        assert report.stacks[("(overflow)",)] == 2
        assert report.dropped == 2
        assert report.samples == 4

    def test_depth_bound_truncates(self, parked):
        profiler = SamplingProfiler(tracer=False, max_depth=1)
        profiler.sample_once()
        report = profiler.report()
        truncated = [s for s in report.stacks if s[0] == "(truncated)"]
        assert truncated
        assert all(len(s) == 2 for s in truncated)

    def test_thread_lifecycle(self, parked):
        profiler = SamplingProfiler(hz=500.0, tracer=False)
        with profiler:
            deadline = time.perf_counter() + 5.0
            while (
                profiler.report().samples == 0
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
        report = profiler.stop()  # idempotent
        assert report.samples > 0
        assert report.duration > 0
        assert not profiler.running

    def test_capture_convenience(self, parked):
        report = capture(0.1, hz=500.0, tracer=False)
        assert report.total("_prof_leaf") > 0

    def test_capture_rejects_nonpositive_seconds(self):
        with pytest.raises(ValueError):
            capture(0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_unique_stacks=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)


class TestSpanAttribution:
    def test_samples_inside_a_span_get_the_span_prefix(self):
        obs.configure(enabled=True)
        release = threading.Event()
        ready = threading.Event()

        def _staged() -> None:
            with obs.span("stage.tick"):
                ready.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=_staged, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        try:
            profiler = SamplingProfiler()  # default: the process tracer
            profiler.sample_once()
            report = profiler.report()
            spanned = [
                s for s in report.stacks if s[0] == "span:stage.tick"
            ]
            assert spanned
        finally:
            release.set()
            thread.join(timeout=10)

    def test_disabled_tracer_means_no_prefix(self, parked):
        assert not obs.enabled()
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert not any(
            s[0].startswith("span:") for s in profiler.report().stacks
        )


class TestExporters:
    def _report(self) -> ProfileReport:
        return ProfileReport(
            {("a", "b"): 3, ("a", "c"): 1, ("d",): 2},
            duration=1.0,
            hz=97.0,
        )

    def test_collapsed_text_is_sorted_and_stable(self):
        report = self._report()
        text = report.render_collapsed()
        assert text == "a;b 3\na;c 1\nd 2\n"
        assert text == self._report().render_collapsed()

    def test_empty_report_renders_empty(self):
        assert ProfileReport({}, 0.0, 97.0).render_collapsed() == ""

    def test_speedscope_document_shape(self):
        doc = self._report().to_speedscope("unit")
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert frames == sorted(frames)
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["endValue"] == 6
        assert len(profile["samples"]) == len(profile["weights"]) == 3
        assert sum(profile["weights"]) == 6
        # every frame index is valid
        for sample in profile["samples"]:
            assert all(0 <= i < len(frames) for i in sample)
        # stacks resolve back to their labels
        resolved = [
            tuple(frames[i] for i in sample)
            for sample in profile["samples"]
        ]
        assert set(resolved) == {("a", "b"), ("a", "c"), ("d",)}
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_speedscope_is_deterministic(self):
        assert self._report().to_speedscope() == self._report().to_speedscope()

    def test_frame_label_uses_package_relative_paths(self):
        code = SamplingProfiler.sample_once.__code__
        label = frame_label(code)
        assert label.startswith("repro/obs/prof.py:sample_once:")


class TestLazyExports:
    def test_package_names_resolve(self):
        assert obs.SamplingProfiler is SamplingProfiler
        assert obs.capture_profile is capture
        assert obs.ProfileReport is ProfileReport

"""Tests of the SLO burn-rate tracker (repro.obs.slo) and its health
check surface."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SLOObjective,
    SLOTracker,
    default_objectives,
)

WINDOWS = (BurnWindow(60.0, 2.0), BurnWindow(600.0, 1.0))


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.counter(
        "invarnetx_http_requests_total",
        "requests",
        ("endpoint", "method", "status"),
    )
    registry.histogram(
        "invarnetx_http_request_seconds",
        "latency",
        ("endpoint",),
        buckets=(0.1, 0.5, 1.0),
    )
    return registry


def _hit(registry, endpoint="/ingest", status="200", seconds=0.01, n=1):
    for _ in range(n):
        registry.counter(
            "invarnetx_http_requests_total",
            "requests",
            ("endpoint", "method", "status"),
        ).inc(endpoint=endpoint, method="POST", status=status)
        registry.histogram(
            "invarnetx_http_request_seconds",
            "latency",
            ("endpoint",),
            buckets=(0.1, 0.5, 1.0),
        ).observe(seconds, endpoint=endpoint)


class TestObjectiveValidation:
    def test_rejects_junk(self):
        with pytest.raises(ValueError):
            SLOObjective("")
        with pytest.raises(ValueError):
            SLOObjective("x", kind="availability")
        with pytest.raises(ValueError):
            SLOObjective("x", objective=1.0)
        with pytest.raises(ValueError):
            SLOObjective("x", latency_bound=0.0)

    def test_budget(self):
        assert SLOObjective("x", objective=0.99).budget == pytest.approx(0.01)

    def test_defaults_are_valid(self):
        objectives = default_objectives()
        assert {o.name for o in objectives} == {
            "ingest-latency",
            "http-errors",
        }

    def test_window_validation(self):
        with pytest.raises(ValueError):
            BurnWindow(0.0, 1.0)
        with pytest.raises(ValueError):
            BurnWindow(60.0, 0.0)

    def test_tracker_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(objectives=[], registry=_registry())
        with pytest.raises(ValueError):
            SLOTracker(
                objectives=[SLOObjective("a"), SLOObjective("a")],
                registry=_registry(),
            )
        with pytest.raises(ValueError):
            SLOTracker(registry=_registry(), windows=())


class TestBurnRates:
    def _tracker(self, registry, objective, ledger=None):
        return SLOTracker(
            objectives=[objective],
            registry=registry,
            ledger=ledger,
            windows=WINDOWS,
            clock=lambda: 0.0,
        )

    def test_healthy_traffic_never_burns(self):
        registry = _registry()
        tracker = self._tracker(
            registry,
            SLOObjective("errors", kind="errors", objective=0.99),
        )
        now = 0.0
        for _ in range(10):
            _hit(registry, n=20)
            now += 30.0
            (status,) = tracker.observe(now)
            assert not status.burning
            assert status.burn_rates == {60.0: 0.0, 600.0: 0.0}

    def test_error_burst_burns_both_windows(self):
        registry = _registry()
        tracker = self._tracker(
            registry,
            SLOObjective("errors", kind="errors", objective=0.99),
        )
        tracker.observe(0.0)
        _hit(registry, status="500", n=5)
        _hit(registry, status="200", n=5)
        (status,) = tracker.observe(30.0)
        # bad ratio 0.5 against a 0.01 budget: burn rate 50x
        assert status.burning
        assert status.burn_rates[60.0] == pytest.approx(50.0)
        assert status.burn_rates[600.0] == pytest.approx(50.0)

    def test_short_window_alone_does_not_fire(self):
        registry = _registry()
        # long window threshold high enough that the burst stays under it
        tracker = SLOTracker(
            objectives=[SLOObjective("errors", kind="errors", objective=0.99)],
            registry=registry,
            ledger=None,
            windows=(BurnWindow(60.0, 2.0), BurnWindow(600.0, 100.0)),
            clock=lambda: 0.0,
        )
        tracker.observe(0.0)
        _hit(registry, status="500", n=1)
        _hit(registry, status="200", n=9)
        (status,) = tracker.observe(30.0)
        assert status.burn_rates[60.0] == pytest.approx(10.0)
        assert not status.burning  # 10x < the 100x long-window threshold

    def test_old_errors_age_out_of_the_window(self):
        registry = _registry()
        tracker = self._tracker(
            registry,
            SLOObjective("errors", kind="errors", objective=0.99),
        )
        tracker.observe(0.0)
        _hit(registry, status="500", n=10)
        (status,) = tracker.observe(10.0)
        assert status.burning
        # a quiet stretch longer than both windows
        for step in range(1, 30):
            (status,) = tracker.observe(10.0 + step * 60.0)
        assert not status.burning
        assert status.burn_rates == {60.0: 0.0, 600.0: 0.0}

    def test_latency_objective_counts_slow_requests(self):
        registry = _registry()
        tracker = self._tracker(
            registry,
            SLOObjective(
                "lat",
                kind="latency",
                objective=0.9,
                endpoint="/ingest",
                latency_bound=0.5,
            ),
        )
        tracker.observe(0.0)
        _hit(registry, seconds=0.01, n=5)   # fast: good
        _hit(registry, seconds=0.75, n=5)   # slow: bad
        (status,) = tracker.observe(30.0)
        assert status.total == 10
        assert status.bad == 5
        assert status.burning  # 0.5 bad ratio vs 0.1 budget = 5x > 2x/1x

    def test_endpoint_filter(self):
        registry = _registry()
        tracker = self._tracker(
            registry,
            SLOObjective(
                "lat", kind="latency", endpoint="/ingest", objective=0.9
            ),
        )
        tracker.observe(0.0)
        _hit(registry, endpoint="/other", seconds=3.0, n=50)
        (status,) = tracker.observe(30.0)
        assert status.total == 0
        assert not status.burning


class TestLedgerTransitions:
    def test_burn_and_recovery_are_edge_triggered(self, tmp_path):
        registry = _registry()
        ledger = RunLedger(tmp_path / "ledger.jsonl", clock=lambda: 0.0)
        tracker = SLOTracker(
            objectives=[SLOObjective("errors", kind="errors", objective=0.99)],
            registry=registry,
            ledger=ledger,
            windows=WINDOWS,
            clock=lambda: 0.0,
        )
        tracker.observe(0.0)
        _hit(registry, status="500", n=10)
        tracker.observe(10.0)
        tracker.observe(20.0)  # still burning: no duplicate entry
        assert tracker.burning() == ["errors"]
        for step in range(1, 30):
            tracker.observe(20.0 + step * 60.0)
        assert tracker.burning() == []
        kinds = [e["kind"] for e in ledger.entries()]
        assert kinds == ["slo-burn", "slo-recovered"]
        burn = ledger.entries(kind="slo-burn")[0]
        assert burn["objective"] == "errors"
        assert burn["budget"] == pytest.approx(0.01)
        assert set(burn["burn_rates"]) == {"60s", "600s"}

    def test_no_ledger_is_fine(self):
        registry = _registry()
        tracker = SLOTracker(
            objectives=[SLOObjective("errors", kind="errors")],
            registry=registry,
            windows=WINDOWS,
            clock=lambda: 0.0,
        )
        tracker.observe(0.0)
        _hit(registry, status="500", n=10)
        tracker.observe(10.0)  # transition with ledger=None: no crash
        assert tracker.burning() == ["errors"]


class TestEmptyRegistry:
    def test_missing_families_read_as_zero(self):
        tracker = SLOTracker(
            registry=MetricsRegistry(enabled=True),
            windows=WINDOWS,
            clock=lambda: 0.0,
        )
        statuses = tracker.observe(0.0)
        assert all(not s.burning for s in statuses)
        assert all(s.total == 0 for s in statuses)

    def test_default_windows_are_the_sre_pair(self):
        assert DEFAULT_WINDOWS[0].seconds == 300.0
        assert DEFAULT_WINDOWS[1].seconds == 3600.0


class TestHealthCheck:
    def _score(self, tmp_path, entries, name="ledger.jsonl"):
        from repro.obs.health import score_store
        from repro.store import MemoryStore

        ledger = RunLedger(tmp_path / name, clock=lambda: 0.0)
        for kind, objective in entries:
            ledger.append(kind, objective=objective)
        return score_store(MemoryStore(), ledger=ledger)

    def test_no_slo_history_skips(self, tmp_path):
        report = self._score(tmp_path, [])
        (check,) = report.fleet
        assert check.name == "slo-burn"
        assert check.status == "skip"
        assert report.warnings == 0

    def test_unrecovered_burn_warns(self, tmp_path):
        report = self._score(
            tmp_path,
            [("slo-burn", "http-errors"), ("slo-burn", "ingest-latency"),
             ("slo-recovered", "ingest-latency")],
        )
        (check,) = report.fleet
        assert check.status == "warn"
        assert "http-errors" in check.detail
        assert "ingest-latency" not in check.detail
        assert report.warnings == 1

    def test_recovered_is_ok(self, tmp_path):
        report = self._score(
            tmp_path,
            [("slo-burn", "http-errors"), ("slo-recovered", "http-errors")],
        )
        (check,) = report.fleet
        assert check.status == "ok"
        assert report.warnings == 0

    def test_report_json_includes_fleet_and_is_deterministic(self, tmp_path):
        import json

        report = self._score(tmp_path, [("slo-burn", "http-errors")])
        doc = report.to_json()
        assert doc["fleet"][0]["name"] == "slo-burn"
        again = self._score(
            tmp_path, [("slo-burn", "http-errors")], name="again.jsonl"
        )
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            again.to_json(), sort_keys=True
        )
        assert "fleet" in report.render_text()


class TestLazyExports:
    def test_package_names_resolve(self):
        from repro.obs.slo import SLOStatus

        assert obs.SLOTracker is SLOTracker
        assert obs.SLOObjective is SLOObjective
        assert obs.SLOStatus is SLOStatus
        assert obs.default_objectives is default_objectives

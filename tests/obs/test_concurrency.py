"""Concurrency stress tests for the tracer and metrics registry.

The diagnoser runs one pipeline per cluster node from worker threads
(:mod:`repro.core.orchestrator`), so both observability singletons must
tolerate concurrent writers: spans nest per-thread (thread-local
stacks), counters must not lose increments, and the Prometheus export
must be byte-stable once the writers quiesce.
"""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

THREADS = 8
ITERATIONS = 200


def _run_in_threads(work):
    """Run ``work(thread_index)`` in THREADS threads; re-raise failures."""
    errors = []

    def wrapped(tid):
        try:
            work(tid)
        except BaseException as exc:  # surfaced in the main thread below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(t,)) for t in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestConcurrentCounters:
    def test_no_lost_updates_on_shared_series(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter(
            "stress_total", "stress counter", labelnames=("context",)
        )
        # Pre-bind one handle per thread label plus one shared series that
        # every thread hammers — the shared series is where lost updates
        # would show.
        shared = counter.series(context="all")

        def work(tid):
            mine = counter.series(context=f"t{tid}")
            for _ in range(ITERATIONS):
                mine.inc()
                shared.inc()

        _run_in_threads(work)
        assert shared.value == THREADS * ITERATIONS
        for tid in range(THREADS):
            assert counter.value(context=f"t{tid}") == ITERATIONS

    def test_histogram_counts_are_exact(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram(
            "stress_seconds", "stress histogram", labelnames=("context",)
        )

        def work(tid):
            series = hist.series(context="all")
            for i in range(ITERATIONS):
                series.observe(0.0001 * (i % 7 + 1))

        _run_in_threads(work)
        series = hist.series(context="all")
        assert series.count == THREADS * ITERATIONS
        assert sum(series.counts) == THREADS * ITERATIONS

    def test_series_creation_race_yields_one_handle(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter(
            "race_total", "race", labelnames=("context",)
        )
        handles = [None] * THREADS
        barrier = threading.Barrier(THREADS)

        def work(tid):
            barrier.wait()
            handles[tid] = counter.series(context="same")
            handles[tid].inc()

        _run_in_threads(work)
        assert len({id(h) for h in handles}) == 1
        assert counter.value(context="same") == THREADS


class TestConcurrentSpans:
    def test_nested_spans_stay_on_their_thread(self):
        tracer = Tracer(enabled=True, max_finished=THREADS * ITERATIONS + 8)

        def work(tid):
            for i in range(50):
                with tracer.span(f"outer-{tid}") as outer:
                    outer.set(i=i)
                    with tracer.span("inner") as inner:
                        inner.set(tid=tid)

        _run_in_threads(work)
        roots = tracer.roots()
        assert len(roots) == THREADS * 50
        for root in roots:
            # Thread-local stacks: each root owns exactly its own child,
            # never a span opened by another thread.
            assert root.name.startswith("outer-")
            tid = int(root.name.split("-")[1])
            assert [c.name for c in root.children] == ["inner"]
            assert root.children[0].attributes["tid"] == tid

    def test_span_counts_per_thread_exact(self):
        tracer = Tracer(enabled=True, max_finished=THREADS * 60)

        def work(tid):
            for _ in range(40):
                with tracer.span(f"stage-{tid}"):
                    pass

        _run_in_threads(work)
        for tid in range(THREADS):
            assert len(tracer.find(f"stage-{tid}")) == 40


class TestMixedStress:
    def test_spans_and_counters_together_then_stable_export(self):
        """The satellite's acceptance shape: N threads open nested spans
        and bump labelled counters concurrently; afterwards no update is
        lost and ``render_prometheus()`` is byte-stable."""
        registry = MetricsRegistry(enabled=True)
        tracer = Tracer(enabled=True, max_finished=THREADS * ITERATIONS + 8)
        counter = registry.counter(
            "invarnetx_stress_ops_total", "ops", labelnames=("context",)
        )
        hist = registry.histogram(
            "invarnetx_stress_seconds", "durations", labelnames=("context",)
        )
        barrier = threading.Barrier(THREADS)

        def work(tid):
            label = f"wc@node-{tid}"
            ops = counter.series(context=label)
            durations = hist.series(context=label)
            barrier.wait()
            for i in range(ITERATIONS):
                with tracer.span("diagnose") as outer:
                    outer.set(i=i)
                    with tracer.span("detect"):
                        pass
                ops.inc()
                counter.inc(context="all")
                durations.observe(outer.duration or 0.0)

        _run_in_threads(work)

        # No lost updates anywhere.
        assert counter.value(context="all") == THREADS * ITERATIONS
        for tid in range(THREADS):
            label = f"wc@node-{tid}"
            assert counter.value(context=label) == ITERATIONS
            assert hist.series(context=label).count == ITERATIONS

        # Byte-stable export once writers quiesce.
        first = registry.render_prometheus()
        second = registry.render_prometheus()
        assert first == second
        assert isinstance(first, str) and first.encode() == second.encode()
        assert 'invarnetx_stress_ops_total{context="all"} %d' % (
            THREADS * ITERATIONS
        ) in first

    def test_enabled_flip_mid_stress_never_corrupts(self):
        """Toggling the registry off mid-run may drop increments (that is
        the point of the switch) but must never corrupt series state."""
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("flip_total", "flip")
        series = counter.series()
        stop = threading.Event()

        def toggler():
            while not stop.is_set():
                registry.enabled = not registry.enabled
            registry.enabled = True

        def work(tid):
            for _ in range(ITERATIONS):
                series.inc()

        flipper = threading.Thread(target=toggler)
        flipper.start()
        try:
            _run_in_threads(work)
        finally:
            stop.set()
            flipper.join()
        value = series.value
        assert 0 <= value <= THREADS * ITERATIONS
        assert value == int(value)  # integral: no torn read-modify-write
        # The export still renders and parses cleanly.
        text = registry.render_prometheus()
        assert text == registry.render_prometheus()


class TestWarnOnceStress:
    def test_exactly_one_first_under_contention(self):
        """8 threads hammering the same key must yield exactly one
        ``first=True`` and exactly one real warning — the check-and-add
        happens under ``_seen_lock``, not as a racy read-then-write."""
        import warnings

        from repro.obs.bridge import reset_warn_once, warn_once

        reset_warn_once()
        firsts = []
        firsts_lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")

            def work(tid):
                barrier.wait()
                for i in range(ITERATIONS):
                    if warn_once(
                        "stress.key", f"stress warning t{tid} i{i}"
                    ):
                        with firsts_lock:
                            firsts.append(tid)

            try:
                _run_in_threads(work)
            finally:
                reset_warn_once()

        assert len(firsts) == 1
        assert len(caught) == 1
        assert issubclass(caught[0].category, RuntimeWarning)

    def test_distinct_keys_each_fire_once(self):
        from repro.obs.bridge import reset_warn_once, warn_once

        reset_warn_once()
        results = [None] * THREADS
        barrier = threading.Barrier(THREADS)

        def work(tid):
            barrier.wait()
            results[tid] = sum(
                1
                for _ in range(ITERATIONS)
                if warn_once(f"stress.key-{tid}", "per-thread key")
            )

        import warnings

        # catch_warnings mutates global filter state, so enter it once on
        # the main thread rather than per worker.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                _run_in_threads(work)
            finally:
                reset_warn_once()
        assert results == [1] * THREADS


class TestConcurrentLedgerAndTrace:
    def test_trace_export_during_span_churn(self, tmp_path):
        """Exporting while other threads finish spans must not crash or
        emit malformed events (snapshot semantics on the deque)."""
        import json

        from repro.obs.traceexport import write_chrome_trace

        tracer = Tracer(enabled=True, max_finished=4096)
        stop = threading.Event()

        def churn(tid):
            while not stop.is_set():
                with tracer.span(f"churn-{tid}"):
                    pass

        threads = [
            threading.Thread(target=churn, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for i in range(10):
                path = write_chrome_trace(
                    tmp_path / f"trace-{i}.json", tracer.roots()
                )
                doc = json.loads(path.read_text(encoding="utf-8"))
                for event in doc["traceEvents"]:
                    assert event["ph"] == "X"
                    assert event["dur"] >= 0
        finally:
            stop.set()
            for t in threads:
                t.join()

"""Tests for the append-only run ledger: round-trips, atomicity, healing."""

import json
import os
import threading

import numpy as np
import pytest

from repro.obs.ledger import (
    LEDGER_FORMAT,
    RunLedger,
    config_fingerprint,
    stage_timings,
    summarize_residuals,
)
from repro.obs.tracing import Tracer

from .test_tracing import FakeClock


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "ledger.jsonl")


class TestAppendAndRead:
    def test_missing_file_reads_empty(self, ledger):
        assert ledger.entries() == []
        assert len(ledger) == 0
        assert ledger.last() is None
        assert not ledger.path.exists()

    def test_round_trip_preserves_fields(self, ledger):
        entry = ledger.append(
            "train", context=("wordcount", "slave-1"), runs=8, nested={"a": 1}
        )
        (read,) = ledger.entries()
        assert read == entry
        assert read["kind"] == "train"
        assert read["context"] == ["wordcount", "slave-1"]
        assert read["runs"] == 8
        assert read["nested"] == {"a": 1}
        assert read["format"] == LEDGER_FORMAT
        assert isinstance(read["ts"], float)

    def test_seq_is_monotonic_and_survives_reopen(self, ledger):
        for i in range(3):
            ledger.append("diagnose", run=i)
        assert [e["seq"] for e in ledger.entries()] == [1, 2, 3]
        reopened = RunLedger(ledger.path)
        reopened.append("diagnose", run=3)
        assert [e["seq"] for e in reopened.entries()] == [1, 2, 3, 4]

    def test_kind_and_context_filters(self, ledger):
        ledger.append("train", context=("wc", "n1"))
        ledger.append("diagnose", context=("wc", "n1"))
        ledger.append("diagnose", context=("wc", "n2"))
        assert len(ledger.entries(kind="diagnose")) == 2
        assert len(ledger.entries(context=("wc", "n1"))) == 2
        assert len(ledger.entries(kind="diagnose", context=("wc", "n2"))) == 1
        assert ledger.last(kind="train")["context"] == ["wc", "n1"]

    def test_contexts_sorted_and_distinct(self, ledger):
        ledger.append("train", context=("b", "2"))
        ledger.append("train", context=("a", "1"))
        ledger.append("diagnose", context=("b", "2"))
        ledger.append("note")  # context-free entry ignored
        assert ledger.contexts() == [("a", "1"), ("b", "2")]

    def test_tail(self, ledger):
        for i in range(5):
            ledger.append("diagnose", run=i)
        assert [e["run"] for e in ledger.tail(2)] == [3, 4]
        assert ledger.tail(0) == []
        with pytest.raises(ValueError):
            ledger.tail(-1)

    def test_empty_kind_rejected(self, ledger):
        with pytest.raises(ValueError, match="kind"):
            ledger.append("")

    def test_non_serialisable_payload_falls_back_to_repr(self, ledger):
        ledger.append("train", weird=object())
        (read,) = ledger.entries()
        assert "object object" in read["weird"]


class TestTornWriteTolerance:
    def test_torn_trailing_line_is_skipped(self, ledger):
        ledger.append("train", runs=8)
        ledger.append("diagnose", detected=True)
        with open(ledger.path, "ab") as fh:
            fh.write(b'{"kind": "diagnose", "dete')  # crash mid-append
        damaged = RunLedger(ledger.path)
        assert [e["kind"] for e in damaged.entries()] == ["train", "diagnose"]
        assert damaged.skipped == 1

    def test_append_heals_a_torn_tail(self, ledger):
        ledger.append("train", runs=8)
        with open(ledger.path, "ab") as fh:
            fh.write(b'{"torn": tru')
        healed = RunLedger(ledger.path)
        entry = healed.append("diagnose", detected=False)
        # The torn fragment is isolated on its own line; the new entry
        # parses cleanly and the fragment stays the only casualty.
        entries = healed.entries()
        assert [e["kind"] for e in entries] == ["train", "diagnose"]
        assert healed.skipped == 1
        assert entries[-1] == entry
        raw_lines = ledger.path.read_bytes().split(b"\n")
        assert raw_lines[1] == b'{"torn": tru'

    def test_non_dict_lines_are_skipped(self, ledger):
        ledger.append("train")
        with open(ledger.path, "ab") as fh:
            fh.write(b'[1, 2, 3]\n"just a string"\n')
        assert [e["kind"] for e in ledger.entries()] == ["train"]
        assert ledger.skipped == 2

    def test_seq_reseeds_past_damage(self, ledger):
        ledger.append("train")
        ledger.append("diagnose")
        with open(ledger.path, "ab") as fh:
            fh.write(b"garbage")
        reopened = RunLedger(ledger.path)
        entry = reopened.append("diagnose")
        assert entry["seq"] == 3


class TestConcurrentAppends:
    def test_parallel_appends_lose_nothing(self, ledger):
        threads_n, per_thread = 8, 25

        def work(tid):
            for i in range(per_thread):
                ledger.append("diagnose", thread=tid, i=i)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        entries = ledger.entries()
        assert len(entries) == threads_n * per_thread
        assert ledger.skipped == 0  # whole-line atomicity: nothing torn
        seqs = sorted(e["seq"] for e in entries)
        assert seqs == list(range(1, threads_n * per_thread + 1))
        seen = {(e["thread"], e["i"]) for e in entries}
        assert len(seen) == threads_n * per_thread

    def test_two_handles_interleave_whole_lines(self, ledger):
        other = RunLedger(ledger.path)
        for i in range(20):
            (ledger if i % 2 == 0 else other).append("diagnose", i=i)
        entries = RunLedger(ledger.path).entries()
        assert sorted(e["i"] for e in entries) == list(range(20))
        assert all(
            json.loads(line)  # every line parses on its own
            for line in ledger.path.read_text().splitlines()
        )


class TestHelpers:
    def test_config_fingerprint_stable_and_sensitive(self):
        from repro.core.pipeline import InvarNetXConfig

        base = config_fingerprint(InvarNetXConfig())
        assert base == config_fingerprint(InvarNetXConfig())
        assert base != config_fingerprint(InvarNetXConfig(beta=1.3))
        assert len(base) == 12

    def test_config_fingerprint_plain_mapping(self):
        a = config_fingerprint({"b": 2, "a": 1})
        b = config_fingerprint({"a": 1, "b": 2})
        assert a == b  # key order does not matter

    def test_stage_timings_sums_by_name(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("stage"):
                pass
            with tracer.span("stage"):
                pass
        (root,) = tracer.roots()
        timings = stage_timings([root])
        assert timings["stage"] == 2.0  # two 1-tick spans
        assert timings["outer"] == 5.0

    def test_summarize_residuals_drops_nan(self):
        summary = summarize_residuals(
            np.array([np.nan, 1.0, 2.0, 3.0, np.nan])
        )
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0
        assert summary["p90"] == pytest.approx(2.8)

    def test_summarize_residuals_empty(self):
        assert summarize_residuals(np.array([])) == {"count": 0}
        assert summarize_residuals(np.array([np.nan])) == {"count": 0}


class TestAtomicWriteShape:
    def test_single_write_per_entry(self, ledger, monkeypatch):
        """Each append must issue exactly one os.write — the property the
        whole-line atomicity argument rests on."""
        calls = []
        real_write = os.write

        def counting_write(fd, data):
            calls.append(bytes(data))
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", counting_write)
        ledger.append("train", runs=8)
        assert len(calls) == 1
        assert calls[0].endswith(b"\n")
        json.loads(calls[0])

"""Tests for the incident-explanation report.

Determinism is the headline contract: under the shared session fixtures
(fixed simulator seeds) the text report must be byte-identical run to
run, and it is held to a checked-in golden file.  The JSON form must
carry the same data.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import InvarNetX
from repro.faults.spec import FaultSpec, build_fault
from repro.obs.explain import (
    RESIDUAL_MARGIN,
    explain_run,
    explain_window,
)

GOLDEN = Path(__file__).parent / "golden_explain.txt"

#: The incident every test here explains (fresh seed, CPU-hog on the
#: trained node inside the usual injection window).
FAULT = ("CPU-hog", 7100)


@pytest.fixture(scope="module")
def explain_pipeline(cluster, wordcount_runs, wordcount_context):
    """A private pipeline trained with the exact session recipe.

    The golden-file contract pins the report bytes, so this module cannot
    share the session-scoped ``trained_pipeline`` — other tests may
    legitimately add signatures to it, which would make the ranked-causes
    section depend on test ordering.  (The MIC cache is warm from the
    session fixture, so retraining here is cheap.)
    """
    pipe = InvarNetX()
    pipe.train_from_runs(wordcount_context, wordcount_runs)
    for fault_name, seed in (
        ("CPU-hog", 2001),
        ("Mem-hog", 2002),
        ("Disk-hog", 2003),
        ("Suspend", 2004),
    ):
        fault = build_fault(fault_name, FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=seed)
        pipe.train_signature_from_run(wordcount_context, fault_name, run)
    return pipe


@pytest.fixture(scope="module")
def incident_run(cluster):
    name, seed = FAULT
    fault = build_fault(name, FaultSpec("slave-1", 40, 30))
    return cluster.run("wordcount", faults=[fault], seed=seed)


@pytest.fixture(scope="module")
def explanation(explain_pipeline, wordcount_context, incident_run):
    return explain_run(explain_pipeline, wordcount_context, incident_run)


class TestExplainRun:
    def test_healthy_run_has_nothing_to_explain(
        self, explain_pipeline, wordcount_context, cluster
    ):
        healthy = cluster.run("wordcount", seed=7101)
        assert (
            explain_run(explain_pipeline, wordcount_context, healthy)
            is None
        )

    def test_incident_is_matched(self, explanation):
        assert explanation is not None
        assert explanation.matched
        assert explanation.top_cause == FAULT[0]
        assert explanation.causes[0].problem == FAULT[0]
        assert explanation.causes[0].score >= explanation.min_similarity

    def test_every_violated_pair_carries_its_delta(self, explanation):
        violated = explanation.violated_pairs
        assert violated
        for pair in violated:
            assert pair.delta == pytest.approx(
                abs(pair.baseline - pair.observed)
            )
            assert pair.delta >= explanation.epsilon
        for pair in explanation.pairs:
            if not pair.violated:
                assert pair.delta < explanation.epsilon

    def test_residuals_bracket_the_alarm_tick(self, explanation):
        assert explanation.alarm_tick is not None
        assert explanation.threshold_upper is not None
        assert explanation.threshold_rule == "beta-max"
        ticks = [r.tick for r in explanation.residuals]
        assert explanation.alarm_tick in ticks
        assert len(ticks) <= 2 * RESIDUAL_MARGIN + 1
        assert ticks == sorted(ticks)
        alarm = next(
            r
            for r in explanation.residuals
            if r.tick == explanation.alarm_tick
        )
        assert alarm.anomalous

    def test_explains_exactly_the_infer_ranking(
        self, explain_pipeline, wordcount_context, incident_run, explanation
    ):
        window = explain_pipeline.extract_abnormal_window(
            wordcount_context, incident_run
        )
        result = explain_pipeline.infer(wordcount_context, window)
        assert [c.problem for c in explanation.causes] == [
            c.problem for c in result.causes[: len(explanation.causes)]
        ]
        for mine, theirs in zip(explanation.causes, result.causes):
            assert mine.score == pytest.approx(theirs.score)

    def test_breakdown_counts_are_consistent(self, explanation):
        for cause in explanation.causes:
            assert (
                cause.agreeing
                + cause.query_only
                + cause.signature_only
                == cause.tuple_length
            )
            assert cause.shared_violations <= cause.agreeing
            assert cause.tuple_length == len(explanation.pairs)


class TestRenderText:
    def test_byte_identical_across_calls(self, explanation):
        assert explanation.render_text() == explanation.render_text()

    def test_matches_the_golden_file(self, explanation):
        assert explanation.render_text() == GOLDEN.read_text()

    def test_report_sections(self, explanation):
        text = explanation.render_text()
        assert text.startswith(
            "InvarNet-X incident explanation: wordcount@slave-1"
        )
        assert f"verdict: {FAULT[0]}" in text
        assert "ranked causes" in text
        assert "violated invariants" in text
        assert "CPI residuals around alarm tick" in text
        # every violated pair is listed with its delta against epsilon
        for pair in explanation.violated_pairs:
            assert f"{pair.metric_a} ~ {pair.metric_b}:" in text
        assert ">= 0.2000" in text


class TestJson:
    def test_round_trips_and_carries_the_text_data(self, explanation):
        data = json.loads(json.dumps(explanation.to_json()))
        assert data["context"] == {
            "workload": "wordcount",
            "node_id": "slave-1",
            "ip": explanation.context.ip,
        }
        assert data["matched"] is True
        assert data["top_cause"] == FAULT[0]
        assert len(data["causes"]) == len(explanation.causes)
        assert len(data["pairs"]) == len(explanation.pairs)
        assert len(data["residuals"]) == len(explanation.residuals)
        assert data["alarm_tick"] == explanation.alarm_tick
        assert sum(p["violated"] for p in data["pairs"]) == len(
            explanation.violated_pairs
        )
        assert data["epsilon"] == pytest.approx(explanation.epsilon)


class TestExplainWindow:
    def test_top_k_validated(
        self, explain_pipeline, wordcount_context, incident_run
    ):
        window = explain_pipeline.extract_abnormal_window(
            wordcount_context, incident_run
        )
        with pytest.raises(ValueError, match="top_k"):
            explain_window(
                explain_pipeline, wordcount_context, window, top_k=0
            )

    def test_untrained_context_rejected(
        self, explain_pipeline, incident_run
    ):
        from repro.core import OperationContext

        stranger = OperationContext("wordcount", "slave-4")
        window = incident_run.node("slave-4").metrics[40:64]
        with pytest.raises(RuntimeError, match="no invariants"):
            explain_window(explain_pipeline, stranger, window)

    def test_window_without_anomaly_report_skips_residuals(
        self, explain_pipeline, wordcount_context, incident_run
    ):
        window = explain_pipeline.extract_abnormal_window(
            wordcount_context, incident_run
        )
        explanation = explain_window(
            explain_pipeline, wordcount_context, window
        )
        assert explanation.alarm_tick is None
        assert explanation.residuals == []
        assert "CPI residuals" not in explanation.render_text()

"""Tests for the Chrome trace_event export of finished spans."""

import json

import repro.obs as obs
from repro.obs.traceexport import (
    TRACE_PID,
    TRACE_TID,
    chrome_trace,
    to_trace_events,
    write_chrome_trace,
)
from repro.obs.tracing import Tracer

from .test_tracing import FakeClock


def _tree(clock_start=100.0):
    """One two-level finished tree on a deterministic clock."""
    tracer = Tracer(enabled=True, clock=FakeClock(start=clock_start, step=1.0))
    with tracer.span("outer") as outer:
        outer.set(runs=6, label="wc", ok=True)
        with tracer.span("inner"):
            pass
    return tracer.roots()


class TestEventShape:
    def test_complete_events_with_micro_units(self):
        events = to_trace_events(_tree())
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == TRACE_PID
            assert event["tid"] == TRACE_TID
        outer, inner = events
        # clock ticks are 1 s; outer spans 3 ticks (enter, child, exit),
        # inner 1 tick, offset 1 tick into outer.
        assert outer["dur"] == 3_000_000.0
        assert inner["dur"] == 1_000_000.0

    def test_timestamps_shift_to_zero_origin(self):
        events = to_trace_events(_tree(clock_start=5000.0))
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == 1_000_000.0

    def test_child_interval_nested_in_parent(self):
        outer, inner = to_trace_events(_tree())
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_attributes_become_sorted_args(self):
        outer = to_trace_events(_tree())[0]
        assert list(outer["args"]) == sorted(outer["args"])
        assert outer["args"] == {"label": "wc", "ok": True, "runs": 6}

    def test_non_primitive_attribute_stringified(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("s") as sp:
            sp.set(path=("a", "b"))
        (event,) = to_trace_events(tracer.roots())
        assert event["args"]["path"] == "('a', 'b')"

    def test_open_spans_omitted(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        open_span = tracer.span("open")
        open_span.__enter__()
        assert to_trace_events([open_span]) == []

    def test_empty_input(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert doc["displayTimeUnit"] == "ms"


class TestFileRoundTrip:
    def test_written_file_is_valid_trace_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "sub" / "trace.json", _tree())
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == 2
        assert {e["ph"] for e in doc["traceEvents"]} == {"X"}
        assert doc["otherData"]["producer"] == "repro.obs"

    def test_export_helper_uses_process_tracer(self, tmp_path):
        obs.configure(enabled=True, clock=FakeClock())
        with obs.span("root"):
            pass
        path = obs.export_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert [e["name"] for e in doc["traceEvents"]] == ["root"]

"""Flight recorder, incident bundles, and deterministic replay.

The blackbox contract (DESIGN.md §15): the per-lane ring is bounded and
cheap, the disabled path allocates nothing, the bundle's manifest is the
commit point, commits are content-fingerprinted (idempotent), and
``replay_bundle`` reproduces the recorded diagnosis byte for byte from
the bundle alone — and notices when the bundle was tampered with.
"""

from __future__ import annotations

import json
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.inference import InferenceResult
from repro.core.invariants import InvariantSet
from repro.core.online import DiagnosisEvent
from repro.obs.blackbox import (
    BUNDLE_FORMAT,
    BUNDLE_MANIFEST,
    DEFAULT_CAPACITY,
    NOOP_RECORDER,
    FlightRecorder,
    FlightSnapshot,
    commit_bundle,
    load_bundle,
    replay_bundle,
)
from repro.serve import FleetMonitor, Tick
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog

CATALOG = MetricCatalog(names=("m0", "m1", "m2", "m3"))


def last_value_detector() -> AnomalyDetector:
    """ARIMA(0, 1, 0): anomalous when CPI moves > 0.5 from its
    predecessor (the hand-checkable harness of tests/core)."""
    model = ARIMAModel(
        order=ARIMAOrder(0, 1, 0),
        ar=np.empty(0),
        ma=np.empty(0),
        intercept=0.0,
        sigma2=1.0,
    )
    return AnomalyDetector.from_artifacts(
        model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
    )


def incident_pipeline(
    contexts: list[OperationContext], store=None
) -> InvarNetX:
    """A real-inference pipeline: last-value detector, two invariant
    pairs, and a disk_hog signature the fault window matches."""
    if store is None:
        pipe = InvarNetX(catalog=CATALOG)
    else:
        pipe = InvarNetX(catalog=CATALOG, store=store)
    for context in contexts:
        invariants = InvariantSet(
            pairs=[(0, 1), (2, 3)],
            baseline=np.array([0.9, 0.8]),
            catalog=CATALOG,
        )
        models = ContextModels(
            context=context,
            detector=last_value_detector(),
            invariants=invariants,
        )
        models.database.add(
            np.array([True, False]), "disk_hog",
            ip=context.ip, workload=context.workload,
        )
        pipe.store.adopt(context.key(), models)
    return pipe


def drive_fault(
    fleet: FleetMonitor,
    contexts: list[OperationContext],
    faulty: set[tuple[str, str]],
    ticks: int = 40,
    fault_start: int = 14,
) -> list:
    """Ingest a CPI-ramp fault on ``faulty`` contexts; returns events."""
    events = []
    for t in range(ticks):
        batch = []
        for context in contexts:
            fault = context.key() in faulty and t >= fault_start
            cpi = 1.0 + (t - fault_start + 1) * 1.0 if fault else 1.0
            batch.append(
                Tick(
                    context=context,
                    metrics=np.array([1.0, 2.0, 3.0, 4.0]) + t * 0.01,
                    cpi=cpi,
                )
            )
        result = fleet.ingest(batch, request_id=f"req-{t:03d}")
        events.extend(result.events)
    return events


@pytest.fixture()
def committed(tmp_path):
    """A fleet that diagnosed a two-node fault with the blackbox on."""
    contexts = [
        OperationContext("wordcount", f"node-{i}", ip=f"10.0.0.{i}")
        for i in range(3)
    ]
    pipe = incident_pipeline(contexts)
    incidents = tmp_path / "incidents"
    fleet = FleetMonitor(
        pipe,
        shards=2,
        workers=0,
        window_ticks=8,
        warmup_ticks=12,
        cooldown_ticks=4,
        blackbox_dir=incidents,
    )
    events = drive_fault(
        fleet, contexts, {contexts[0].key(), contexts[1].key()}
    )
    yield fleet, pipe, contexts, incidents, events
    fleet.close()


def committed_dirs(incidents: Path) -> list[Path]:
    return sorted(
        p for p in incidents.iterdir()
        if p.is_dir() and (p / BUNDLE_MANIFEST).is_file()
    )


class TestFlightRecorder:
    def test_ring_is_bounded_and_keeps_latest(self):
        recorder = FlightRecorder(
            OperationContext("wc", "n0"), capacity=4
        )
        for t in range(10):
            recorder.record(t, (float(t),), 1.0, None, "monitoring")
        snap = recorder.snapshot()
        assert len(snap.ticks) == 4
        assert [r.tick for r in snap.ticks] == [6, 7, 8, 9]
        assert snap.capacity == 4
        assert snap.context == ("wc", "n0")

    def test_transition_ring_is_bounded(self):
        recorder = FlightRecorder(OperationContext("wc", "n0"))
        for t in range(40):
            recorder.note_transition(t, "monitoring", "collecting")
        snap = recorder.snapshot()
        assert len(snap.transitions) == 16
        assert snap.transitions[-1].tick == 39

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(OperationContext("wc", "n0"), capacity=0)

    def test_snapshot_json_round_trip(self):
        recorder = FlightRecorder(
            OperationContext("wc", "n0"), capacity=8, model_revision=3
        )
        recorder.record(5, (1.0, 2.0), 1.5, True, "monitoring", "req-1")
        recorder.record(6, (1.0, 2.0), 9.5, None, "collecting")
        recorder.note_transition(6, "monitoring", "collecting")
        snap = recorder.snapshot()
        restored = FlightSnapshot.from_json(
            json.loads(json.dumps(snap.to_json()))
        )
        assert restored == snap
        assert restored.model_revision == 3
        assert restored.ticks[0].request_id == "req-1"

    def test_noop_recorder_is_falsy_and_inert(self):
        assert not NOOP_RECORDER
        assert NOOP_RECORDER.enabled is False
        # inert: recording through it is a no-op, not an error
        NOOP_RECORDER.record(1, (1.0,), 1.0, True, "monitoring")
        NOOP_RECORDER.note_transition(1, "monitoring", "alarmed")
        assert not hasattr(NOOP_RECORDER, "__dict__")  # __slots__ = ()

    def test_disabled_path_allocates_zero_bytes(self):
        """The fleet's guard pattern — ``if recorder: recorder.record``
        against the NOOP singleton — must allocate nothing in blackbox
        frames (same contract as the tracer and profiler)."""
        recorder = NOOP_RECORDER
        metrics = (1.0, 2.0, 3.0, 4.0)
        if recorder:  # warmup
            recorder.record(0, metrics, 1.0, None, "monitoring")
        tracemalloc.start()
        for t in range(2000):
            if recorder:
                recorder.record(t, metrics, 1.0, None, "monitoring")
                recorder.note_transition(t, "monitoring", "alarmed")
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        blackbox_bytes = sum(
            trace.size
            for trace in snapshot.traces
            if any(
                "repro/obs/blackbox" in f.filename
                for f in trace.traceback
            )
        )
        assert blackbox_bytes == 0

    def test_default_capacity_covers_abnormal_window(self):
        assert DEFAULT_CAPACITY >= 24  # ABNORMAL_WINDOW_TICKS + lead-in


class TestBundleCommit:
    def test_fleet_commits_one_bundle_per_diagnosis(self, committed):
        fleet, _, _, incidents, events = committed
        diagnoses = [
            e for e in events
            if type(e.event).__name__ == "DiagnosisEvent"
        ]
        assert diagnoses
        assert fleet.bundles_committed == len(diagnoses)
        assert len(committed_dirs(incidents)) == len(diagnoses)

    def test_manifest_contents(self, committed):
        _, _, _, incidents, _ = committed
        bundle = load_bundle(committed_dirs(incidents)[0])
        manifest = bundle.manifest
        assert manifest["format"] == BUNDLE_FORMAT
        assert manifest["bundle_id"].startswith("inc-")
        assert manifest["cause"] == "disk_hog"
        assert manifest["matched"] is True
        assert manifest["request_id"].startswith("req-")
        assert manifest["model_revision"] == 0  # adopted, never published
        assert manifest["window_sha256"]
        # every listed file actually exists
        for name in manifest["files"]:
            assert (bundle.path / name).is_file(), name
        # the evidence files are all present
        for required in (
            "flight.json", "window.json", "report.json",
            "explain.txt", "explain.json", "environment.json",
        ):
            assert required in manifest["files"]

    def test_flight_ring_carries_request_ids_and_transitions(
        self, committed
    ):
        _, _, _, incidents, _ = committed
        flight = load_bundle(committed_dirs(incidents)[0]).load_flight()
        assert flight.ticks
        assert all(r.request_id.startswith("req-") for r in flight.ticks)
        # the lane alarmed (entered collection) and diagnosed (entered
        # cool-down) before the bundle was cut
        arcs = {(t.src, t.dst) for t in flight.transitions}
        assert ("monitoring", "collecting") in arcs
        assert ("collecting", "cooldown") in arcs

    def test_commit_is_idempotent(self, committed):
        fleet, pipe, _, incidents, events = committed
        before = committed_dirs(incidents)
        diagnosis = next(
            e for e in events
            if type(e.event).__name__ == "DiagnosisEvent"
        )
        bundle = load_bundle(incidents / _id_of(diagnosis, incidents))
        # marker file: a re-commit must not rewrite the directory
        marker = bundle.path / "explain.txt"
        original = marker.read_text(encoding="utf-8")
        again = commit_bundle(
            incidents,
            pipe,
            diagnosis.context,
            diagnosis.event,
            bundle.load_flight(),
            request_id="different-request",
        )
        assert again.path == bundle.path
        assert again.bundle_id == bundle.bundle_id
        assert committed_dirs(incidents) == before
        assert marker.read_text(encoding="utf-8") == original

    def test_commit_requires_window(self, committed, tmp_path):
        _, pipe, contexts, _, _ = committed
        event = DiagnosisEvent(
            tick=9,
            alarm_tick=6,
            inference=InferenceResult(
                causes=[], violations=np.zeros(2, dtype=bool)
            ),
            window=None,
        )
        snapshot = FlightRecorder(contexts[0]).snapshot()
        with pytest.raises(ValueError, match="window"):
            commit_bundle(
                tmp_path / "other", pipe, contexts[0], event, snapshot
            )

    def test_manifest_is_the_commit_point(self, tmp_path):
        aborted = tmp_path / "incidents" / "inc-deadbeef0000"
        aborted.mkdir(parents=True)
        (aborted / "window.json").write_text("{}", encoding="utf-8")
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            load_bundle(aborted)

    def test_unknown_format_is_rejected(self, committed):
        _, _, _, incidents, _ = committed
        path = committed_dirs(incidents)[0]
        manifest_path = path / BUNDLE_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format"] = BUNDLE_FORMAT + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="format"):
            load_bundle(path)


def _id_of(fleet_event, incidents: Path) -> str:
    """The committed dir of one diagnosis (via its retained record)."""
    for path in committed_dirs(incidents):
        manifest = json.loads(
            (path / BUNDLE_MANIFEST).read_text(encoding="utf-8")
        )
        if (
            manifest["context"]["node_id"]
            == fleet_event.context.node_id
            and manifest["alarm_tick"] == fleet_event.event.alarm_tick
        ):
            return path.name
    raise AssertionError("no committed bundle for the diagnosis")


class TestReplay:
    def test_replay_reproduces_byte_for_byte_twice(self, committed):
        _, _, _, incidents, _ = committed
        for path in committed_dirs(incidents)[:2]:
            result = replay_bundle(path)  # two passes by default
            assert result.ok, result.mismatches
            assert result.passes == 2
            assert result.causes_match
            assert result.explain_match
            assert result.verdicts_checked > 0
            assert result.verdicts_match
            assert "REPRODUCED" in result.render_text()
            # replay of the replay: still byte-identical
            assert replay_bundle(path).ok

    def test_replay_result_json_shape(self, committed):
        _, _, _, incidents, _ = committed
        doc = replay_bundle(committed_dirs(incidents)[0]).to_json()
        assert doc["ok"] is True
        assert doc["passes"] == 2
        assert doc["mismatches"] == []
        assert doc["context"].startswith("wordcount@")

    def test_replay_detects_tampered_explain(self, committed):
        _, _, _, incidents, _ = committed
        path = committed_dirs(incidents)[0]
        explain = path / "explain.txt"
        explain.write_text(
            explain.read_text(encoding="utf-8").replace(
                "disk_hog", "net_hog"
            ),
            encoding="utf-8",
        )
        result = replay_bundle(path)
        assert not result.ok
        assert not result.explain_match
        assert result.causes_match  # only the report was edited
        assert "DIVERGED" in result.render_text()

    def test_replay_detects_tampered_window(self, committed):
        _, _, _, incidents, _ = committed
        path = committed_dirs(incidents)[0]
        window_path = path / "window.json"
        doc = json.loads(window_path.read_text(encoding="utf-8"))
        doc["window"][0][0] += 1.0
        window_path.write_text(json.dumps(doc), encoding="utf-8")
        result = replay_bundle(path)
        assert not result.ok
        assert any("window bytes" in m for m in result.mismatches)

    def test_replay_validates_passes(self, committed):
        _, _, _, incidents, _ = committed
        with pytest.raises(ValueError, match="passes"):
            replay_bundle(committed_dirs(incidents)[0], passes=0)

    def test_replay_missing_bundle(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            replay_bundle(tmp_path / "nope")

"""Tests for the drift watchdog: each check, ok→warn flips, determinism."""

import json

import numpy as np
import pytest

from repro.core.signatures import SignatureDatabase
from repro.obs.health import (
    OK,
    SKIP,
    WARN,
    CHECK_NAMES,
    HealthThresholds,
    score_context,
    score_store,
)
from repro.obs.ledger import RunLedger
from repro.store import ContextModels, MemoryStore

KEY = ("wordcount", "slave-1")


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "ledger.jsonl")


def train_entry(
    ledger,
    p90=0.10,
    spreads=(0.05, 0.10),
    timings=None,
    key=KEY,
):
    ledger.append(
        "train",
        context=key,
        runs=8,
        invariants=len(spreads),
        residual_summary={
            "count": 100, "mean": p90 * 0.5, "p50": p90 * 0.5,
            "p90": p90, "max": p90 * 1.4,
        },
        invariant_spread=list(spreads),
        stage_timings=timings or {"pipeline.train_from_runs": 1.0},
    )


def diagnose_entry(ledger, p90=0.10, timings=None, key=KEY):
    ledger.append(
        "diagnose",
        context=key,
        detected=False,
        residual_summary={
            "count": 60, "mean": p90 * 0.5, "p50": p90 * 0.5,
            "p90": p90, "max": p90 * 1.3,
        },
        stage_timings=timings or {"pipeline.diagnose_run": 0.05},
    )


def models_with_signatures(*tuples_by_problem):
    database = SignatureDatabase()
    for problem, violations in tuples_by_problem:
        database.add(np.asarray(violations, dtype=bool), problem)
    return ContextModels(database=database)


class TestResidualDrift:
    def check(self, ledger, models=None):
        return score_context(KEY, models, ledger).check("residual-drift")

    def test_steady_residuals_ok(self, ledger):
        train_entry(ledger, p90=0.10)
        for _ in range(3):
            diagnose_entry(ledger, p90=0.11)
        result = self.check(ledger)
        assert result.status == OK
        assert result.value == pytest.approx(1.1)

    def test_drifted_residuals_flip_to_warn(self, ledger):
        train_entry(ledger, p90=0.10)
        result_before = self.check(ledger)
        for _ in range(3):
            diagnose_entry(ledger, p90=0.20)  # 2x the training level
        result_after = self.check(ledger)
        assert result_before.status == SKIP  # no diagnosed runs yet
        assert result_after.status == WARN
        assert result_after.value == pytest.approx(2.0)

    def test_median_over_window_resists_one_outlier(self, ledger):
        train_entry(ledger, p90=0.10)
        for _ in range(4):
            diagnose_entry(ledger, p90=0.10)
        diagnose_entry(ledger, p90=0.50)  # one faulty run, not drift
        assert self.check(ledger).status == OK

    def test_skips_without_training_summary(self, ledger):
        diagnose_entry(ledger, p90=0.2)
        assert self.check(ledger).status == SKIP


class TestFragileInvariants:
    def check(self, ledger):
        return score_context(KEY, None, ledger).check("fragile-invariants")

    def test_comfortable_spreads_ok(self, ledger):
        train_entry(ledger, spreads=(0.05, 0.10, 0.15))
        result = self.check(ledger)
        assert result.status == OK
        assert result.value == 0.0

    def test_spread_near_tau_flips_to_warn(self, ledger):
        # tau=0.2, margin=0.02: a pair at 0.19 is one noisy run from
        # flipping out of the invariant set.
        train_entry(ledger, spreads=(0.05, 0.19))
        result = self.check(ledger)
        assert result.status == WARN
        assert result.value == 1.0

    def test_margin_is_configurable(self, ledger):
        train_entry(ledger, spreads=(0.15,))
        t = HealthThresholds(fragility_margin=0.06)
        result = score_context(KEY, None, ledger, t).check(
            "fragile-invariants"
        )
        assert result.status == WARN

    def test_skips_without_spreads(self, ledger):
        ledger.append("train", context=KEY, runs=8)
        assert self.check(ledger).status == SKIP


class TestAmbiguousSignatures:
    def check(self, models, thresholds=None):
        return score_context(KEY, models, None, thresholds).check(
            "ambiguous-signatures"
        )

    def test_distinct_signatures_ok(self):
        models = models_with_signatures(
            ("CPU-hog", [1, 1, 0, 0, 0, 0, 0, 0]),
            ("Mem-hog", [0, 0, 0, 0, 0, 0, 1, 1]),
        )
        result = self.check(models)
        assert result.status == OK
        assert result.value == pytest.approx(0.5)

    def test_near_duplicate_flips_to_warn(self):
        # The paper's Net-drop/Net-delay conflict: tuples differing in
        # nothing at all are indistinguishable to the ranker.
        models = models_with_signatures(
            ("Net-drop", [1, 1, 1, 0, 0, 0, 0, 0]),
            ("Net-delay", [1, 1, 1, 0, 0, 0, 0, 0]),
        )
        result = self.check(models)
        assert result.status == WARN
        assert result.value == 0.0
        assert "Net-delay" in result.detail and "Net-drop" in result.detail

    def test_same_problem_pairs_do_not_conflict(self):
        models = models_with_signatures(
            ("CPU-hog", [1, 1, 0, 0]),
            ("CPU-hog", [1, 1, 0, 1]),  # a second CPU-hog signature
            ("Mem-hog", [0, 0, 1, 1]),
        )
        assert self.check(models).status == OK

    def test_skips_with_fewer_than_two_problems(self):
        assert self.check(models_with_signatures()).status == SKIP
        one = models_with_signatures(("CPU-hog", [1, 0]))
        assert self.check(one).status == SKIP
        assert self.check(None).status == SKIP


class TestStaleness:
    def check(self, ledger, thresholds=None):
        return score_context(KEY, None, ledger, thresholds).check("staleness")

    def test_fresh_context_ok(self, ledger):
        train_entry(ledger)
        diagnose_entry(ledger)
        result = self.check(ledger)
        assert result.status == OK
        assert result.value == 1.0

    def test_many_runs_since_retrain_flip_to_warn(self, ledger):
        train_entry(ledger)
        t = HealthThresholds(stale_runs=3)
        for _ in range(4):
            diagnose_entry(ledger)
        assert self.check(ledger, t).status == WARN

    def test_retrain_resets_the_count(self, ledger):
        train_entry(ledger)
        t = HealthThresholds(stale_runs=3)
        for _ in range(4):
            diagnose_entry(ledger)
        train_entry(ledger)  # retrained: diagnoses before it do not count
        result = self.check(ledger, t)
        assert result.status == OK
        assert result.value == 0.0

    def test_skips_without_history(self, ledger):
        assert self.check(ledger).status == SKIP


class TestTimingRegression:
    def check(self, ledger, thresholds=None):
        return score_context(KEY, None, ledger, thresholds).check(
            "timing-regression"
        )

    def test_steady_timings_ok(self, ledger):
        for _ in range(5):
            diagnose_entry(ledger, timings={"pipeline.diagnose_run": 0.05})
        result = self.check(ledger)
        assert result.status == OK
        assert result.value == pytest.approx(1.0)

    def test_regressed_stage_flips_to_warn(self, ledger):
        for _ in range(5):
            diagnose_entry(ledger, timings={"pipeline.diagnose_run": 0.05})
        diagnose_entry(ledger, timings={"pipeline.diagnose_run": 0.50})
        result = self.check(ledger)
        assert result.status == WARN
        assert "pipeline.diagnose_run" in result.detail

    def test_min_delta_guards_microsecond_stages(self, ledger):
        # 10x regression but only 0.9 ms absolute: below timing_min_delta,
        # so the check must not flap.
        for _ in range(5):
            diagnose_entry(ledger, timings={"store.load": 0.0001})
        diagnose_entry(ledger, timings={"store.load": 0.001})
        assert self.check(ledger).status == OK

    def test_skips_with_short_history(self, ledger):
        for _ in range(3):
            diagnose_entry(ledger)
        assert self.check(ledger).status == SKIP

    def test_new_stage_without_baseline_ignored(self, ledger):
        for _ in range(4):
            diagnose_entry(ledger, timings={"pipeline.diagnose_run": 0.05})
        diagnose_entry(
            ledger,
            timings={"pipeline.diagnose_run": 0.05, "pipeline.infer": 9.0},
        )
        assert self.check(ledger).status == OK


class TestScoring:
    def test_every_check_present_in_fixed_order(self, ledger):
        health = score_context(KEY, None, ledger)
        assert tuple(c.name for c in health.checks) == CHECK_NAMES

    def test_all_skip_context(self, ledger):
        health = score_context(KEY, None, ledger)
        assert health.status == SKIP
        assert health.score == 1.0

    def test_score_is_fraction_of_decidable_checks(self, ledger):
        train_entry(ledger, p90=0.10, spreads=(0.19,))  # fragile
        for _ in range(3):
            diagnose_entry(ledger, p90=0.10)
        health = score_context(KEY, None, ledger)
        # drift ok, fragile warn, ambiguity skip (no models), staleness
        # ok, timing ok (no stage has a 3-run baseline yet, so nothing
        # regressed) → 3 ok of 4 decidable.
        assert health.status == WARN
        assert health.score == pytest.approx(3 / 4)

    def test_score_store_unions_store_and_ledger_contexts(self, ledger):
        store = MemoryStore()
        store.adopt(("wc", "n1"), models_with_signatures())
        train_entry(ledger, key=("wc", "n2"))  # history but no models
        report = score_store(store, ledger=ledger)
        assert [tuple(c.key) for c in report.contexts] == [
            ("wc", "n1"), ("wc", "n2"),
        ]
        assert report.ledger_entries == 1

    def test_report_json_and_text_deterministic(self, ledger):
        store = MemoryStore()
        store.adopt(
            KEY,
            models_with_signatures(
                ("CPU-hog", [1, 1, 0, 0]), ("Mem-hog", [0, 0, 1, 1])
            ),
        )
        train_entry(ledger, spreads=(0.19, 0.05))
        for _ in range(3):
            diagnose_entry(ledger, p90=0.25)

        def render():
            report = score_store(store, ledger=ledger)
            return (
                json.dumps(report.to_json(), sort_keys=True),
                report.render_text(),
            )

        assert render() == render()
        as_json, as_text = render()
        parsed = json.loads(as_json)
        assert parsed["warnings"] == 2  # drift + fragility
        assert "residual-drift" in as_text
        assert "thresholds" in parsed

    def test_worst_of_status(self):
        health = score_context(
            KEY,
            models_with_signatures(
                ("A", [1, 0, 0, 0]), ("B", [1, 0, 0, 1])
            ),
            None,
        )
        # ambiguity decidable (distance 0.25 > floor → ok), rest skip.
        assert health.status == OK
        assert health.score == 1.0

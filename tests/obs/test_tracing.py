"""Tests for the span tracer: fake clock, nesting, no-op fast path."""

import time

import pytest

from repro.obs.tracing import NOOP_SPAN, Tracer, render_spans


class FakeClock:
    """Deterministic monotonic clock: every read advances by ``step``."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestNoopPath:
    def test_disabled_returns_the_singleton(self):
        tracer = Tracer()
        assert tracer.span("x") is NOOP_SPAN
        assert tracer.span("y") is NOOP_SPAN

    def test_noop_span_is_falsy_and_inert(self):
        with NOOP_SPAN as sp:
            assert not sp
            assert sp.set(a=1) is sp
        assert NOOP_SPAN.duration is None
        assert NOOP_SPAN.attributes == {}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert tracer.roots() == []

    def test_max_finished_validated(self):
        with pytest.raises(ValueError, match="max_finished"):
            Tracer(max_finished=0)


class TestSpans:
    def test_duration_from_injected_clock(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=1.0))
        with tracer.span("work") as sp:
            pass
        assert sp.duration == 1.0

    def test_open_span_has_no_duration(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        sp = tracer.span("open")
        sp.__enter__()
        assert sp.duration is None
        sp.__exit__(None, None, None)
        assert sp.duration is not None

    def test_nesting_builds_a_tree(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                inner.set(k=1)
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attributes == {"k": 1}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (root,) = tracer.roots()
        assert root.attributes["error"] == "ValueError"
        assert root.duration is not None

    def test_find_and_total(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=1.0))
        for _ in range(3):
            with tracer.span("stage"):
                pass
        assert len(tracer.find("stage")) == 3
        assert tracer.total("stage") == 3.0

    def test_max_finished_bounds_memory(self):
        tracer = Tracer(enabled=True, clock=FakeClock(), max_finished=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s3", "s4"]

    def test_walk_and_to_dict(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        (root,) = tracer.roots()
        assert [s.name for s in root.walk()] == ["a", "b"]
        d = root.to_dict()
        assert d["name"] == "a"
        assert d["children"][0]["name"] == "b"

    def test_reset_drops_finished(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots() == []

    def test_traced_decorator(self):
        tracer = Tracer(enabled=True, clock=FakeClock())

        @tracer.traced("fn")
        def double(x):
            return 2 * x

        assert double(3) == 6
        assert len(tracer.find("fn")) == 1
        tracer.enabled = False
        assert double(4) == 8
        assert len(tracer.find("fn")) == 1

    def test_traced_preserves_function_metadata(self):
        """Regression: the hand-rolled attribute copy dropped
        ``__qualname__``, ``__module__`` and ``__dict__``; ``traced`` must
        behave like ``functools.wraps``."""
        tracer = Tracer()

        def original(x):
            """Docs survive wrapping."""
            return x

        original.marker = "kept"
        wrapped = tracer.traced("fn")(original)
        assert wrapped.__name__ == "original"
        assert wrapped.__qualname__ == original.__qualname__
        assert "test_traced_preserves_function_metadata" in wrapped.__qualname__
        assert wrapped.__module__ == original.__module__
        assert wrapped.__doc__ == "Docs survive wrapping."
        assert wrapped.__wrapped__ is original
        assert wrapped.marker == "kept"

    def test_discard_removes_one_root(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("keep"):
            pass
        with tracer.span("drop") as dropped:
            pass
        tracer.discard(dropped)
        assert [s.name for s in tracer.roots()] == ["keep"]
        tracer.discard(dropped)  # absent span: no-op, no error
        assert [s.name for s in tracer.roots()] == ["keep"]


class TestRender:
    def test_indents_and_sorts_attributes(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=0.001))
        with tracer.span("outer") as sp:
            sp.set(b=2, a=1)
            with tracer.span("inner"):
                pass
        lines = render_spans(tracer.roots()).splitlines()
        assert lines[0] == "     3.000 ms  outer  [a=1 b=2]"
        assert lines[1] == "     1.000 ms    inner"


class TestWallClockAgreement:
    def test_span_matches_perf_counter_within_5_percent(self):
        """Table 1 stage timings moved from ad-hoc ``perf_counter`` pairs
        to spans; the two sources must agree (acceptance: within 5%)."""
        tracer = Tracer(enabled=True)
        t0 = time.perf_counter()
        with tracer.span("stage") as sp:
            deadline = time.perf_counter() + 0.02
            while time.perf_counter() < deadline:
                pass
        elapsed = time.perf_counter() - t0
        assert sp.duration is not None
        assert sp.duration <= elapsed
        assert sp.duration >= 0.95 * elapsed

"""Tests for the metrics registry and its JSON / Prometheus exports."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("jobs_total", "Jobs", ("kind",))
        c.inc(kind="a")
        c.inc(2.0, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3.0
        assert c.value(kind="b") == 1.0

    def test_unlabelled_series(self, registry):
        c = registry.counter("hits_total", "Hits")
        c.inc()
        assert c.value() == 1.0

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("x_total", "", ("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(other="a")

    def test_disabled_writes_are_noops(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "")
        c.inc()
        c.series().inc(5.0)
        assert c.value() == 0.0

    def test_series_handle_is_cached(self, registry):
        c = registry.counter("x_total", "", ("k",))
        assert c.series(k="v") is c.series(k="v")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "")
        g.set(5.0)
        series = g.series()
        series.inc(2.0)
        series.dec()
        assert g.value() == 6.0


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        h = registry.histogram("lat", "", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(3.0)
        series = h.series()
        assert series.counts == [1, 1, 1]
        assert series.count == 3
        assert series.sum == pytest.approx(3.55)

    def test_needs_at_least_one_bucket(self, registry):
        with pytest.raises(ValueError, match="bucket"):
            registry.histogram("h", "", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        assert registry.counter("x_total", "") is registry.counter("x_total", "")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total", "")
        with pytest.raises(ValueError, match="already registered as"):
            registry.histogram("x_total", "")

    def test_label_conflict_rejected(self, registry):
        registry.counter("x_total", "", ("a",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x_total", "", ("b",))

    def test_reset_drops_families(self, registry):
        registry.counter("x_total", "").inc()
        registry.reset()
        assert registry.families() == []
        assert registry.render_prometheus() == ""


class TestExports:
    def test_json_round_trips(self, registry):
        registry.counter("jobs_total", "Jobs", ("kind",)).inc(kind="a")
        h = registry.histogram("lat_seconds", "Latency", buckets=(0.5,))
        h.observe(0.1)
        data = json.loads(json.dumps(registry.to_json()))
        assert data["jobs_total"]["type"] == "counter"
        assert data["jobs_total"]["series"] == [
            {"labels": {"kind": "a"}, "value": 1.0}
        ]
        hist = data["lat_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.1)
        assert hist["buckets"] == [
            {"le": 0.5, "count": 1},
            {"le": "+Inf", "count": 1},
        ]

    def test_prometheus_snapshot(self, registry):
        registry.counter(
            "invarnetx_alarms_total", "Alarms raised", ("context",)
        ).inc(context="wordcount@slave-1")
        h = registry.histogram(
            "invarnetx_inference_seconds",
            "Inference latency",
            ("context",),
            buckets=(0.1, 1.0),
        )
        h.observe(0.05, context="wordcount@slave-1")
        h.observe(2.0, context="wordcount@slave-1")
        expected = "\n".join(
            [
                "# HELP invarnetx_alarms_total Alarms raised",
                "# TYPE invarnetx_alarms_total counter",
                'invarnetx_alarms_total{context="wordcount@slave-1"} 1',
                "# HELP invarnetx_inference_seconds Inference latency",
                "# TYPE invarnetx_inference_seconds histogram",
                'invarnetx_inference_seconds_bucket{context="wordcount@slave-1",le="0.1"} 1',
                'invarnetx_inference_seconds_bucket{context="wordcount@slave-1",le="1"} 1',
                'invarnetx_inference_seconds_bucket{context="wordcount@slave-1",le="+Inf"} 2',
                'invarnetx_inference_seconds_sum{context="wordcount@slave-1"} 2.05',
                'invarnetx_inference_seconds_count{context="wordcount@slave-1"} 2',
                "",
            ]
        )
        assert registry.render_prometheus() == expected

    def test_label_values_escaped(self, registry):
        c = registry.counter("x_total", "", ("k",))
        c.inc(k='a"b\\c\nd')
        assert 'k="a\\"b\\\\c\\nd"' in registry.render_prometheus()

"""Tests for the pipeline's less-travelled paths."""

import numpy as np
import pytest

from repro.faults.spec import FaultSpec, build_fault


class TestSignatureTrainingFallback:
    def test_undetected_training_run_falls_back_to_fault_window(
        self, cluster, trained_pipeline, wordcount_context
    ):
        """An operator investigating a known problem has the injection
        window even when the detector missed it; signature training must
        use it rather than fail."""
        # intensity 0.2 sits below the detection boundary
        fault = build_fault(
            "CPU-hog", FaultSpec("slave-1", 30, 30, intensity=0.2)
        )
        run = cluster.run("wordcount", faults=[fault], seed=8860)
        report = trained_pipeline.detect(
            wordcount_context, run.node("slave-1").cpi
        )
        assert not report.problem_detected  # precondition
        violations = trained_pipeline.train_signature_from_run(
            wordcount_context, "Faint-hog", run
        )
        assert violations is not None
        assert violations.dtype == bool

    def test_undetected_run_without_fault_window_returns_none(
        self, cluster, trained_pipeline, wordcount_context
    ):
        run = cluster.run("wordcount", seed=8861)  # healthy, no window
        result = trained_pipeline.train_signature_from_run(
            wordcount_context, "ghost", run
        )
        assert result is None
        assert "ghost" not in trained_pipeline._slot(
            wordcount_context
        ).database.problems

    def test_top_k_controls_cause_list_length(
        self, cluster, trained_pipeline, wordcount_context
    ):
        fault = build_fault("CPU-hog", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=8862)
        result = trained_pipeline.diagnose_run(
            wordcount_context, run, top_k=2
        )
        assert result.inference is not None
        assert len(result.inference.causes) == 2


class TestAssociationMatrixEdges:
    def test_run_association_matrix_rejects_tiny_run(
        self, trained_pipeline
    ):
        with pytest.raises(ValueError, match="too short"):
            trained_pipeline.run_association_matrix(np.zeros((10, 26)))

    def test_window_and_run_matrices_agree_on_strong_pairs(
        self, cluster, trained_pipeline
    ):
        """The run-average matrix is the mean of window matrices, so a
        pair at the MIC ceiling in every window stays at the ceiling."""
        run = cluster.run("wordcount", seed=8863)
        metrics = run.node("slave-1").metrics
        run_matrix = trained_pipeline.run_association_matrix(metrics)
        # disk_read_kbs vs disk_read_ops is a fixed ratio + tiny noise
        assert run_matrix.score("disk_read_kbs", "disk_read_ops") > 0.85

"""Unit tests for the operation context."""

import pytest

from repro.core.context import GLOBAL_CONTEXT, OperationContext


class TestOperationContext:
    def test_key(self):
        ctx = OperationContext("wordcount", "slave-1", "10.0.0.11")
        assert ctx.key() == ("wordcount", "slave-1")

    def test_str(self):
        assert str(OperationContext("sort", "slave-2")) == "sort@slave-2"

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            OperationContext("", "slave-1")

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            OperationContext("sort", "")

    def test_frozen(self):
        ctx = OperationContext("sort", "slave-1")
        with pytest.raises(AttributeError):
            ctx.workload = "grep"

    def test_hashable_and_equal(self):
        a = OperationContext("sort", "slave-1", "ip")
        b = OperationContext("sort", "slave-1", "ip")
        assert a == b
        assert hash(a) == hash(b)

    def test_global_sentinel(self):
        assert GLOBAL_CONTEXT.key() == ("*", "*")

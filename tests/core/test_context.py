"""Unit tests for the operation context."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.context import GLOBAL_CONTEXT, OperationContext


class TestOperationContext:
    def test_key(self):
        ctx = OperationContext("wordcount", "slave-1", "10.0.0.11")
        assert ctx.key() == ("wordcount", "slave-1")

    def test_str(self):
        assert str(OperationContext("sort", "slave-2")) == "sort@slave-2"

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            OperationContext("", "slave-1")

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            OperationContext("sort", "")

    def test_frozen(self):
        ctx = OperationContext("sort", "slave-1")
        with pytest.raises(AttributeError):
            ctx.workload = "grep"

    def test_hashable_and_equal(self):
        a = OperationContext("sort", "slave-1", "ip")
        b = OperationContext("sort", "slave-1", "ip")
        assert a == b
        assert hash(a) == hash(b)

    def test_global_sentinel(self):
        assert GLOBAL_CONTEXT.key() == ("*", "*")

    def test_key_stable_across_calls_and_instances(self):
        a = OperationContext("wordcount", "slave-1", "10.0.0.11")
        b = OperationContext("wordcount", "slave-1", "10.0.0.99")
        # key() ignores the ip on purpose: the paper scopes models by
        # (workload type, node), and the address is carried metadata.
        assert a.key() == a.key() == b.key()

    def test_key_usable_as_dict_key(self):
        models = {}
        ctx = OperationContext("sort", "slave-2")
        models[ctx.key()] = "model"
        assert models[OperationContext("sort", "slave-2", "ip").key()] == (
            "model"
        )

    def test_ordering(self):
        a = OperationContext("grep", "slave-1")
        b = OperationContext("grep", "slave-2")
        c = OperationContext("sort", "slave-1")
        assert sorted([c, b, a]) == [a, b, c]

    def test_global_context_ablation_path(self):
        """use_operation_context=False collapses every context onto the
        GLOBAL_CONTEXT slot (paper Figs. 9/10 ablation)."""
        from repro.core.pipeline import InvarNetX, InvarNetXConfig

        ablated = InvarNetX(InvarNetXConfig(use_operation_context=False))
        a = OperationContext("wordcount", "slave-1")
        b = OperationContext("sort", "slave-4")
        assert ablated._key(a) == ablated._key(b) == GLOBAL_CONTEXT.key()
        scoped = InvarNetX()
        assert scoped._key(a) == a.key()
        assert scoped._key(a) != scoped._key(b)


_context_fields = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=12,
)


class TestKeyInjectivity:
    @given(
        w1=_context_fields,
        n1=_context_fields,
        w2=_context_fields,
        n2=_context_fields,
    )
    def test_key_injective_over_distinct_contexts(self, w1, n1, w2, n2):
        a = OperationContext(w1, n1)
        b = OperationContext(w2, n2)
        if (w1, n1) != (w2, n2):
            assert a.key() != b.key()
        else:
            assert a.key() == b.key()

    @given(w=_context_fields, n=_context_fields)
    def test_key_roundtrips_fields(self, w, n):
        assert OperationContext(w, n).key() == (w, n)

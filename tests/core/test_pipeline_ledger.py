"""Integration tests: the pipeline's run-ledger trail.

A pipeline over a :class:`DirectoryStore` records every train /
signature / diagnose pass into the store's colocated ledger; a
:class:`MemoryStore` pipeline records nothing unless handed an explicit
:class:`RunLedger`.  These tests drive the real pipeline end to end and
read the trail back.
"""

import pytest

import repro.obs as obs
from repro.core import InvarNetX, OperationContext
from repro.core.orchestrator import ClusterDiagnoser
from repro.faults.spec import FaultSpec, build_fault
from repro.obs.ledger import RunLedger
from repro.store import DirectoryStore, MemoryStore

WORKLOAD = "grep"
NODE = "slave-1"


@pytest.fixture(scope="module")
def grep_runs(cluster):
    return [cluster.run(WORKLOAD, seed=300 + i) for i in range(6)]


@pytest.fixture(scope="module")
def faulty_run(cluster):
    fault = build_fault("CPU-hog", FaultSpec(NODE, 30, 30))
    return cluster.run(WORKLOAD, faults=[fault], seed=400)


@pytest.fixture(scope="module")
def healthy_run(cluster):
    return cluster.run(WORKLOAD, seed=402)


@pytest.fixture(scope="module")
def grep_context(cluster):
    return OperationContext(WORKLOAD, NODE, cluster.ip_of(NODE))


@pytest.fixture(scope="module")
def ledgered(
    tmp_path_factory, cluster, grep_runs, faulty_run, healthy_run,
    grep_context,
):
    """A trained DirectoryStore pipeline with a full ledger trail:
    train, one signature, one faulty diagnosis, one healthy one."""
    store = DirectoryStore(tmp_path_factory.mktemp("registry"))
    pipe = InvarNetX(store=store)
    pipe.train_from_runs(grep_context, grep_runs)
    pipe.train_signature_from_run(grep_context, "CPU-hog", faulty_run)
    pipe.diagnose_run(grep_context, faulty_run)
    pipe.diagnose_run(grep_context, healthy_run)
    return pipe


class TestActivationPolicy:
    def test_directory_store_gets_colocated_ledger(self, tmp_path):
        store = DirectoryStore(tmp_path)
        pipe = InvarNetX(store=store)
        assert isinstance(pipe.ledger, RunLedger)
        assert pipe.ledger.path == store.ledger_path
        assert pipe.ledger is store.ledger()  # one shared handle

    def test_memory_store_defaults_to_no_ledger(self):
        assert InvarNetX().ledger is None
        assert InvarNetX(store=MemoryStore()).ledger is None

    def test_ledger_true_requires_a_colocated_ledger(self):
        with pytest.raises(ValueError, match="colocated ledger"):
            InvarNetX(store=MemoryStore(), ledger=True)

    def test_ledger_false_disables_recording(
        self, tmp_path, cluster, grep_runs, grep_context
    ):
        store = DirectoryStore(tmp_path)
        pipe = InvarNetX(store=store, ledger=False)
        assert pipe.ledger is None
        pipe.train_from_runs(grep_context, grep_runs)
        assert not store.ledger_path.exists()

    def test_explicit_ledger_wins_over_store_default(self, tmp_path):
        elsewhere = RunLedger(tmp_path / "elsewhere.jsonl")
        pipe = InvarNetX(
            store=DirectoryStore(tmp_path / "reg"), ledger=elsewhere
        )
        assert pipe.ledger is elsewhere


class TestRecordedTrail:
    def test_train_entry(self, ledgered, grep_context):
        entry = ledgered.ledger.last(kind="train")
        assert entry["context"] == list(grep_context.key())
        assert entry["fingerprint"] == ledgered.fingerprint
        assert entry["runs"] == 6
        assert entry["invariants"] > 0
        assert entry["residual_summary"]["count"] > 0
        assert entry["residual_summary"]["p90"] > 0
        assert len(entry["invariant_spread"]) == entry["invariants"]
        assert all(0 <= s < 0.2 for s in entry["invariant_spread"])
        assert entry["stage_timings"]["pipeline.train_from_runs"] > 0

    def test_signature_entry(self, ledgered):
        entry = ledgered.ledger.last(kind="signature")
        assert entry["problem"] == "CPU-hog"
        assert 0 < entry["violated"] <= entry["tuple_length"]

    def test_diagnose_entries(self, ledgered):
        faulty, healthy = ledgered.ledger.entries(kind="diagnose")
        assert faulty["detected"] is True
        assert faulty["first_problem_tick"] is not None
        assert faulty["top_cause"] == "CPU-hog"
        assert 0 < faulty["top_score"] <= 1
        assert healthy["detected"] is False
        assert healthy["first_problem_tick"] is None
        assert "top_cause" not in healthy
        # Both summarise normal-regime residuals for the drift watchdog.
        for entry in (faulty, healthy):
            assert entry["residual_summary"]["count"] > 0
            assert entry["stage_timings"]["pipeline.diagnose_run"] > 0

    def test_seq_orders_the_whole_trail(self, ledgered):
        entries = ledgered.ledger.entries()
        kinds = [e["kind"] for e in entries]
        assert kinds == ["train", "signature", "diagnose", "diagnose"]
        assert [e["seq"] for e in entries] == [1, 2, 3, 4]

    def test_borrowed_tracer_left_disabled_and_empty(
        self, ledgered, healthy_run, grep_context
    ):
        """Ledger stage timings borrow the process tracer; the user-facing
        trace state must come back exactly as configured (off, no spans
        retained)."""
        tracer = obs.tracer()
        assert not tracer.enabled
        before = len(tracer.roots())
        ledgered.diagnose_run(grep_context, healthy_run)
        assert not tracer.enabled
        assert len(tracer.roots()) == before

    def test_no_metrics_snapshot_when_obs_disabled(self, ledgered):
        assert all("metrics" not in e for e in ledgered.ledger.entries())


class TestWarmRestart:
    def test_attached_pipeline_continues_the_history(
        self, ledgered, healthy_run, grep_context
    ):
        store = DirectoryStore(ledgered.ledger.path.parent)
        warm = InvarNetX.attached_to(store)
        assert warm.ledger is not None
        previous = warm.ledger.entries()
        assert [e["seq"] for e in previous] == list(
            range(1, len(previous) + 1)
        )
        assert previous[0]["kind"] == "train"
        result = warm.diagnose_run(grep_context, healthy_run)
        assert not result.detected
        latest = warm.ledger.last()
        assert latest["kind"] == "diagnose"
        assert latest["seq"] == previous[-1]["seq"] + 1

    def test_memory_store_with_explicit_ledger_records(
        self, tmp_path, grep_runs, grep_context
    ):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        pipe = InvarNetX(store=MemoryStore(), ledger=ledger)
        pipe.train_from_runs(grep_context, grep_runs)
        entry = ledger.last(kind="train")
        assert entry is not None
        assert entry["context"] == list(grep_context.key())


class TestClusterDiagnoser:
    def test_cluster_diagnosis_appends_an_entry(
        self, tmp_path, grep_runs, faulty_run
    ):
        store = DirectoryStore(tmp_path)
        diagnoser = ClusterDiagnoser(store=store, node_ids=[NODE])
        diagnoser.train(grep_runs)
        diagnoser.train_signature("CPU-hog", faulty_run, NODE)
        out = diagnoser.diagnose(faulty_run)
        entry = diagnoser.pipeline.ledger.last(kind="cluster-diagnose")
        assert entry["workload"] == WORKLOAD
        assert entry["nodes"] == 1
        assert entry["faulty_nodes"] == [NODE]
        assert entry["verdict"] == [NODE, "CPU-hog"]
        assert entry["fingerprint"] == diagnoser.pipeline.fingerprint
        assert out.faulty_nodes == [NODE]

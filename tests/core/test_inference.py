"""Unit tests for the cause-inference engine."""

import numpy as np
import pytest

from repro.core.inference import CauseInferenceEngine
from repro.core.invariants import AssociationMatrix, InvariantSet
from repro.core.signatures import SignatureDatabase
from repro.telemetry.metrics import MetricCatalog

CAT3 = MetricCatalog(names=("a", "b", "c"))


@pytest.fixture()
def invariants():
    return InvariantSet(
        pairs=[(0, 1), (0, 2), (1, 2)],
        baseline=np.array([0.9, 0.8, 0.0]),
        catalog=CAT3,
    )


@pytest.fixture()
def database():
    db = SignatureDatabase()
    db.add(np.array([True, False, False]), "CPU-hog")
    db.add(np.array([False, True, True]), "Mem-hog")
    return db


def _abnormal(ab, ac, bc):
    values = np.array([[1, ab, ac], [ab, 1, bc], [ac, bc, 1]], float)
    return AssociationMatrix(values=values, catalog=CAT3)


class TestInference:
    def test_matches_correct_cause(self, invariants, database):
        engine = CauseInferenceEngine(invariants, database)
        # break (a,b) only -> CPU-hog's signature
        result = engine.infer(_abnormal(ab=0.3, ac=0.75, bc=0.05))
        assert result.matched
        assert result.top_cause == "CPU-hog"

    def test_ranked_list_ordered(self, invariants, database):
        engine = CauseInferenceEngine(invariants, database)
        result = engine.infer(_abnormal(0.3, 0.75, 0.05), top_k=2)
        assert len(result.causes) == 2
        assert result.causes[0].score >= result.causes[1].score

    def test_hints_name_violated_pairs(self, invariants, database):
        engine = CauseInferenceEngine(invariants, database)
        result = engine.infer(_abnormal(0.3, 0.75, 0.05))
        assert ("a", "b") in result.hints

    def test_unmatched_below_similarity_floor(self, invariants, database):
        engine = CauseInferenceEngine(
            invariants, database, min_similarity=0.99
        )
        result = engine.infer(_abnormal(0.3, 0.2, 0.6))
        assert not result.matched
        assert result.top_cause is None
        assert result.hints  # operator still gets the violated pairs

    def test_empty_database_never_matches(self, invariants):
        engine = CauseInferenceEngine(invariants, SignatureDatabase())
        result = engine.infer(_abnormal(0.3, 0.75, 0.05))
        assert not result.matched
        assert result.causes == []

    def test_learn_appends_signature(self, invariants, database):
        engine = CauseInferenceEngine(invariants, database)
        before = len(database)
        violations = engine.learn(_abnormal(0.3, 0.2, 0.6), "Disk-hog")
        assert len(database) == before + 1
        assert violations.dtype == bool
        assert "Disk-hog" in database.problems

    def test_top_k_validation(self, invariants, database):
        engine = CauseInferenceEngine(invariants, database)
        with pytest.raises(ValueError):
            engine.infer(_abnormal(0.3, 0.75, 0.05), top_k=0)

    def test_min_similarity_validation(self, invariants, database):
        with pytest.raises(ValueError):
            CauseInferenceEngine(invariants, database, min_similarity=1.5)

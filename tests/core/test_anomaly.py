"""Unit tests for the ARIMA-drift anomaly detector (§3.2)."""

import numpy as np
import pytest

from repro.core.anomaly import (
    CONSECUTIVE_ANOMALIES,
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)


def _normal_trace(rng, n=120, base=1.2, noise=0.02):
    """A CPI-like stationary trace."""
    s = 0.0
    out = np.empty(n)
    for t in range(n):
        s = 0.8 * s + rng.normal(0, 0.3)
        out[t] = base * (1 + 0.05 * s) * (1 + rng.normal(0, noise))
    return out


@pytest.fixture()
def detector(rng):
    traces = [_normal_trace(rng) for _ in range(6)]
    return AnomalyDetector(order=(1, 0, 0)).train(traces)


class TestThresholdRules:
    def test_beta_max_is_default(self):
        assert AnomalyDetector().rule is ThresholdRule.BETA_MAX

    def test_beta_max_above_max_min(self, detector):
        mm = detector.calibrate(ThresholdRule.MAX_MIN)
        bm = detector.calibrate(ThresholdRule.BETA_MAX)
        assert bm.upper == pytest.approx(1.2 * mm.upper)

    def test_pct95_below_max(self, detector):
        p95 = detector.calibrate(ThresholdRule.PCT95)
        mm = detector.calibrate(ThresholdRule.MAX_MIN)
        assert p95.upper < mm.upper

    def test_max_min_has_lower_bar(self, detector):
        mm = detector.calibrate(ThresholdRule.MAX_MIN)
        assert mm.lower > 0.0
        assert mm.is_anomalous(mm.lower / 2)  # "too perfect" fit flags

    def test_other_rules_have_no_lower_bar(self, detector):
        for rule in (ThresholdRule.PCT95, ThresholdRule.BETA_MAX):
            assert detector.calibrate(rule).lower == 0.0

    def test_calibrate_requires_training(self):
        with pytest.raises(RuntimeError):
            AnomalyDetector().calibrate(ThresholdRule.BETA_MAX)

    def test_drift_threshold_rejects_negative_residual(self):
        thr = DriftThreshold(ThresholdRule.BETA_MAX, upper=1.0)
        with pytest.raises(ValueError):
            thr.is_anomalous(-0.1)


class TestDetection:
    def test_no_problem_on_normal_trace(self, detector, rng):
        report = detector.detect(_normal_trace(rng))
        assert not report.problem_detected

    def test_step_change_detected(self, detector, rng):
        trace = _normal_trace(rng)
        trace[60:] *= 1.5
        report = detector.detect(trace)
        assert report.problem_detected
        first = report.first_problem_tick()
        assert first is not None
        assert 60 <= first <= 60 + CONSECUTIVE_ANOMALIES + 2

    def test_single_spike_not_reported(self, detector, rng):
        """The three-consecutive rule suppresses isolated glitches."""
        trace = _normal_trace(rng)
        trace[50] *= 1.6
        report = detector.detect(trace)
        assert report.anomalous[50]
        assert not report.problem_detected

    def test_separated_spikes_not_reported(self, detector, rng):
        """Isolated anomalies with normal ticks between never reach the
        three-consecutive count."""
        trace = _normal_trace(rng)
        trace[40] *= 1.6
        trace[50] *= 1.6
        trace[60] *= 1.6
        assert not detector.detect(trace).problem_detected

    def test_three_consecutive_reported(self, detector, rng):
        trace = _normal_trace(rng)
        trace[50:56] *= 1.6
        report = detector.detect(trace)
        assert report.problem_detected

    def test_pct95_rule_noisier_than_beta_max(self, detector, rng):
        trace = _normal_trace(rng, n=400)
        flags95 = detector.detect(trace, rule=ThresholdRule.PCT95).anomalous
        flagsbm = detector.detect(
            trace, rule=ThresholdRule.BETA_MAX
        ).anomalous
        assert flags95.sum() >= flagsbm.sum()

    def test_detect_requires_training(self, rng):
        with pytest.raises(RuntimeError):
            AnomalyDetector().detect(_normal_trace(rng))


class TestOnlineCheck:
    def test_check_next_flags_jump(self, detector, rng):
        history = _normal_trace(rng)
        predicted = detector.model.predict_next(history)
        assert detector.check_next(history, predicted * 1.5)
        assert not detector.check_next(history, predicted)


class TestTraining:
    def test_pools_residuals_across_traces(self, rng):
        traces = [_normal_trace(rng) for _ in range(4)]
        det = AnomalyDetector(order=(1, 0, 0)).train(traces)
        assert det._train_residuals is not None
        expected = sum(t.size - 1 for t in traces)  # warmup 1 per trace
        assert det._train_residuals.size == expected

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError):
            AnomalyDetector().train([np.ones(5)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnomalyDetector().train([])

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            AnomalyDetector(beta=0.0)

    def test_order_selection_when_unspecified(self, rng):
        det = AnomalyDetector().train([_normal_trace(rng) for _ in range(3)])
        assert det.model is not None
        assert det.model.order.p + det.model.order.q >= 1 or det.model.order.d > 0

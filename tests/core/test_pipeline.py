"""Tests for the InvarNetX facade (uses session-scoped trained fixtures)."""

import numpy as np
import pytest

from repro.core import InvarNetX, InvarNetXConfig, OperationContext
from repro.core.pipeline import ABNORMAL_WINDOW_TICKS
from repro.faults.spec import FaultSpec, build_fault


class TestConfig:
    def test_paper_defaults(self):
        cfg = InvarNetXConfig()
        assert cfg.tau == 0.2
        assert cfg.epsilon == 0.2
        assert cfg.beta == 1.2
        assert cfg.use_operation_context

    def test_mic_params_propagated(self):
        cfg = InvarNetXConfig(mic_alpha=0.5, mic_clumps_factor=10)
        p = cfg.mic_params()
        assert p.alpha == 0.5
        assert p.clumps_factor == 10


class TestSliceWindows:
    def test_exact_multiple(self):
        windows = InvarNetX.slice_windows(np.zeros((90, 26)), 30)
        assert [w.shape[0] for w in windows] == [30, 30, 30]

    def test_runt_dropped(self):
        windows = InvarNetX.slice_windows(np.zeros((70, 26)), 30)
        assert [w.shape[0] for w in windows] == [30, 30]

    def test_large_runt_kept(self):
        windows = InvarNetX.slice_windows(np.zeros((85, 26)), 30)
        assert [w.shape[0] for w in windows] == [30, 30, 25]


class TestTraining:
    def test_training_registers_context(
        self, trained_pipeline, wordcount_context
    ):
        assert wordcount_context.key() in trained_pipeline.contexts()

    def test_invariants_cover_zero_pairs(
        self, trained_pipeline, wordcount_context
    ):
        inv = trained_pipeline._slot(wordcount_context).invariants
        assert inv is not None
        assert len(inv) > 50
        assert np.any(inv.baseline == 0.0)  # stable silent pairs

    def test_signature_requires_invariants(self, cluster):
        pipe = InvarNetX()
        ctx = OperationContext("sort", "slave-1")
        with pytest.raises(RuntimeError, match="invariants"):
            pipe.train_signature(ctx, "CPU-hog", np.zeros((30, 26)))

    def test_detect_requires_model(self):
        pipe = InvarNetX()
        with pytest.raises(RuntimeError, match="performance model"):
            pipe.detect(OperationContext("sort", "slave-1"), np.ones(50))


class TestDiagnosis:
    def test_normal_run_not_flagged(
        self, cluster, trained_pipeline, wordcount_context
    ):
        run = cluster.run("wordcount", seed=7777)
        result = trained_pipeline.diagnose_run(wordcount_context, run)
        assert not result.detected
        assert result.inference is None
        assert result.root_cause is None

    @pytest.mark.parametrize(
        "fault_name", ["CPU-hog", "Mem-hog", "Disk-hog", "Suspend"]
    )
    def test_trained_faults_diagnosed(
        self, cluster, trained_pipeline, wordcount_context, fault_name
    ):
        fault = build_fault(fault_name, FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=8800)
        result = trained_pipeline.diagnose_run(wordcount_context, run)
        assert result.detected
        assert result.root_cause == fault_name

    def test_extract_window_length(
        self, cluster, trained_pipeline, wordcount_context
    ):
        fault = build_fault("CPU-hog", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=8801)
        window = trained_pipeline.extract_abnormal_window(
            wordcount_context, run
        )
        assert window is not None
        assert window.shape == (ABNORMAL_WINDOW_TICKS, 26)

    def test_extract_window_none_when_healthy(
        self, cluster, trained_pipeline, wordcount_context
    ):
        run = cluster.run("wordcount", seed=7778)
        assert (
            trained_pipeline.extract_abnormal_window(wordcount_context, run)
            is None
        )

    def test_unknown_problem_reports_hints(
        self, cluster, trained_pipeline, wordcount_context
    ):
        """A fault with no stored signature still yields violated-pair
        hints (the paper's fallback for unknown problems)."""
        fault = build_fault("Net-drop", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=8802)
        result = trained_pipeline.diagnose_run(wordcount_context, run)
        assert result.detected
        assert result.inference is not None
        assert result.inference.hints  # operator clues


class TestNoOperationContext:
    def test_contexts_collapse_to_global(self, cluster):
        pipe = InvarNetX(InvarNetXConfig(use_operation_context=False))
        a = OperationContext("wordcount", "slave-1")
        b = OperationContext("sort", "slave-2")
        assert pipe._key(a) == pipe._key(b) == ("*", "*")


class TestPersistenceIntegration:
    def test_save_context_writes_three_files(
        self, tmp_path, trained_pipeline, wordcount_context
    ):
        written = trained_pipeline.save_context(wordcount_context, tmp_path)
        names = sorted(p.name for p in written)
        assert names == [
            "invariants_wordcount_slave-1.xml",
            "model_wordcount_slave-1.xml",
            "signatures_wordcount_slave-1.xml",
        ]
        for p in written:
            assert p.stat().st_size > 0

    def test_saved_artifacts_reload(
        self, tmp_path, trained_pipeline, wordcount_context
    ):
        from repro.core.persistence import (
            load_invariants,
            load_performance_model,
            load_signatures,
        )

        trained_pipeline.save_context(wordcount_context, tmp_path)
        model, thr, ctx = load_performance_model(
            tmp_path / "model_wordcount_slave-1.xml"
        )
        inv, _ = load_invariants(tmp_path / "invariants_wordcount_slave-1.xml")
        db = load_signatures(tmp_path / "signatures_wordcount_slave-1.xml")
        assert ctx == wordcount_context
        slot = trained_pipeline._slot(wordcount_context)
        assert len(inv) == len(slot.invariants)
        assert len(db) == len(slot.database)

"""Unit tests for CPI-as-KPI (§3.1)."""

import numpy as np
import pytest

from repro.core.kpi import cpi_series, execution_time_seconds, run_kpi
from repro.telemetry.trace import NodeTrace, RunTrace


def _run(cpi_values):
    arr = np.asarray(cpi_values, dtype=float)
    node = NodeTrace(
        node_id="slave-1",
        ip="10.0.0.11",
        metrics=np.zeros((arr.size, 26)),
        cpi=arr,
    )
    return RunTrace(
        workload="wordcount", nodes={"slave-1": node},
        execution_ticks=arr.size,
    )


class TestExecutionTimeIdentity:
    def test_t_equals_i_cpi_c(self):
        # 1e9 instructions at CPI 2 on a 1 GHz machine: 2 seconds.
        assert execution_time_seconds(1e9, 2.0, 1e-9) == pytest.approx(2.0)

    def test_linear_in_cpi(self):
        base = execution_time_seconds(1e9, 1.0, 1e-9)
        assert execution_time_seconds(1e9, 3.0, 1e-9) == pytest.approx(3 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            execution_time_seconds(1e9, -1.0, 1e-9)


class TestRunKpi:
    def test_default_is_95th_percentile(self):
        values = np.linspace(1.0, 2.0, 101)
        run = _run(values)
        assert run_kpi(run, "slave-1") == pytest.approx(
            np.percentile(values, 95)
        )

    def test_alternative_percentile(self):
        run = _run([1.0, 2.0, 3.0])
        assert run_kpi(run, "slave-1", q=50) == 2.0

    def test_cpi_series_passthrough(self):
        run = _run([1.1, 1.2, 1.3])
        assert np.allclose(cpi_series(run, "slave-1"), [1.1, 1.2, 1.3])

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            run_kpi(_run([1.0, 2.0]), "slave-9")

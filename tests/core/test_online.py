"""Tests for the streaming monitor and the incremental invariant tracker."""

import numpy as np
import pytest

from repro.core import InvarNetX, OperationContext
from repro.core.invariants import InvariantTracker, select_invariants
from repro.core.online import (
    AlarmEvent,
    DiagnosisEvent,
    MonitorState,
    OnlineMonitor,
)
from repro.faults.spec import FaultSpec, build_fault


@pytest.fixture()
def monitor(trained_pipeline, wordcount_context):
    return OnlineMonitor(trained_pipeline, wordcount_context)


class TestOnlineMonitor:
    def test_requires_trained_pipeline(self, wordcount_context):
        with pytest.raises(RuntimeError, match="not trained"):
            OnlineMonitor(InvarNetX(), wordcount_context)

    def test_healthy_stream_emits_nothing(self, monitor, cluster):
        run = cluster.run("wordcount", seed=6500)
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        assert events == []
        assert monitor.state is MonitorState.MONITORING

    def test_incident_produces_alarm_then_diagnosis(self, monitor, cluster):
        fault = build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))
        run = cluster.run("wordcount", faults=[fault], seed=6501)
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        assert len(events) >= 2
        alarm, diagnosis = events[0], events[1]
        assert isinstance(alarm, AlarmEvent)
        assert isinstance(diagnosis, DiagnosisEvent)
        # alarm inside the injection window (onset latency depends on how
        # fast contention builds under the run's demand fluctuation)
        assert 40 <= alarm.tick < 70
        assert diagnosis.alarm_tick == alarm.tick
        assert diagnosis.root_cause == "CPU-hog"
        # the window is collected after the alarm
        assert diagnosis.tick > alarm.tick

    def test_single_incident_single_report(self, monitor, cluster):
        """The cool-down keeps one incident from flooding reports."""
        fault = build_fault("Mem-hog", FaultSpec("slave-1", 40, 30))
        run = cluster.run("wordcount", faults=[fault], seed=6502)
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        diagnoses = [e for e in events if isinstance(e, DiagnosisEvent)]
        assert len(diagnoses) == 1

    def test_streaming_matches_batch_verdict(
        self, trained_pipeline, wordcount_context, cluster
    ):
        fault = build_fault("Disk-hog", FaultSpec("slave-1", 40, 30))
        run = cluster.run("wordcount", faults=[fault], seed=6503)
        node = run.node("slave-1")
        monitor = OnlineMonitor(trained_pipeline, wordcount_context)
        events = monitor.run_stream(node.metrics, node.cpi)
        diagnoses = [e for e in events if isinstance(e, DiagnosisEvent)]
        batch = trained_pipeline.diagnose_run(wordcount_context, run)
        assert diagnoses
        assert diagnoses[0].root_cause == batch.root_cause

    def test_length_mismatch_rejected(self, monitor):
        with pytest.raises(ValueError):
            monitor.run_stream(np.zeros((5, 26)), np.zeros(6))

    def test_window_validation(self, trained_pipeline, wordcount_context):
        with pytest.raises(ValueError):
            OnlineMonitor(
                trained_pipeline, wordcount_context, window_ticks=4
            )


class TestInvariantTracker:
    def _matrices(self, rng, n=5):
        from repro.telemetry.metrics import MetricCatalog

        cat = MetricCatalog(names=("a", "b", "c", "d"))
        mats = []
        for _ in range(n):
            m = rng.uniform(0, 1, (4, 4))
            m = (m + m.T) / 2
            np.fill_diagonal(m, 1.0)
            mats.append(m)
        return cat, mats

    def test_matches_batch_algorithm(self, rng):
        cat, mats = self._matrices(rng)
        tracker = InvariantTracker(catalog=cat)
        for m in mats:
            tracker.add_run(m)
        incremental = tracker.current()
        batch = select_invariants(mats, catalog=cat)
        assert incremental.pairs == batch.pairs
        assert np.allclose(incremental.baseline, batch.baseline)

    def test_invariants_only_shrink_with_more_runs(self, rng):
        cat, mats = self._matrices(rng, n=8)
        tracker = InvariantTracker(catalog=cat)
        sizes = []
        for m in mats:
            tracker.add_run(m)
            sizes.append(len(tracker.current()))
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_empty_tracker_rejected(self):
        with pytest.raises(RuntimeError):
            InvariantTracker().current()

    def test_shape_validated(self, rng):
        tracker = InvariantTracker()
        with pytest.raises(ValueError):
            tracker.add_run(np.eye(4))

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            InvariantTracker(tau=0.0)

    def test_run_count(self, rng):
        cat, mats = self._matrices(rng, n=3)
        tracker = InvariantTracker(catalog=cat)
        for m in mats:
            tracker.add_run(m)
        assert tracker.n_runs == 3

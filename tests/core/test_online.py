"""Tests for the streaming monitor and the incremental invariant tracker."""

import numpy as np
import pytest

from repro.core import InvarNetX, OperationContext
from repro.core.anomaly import (
    AnomalyDetector,
    DriftThreshold,
    ThresholdRule,
)
from repro.core.inference import InferenceResult
from repro.core.invariants import InvariantSet, InvariantTracker, select_invariants
from repro.core.online import (
    AlarmEvent,
    DiagnosisEvent,
    MonitorState,
    OnlineMonitor,
)
from repro.faults.spec import FaultSpec, build_fault
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.store import ContextModels
from repro.telemetry.metrics import MetricCatalog


@pytest.fixture()
def monitor(trained_pipeline, wordcount_context):
    return OnlineMonitor(trained_pipeline, wordcount_context)


class TestOnlineMonitor:
    def test_requires_trained_pipeline(self, wordcount_context):
        with pytest.raises(RuntimeError, match="not trained"):
            OnlineMonitor(InvarNetX(), wordcount_context)

    def test_healthy_stream_emits_nothing(self, monitor, cluster):
        run = cluster.run("wordcount", seed=6500)
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        assert events == []
        assert monitor.state is MonitorState.MONITORING

    def test_incident_produces_alarm_then_diagnosis(self, monitor, cluster):
        fault = build_fault("CPU-hog", FaultSpec("slave-1", 40, 30))
        run = cluster.run("wordcount", faults=[fault], seed=6501)
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        assert len(events) >= 2
        alarm, diagnosis = events[0], events[1]
        assert isinstance(alarm, AlarmEvent)
        assert isinstance(diagnosis, DiagnosisEvent)
        # alarm inside the injection window (onset latency depends on how
        # fast contention builds under the run's demand fluctuation)
        assert 40 <= alarm.tick < 70
        assert diagnosis.alarm_tick == alarm.tick
        assert diagnosis.root_cause == "CPU-hog"
        # the window is collected after the alarm
        assert diagnosis.tick > alarm.tick

    def test_single_incident_single_report(self, monitor, cluster):
        """The cool-down keeps one incident from flooding reports."""
        fault = build_fault("Mem-hog", FaultSpec("slave-1", 40, 30))
        run = cluster.run("wordcount", faults=[fault], seed=6502)
        node = run.node("slave-1")
        events = monitor.run_stream(node.metrics, node.cpi)
        diagnoses = [e for e in events if isinstance(e, DiagnosisEvent)]
        assert len(diagnoses) == 1

    def test_streaming_matches_batch_verdict(
        self, trained_pipeline, wordcount_context, cluster
    ):
        fault = build_fault("Disk-hog", FaultSpec("slave-1", 40, 30))
        run = cluster.run("wordcount", faults=[fault], seed=6503)
        node = run.node("slave-1")
        monitor = OnlineMonitor(trained_pipeline, wordcount_context)
        events = monitor.run_stream(node.metrics, node.cpi)
        diagnoses = [e for e in events if isinstance(e, DiagnosisEvent)]
        batch = trained_pipeline.diagnose_run(wordcount_context, run)
        assert diagnoses
        assert diagnoses[0].root_cause == batch.root_cause

    def test_length_mismatch_rejected(self, monitor):
        with pytest.raises(ValueError):
            monitor.run_stream(np.zeros((5, 26)), np.zeros(6))

    def test_window_validation(self, trained_pipeline, wordcount_context):
        with pytest.raises(ValueError):
            OnlineMonitor(
                trained_pipeline, wordcount_context, window_ticks=4
            )


class TestMonitorStateMachine:
    """Deterministic state-machine coverage with a synthetic detector.

    ARIMA(0, 1, 0) with intercept 0 predicts "same as last tick", so with
    threshold 0.5 a sample is anomalous exactly when it moves more than
    0.5 from its predecessor — every transition below is hand-checkable.
    """

    WARMUP = 12
    WINDOW = 8  # the monitor's minimum
    COOLDOWN = 4
    LEAD_IN = OnlineMonitor.CONSECUTIVE + 2  # ring-buffered pre-alarm rows

    def _pipeline(self, context):
        model = ARIMAModel(
            order=ARIMAOrder(0, 1, 0),
            ar=np.empty(0),
            ma=np.empty(0),
            intercept=0.0,
            sigma2=1.0,
        )
        detector = AnomalyDetector.from_artifacts(
            model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
        )
        catalog = MetricCatalog(names=("m0", "m1", "m2", "m3"))
        invariants = InvariantSet(
            pairs=[(0, 1)], baseline=np.array([0.9]), catalog=catalog
        )
        pipe = InvarNetX(catalog=catalog)
        pipe.store.adopt(
            context.key(),
            ContextModels(
                context=context, detector=detector, invariants=invariants
            ),
        )
        return pipe

    def _monitor(self, captured=None):
        context = OperationContext("wordcount", "slave-1")
        pipe = self._pipeline(context)
        if captured is not None:
            def fake_infer(ctx, window, top_k=3):
                captured.append(np.asarray(window))
                return InferenceResult(
                    causes=[], violations=np.zeros(1, dtype=bool)
                )

            pipe.infer = fake_infer
        return OnlineMonitor(
            pipe,
            context,
            window_ticks=self.WINDOW,
            warmup_ticks=self.WARMUP,
            cooldown_ticks=self.COOLDOWN,
        )

    @staticmethod
    def _feed_flat(monitor, value, ticks):
        """Feed ``ticks`` constant CPI samples (a constant series never
        alarms); each metrics row encodes its tick for window checks."""
        events = []
        for _ in range(ticks):
            row = np.full(4, float(monitor._tick + 1))
            event = monitor.observe(row, value)
            if event is not None:
                events.append(event)
        return events

    def _incident(self, monitor, start_value, captured_tick=None):
        """Feed a +1/tick ramp until the alarm fires; returns the event."""
        value = start_value
        for _ in range(OnlineMonitor.CONSECUTIVE):
            value += 1.0
            row = np.full(4, float(monitor._tick + 1))
            event = monitor.observe(row, value)
        assert isinstance(event, AlarmEvent)
        return event, value

    # -- warmup boundary ------------------------------------------------
    def test_warmup_completes_at_exact_tick(self):
        monitor = self._monitor()
        self._feed_flat(monitor, 1.0, self.WARMUP - 1)
        assert monitor.state is MonitorState.WARMUP
        self._feed_flat(monitor, 1.0, 1)
        assert monitor.state is MonitorState.MONITORING

    def test_anomalies_inside_warmup_are_not_checked(self):
        monitor = self._monitor()
        # a wild jump at tick 6 — far beyond the 0.5 threshold, but the
        # drift check is not armed yet
        self._feed_flat(monitor, 1.0, 6)
        assert monitor.observe(np.zeros(4), 11.0) is None
        events = self._feed_flat(monitor, 11.0, self.WARMUP)
        assert events == []
        assert monitor.state is MonitorState.MONITORING

    def test_streak_resets_below_three_consecutive(self):
        monitor = self._monitor()
        self._feed_flat(monitor, 1.0, self.WARMUP)
        # two anomalous moves, then a calm tick, then two more: no alarm
        for value in (2.0, 3.0, 3.0, 4.0, 5.0):
            assert monitor.observe(np.zeros(4), value) is None
        assert monitor.state is MonitorState.MONITORING

    # -- alarm + ring-buffer lead-in ------------------------------------
    def test_alarm_on_third_consecutive_anomaly(self):
        monitor = self._monitor()
        self._feed_flat(monitor, 1.0, self.WARMUP)
        alarm, _ = self._incident(monitor, 1.0)
        assert alarm.tick == self.WARMUP + OnlineMonitor.CONSECUTIVE - 1

    def test_window_includes_ring_buffered_lead_in(self):
        captured: list[np.ndarray] = []
        monitor = self._monitor(captured)
        self._feed_flat(monitor, 1.0, self.WARMUP)
        alarm, value = self._incident(monitor, 1.0)
        # collect the remainder of the abnormal window
        remaining = self.WINDOW - self.LEAD_IN
        events = self._feed_flat(monitor, value, remaining)
        assert len(events) == 1 and isinstance(events[0], DiagnosisEvent)
        assert events[0].tick == alarm.tick + remaining
        (window,) = captured
        assert window.shape == (self.WINDOW, 4)
        # rows encode their tick: the window must start CONSECUTIVE + 2
        # ticks before the alarm (the lead-in the ring buffer preserved)
        expected_ticks = np.arange(
            alarm.tick - self.LEAD_IN + 1, alarm.tick + remaining + 1
        )
        assert np.array_equal(window[:, 0], expected_ticks)

    # -- cooldown -------------------------------------------------------
    def _diagnosed_monitor(self):
        monitor = self._monitor(captured=[])
        self._feed_flat(monitor, 1.0, self.WARMUP)
        _, value = self._incident(monitor, 1.0)
        self._feed_flat(monitor, value, self.WINDOW - self.LEAD_IN)
        assert monitor.state is MonitorState.COOLDOWN
        return monitor, value

    def test_cooldown_suppresses_new_alarms(self):
        monitor, value = self._diagnosed_monitor()
        # a fresh ramp during the cool-down is swallowed silently
        for _ in range(self.COOLDOWN):
            value += 1.0
            assert monitor.observe(np.zeros(4), value) is None

    def test_cooldown_rearms_after_exact_ticks(self):
        monitor, value = self._diagnosed_monitor()
        self._feed_flat(monitor, value, self.COOLDOWN - 1)
        assert monitor.state is MonitorState.COOLDOWN
        self._feed_flat(monitor, value, 1)
        assert monitor.state is MonitorState.MONITORING

    def test_second_incident_after_rearm_is_reported(self):
        monitor, value = self._diagnosed_monitor()
        self._feed_flat(monitor, value, self.COOLDOWN)
        alarm, value = self._incident(monitor, value)
        events = self._feed_flat(monitor, value, self.WINDOW - self.LEAD_IN)
        assert len(events) == 1 and isinstance(events[0], DiagnosisEvent)
        assert events[0].alarm_tick == alarm.tick


class _CountingDetector:
    """Pass-through detector wrapper that counts ``check_next`` calls."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def check_next(self, history, observed):
        self.calls += 1
        return self.inner.check_next(history, observed)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestStateMachineBugfixes:
    """Regressions for the three COLLECTING/COOLDOWN-era bugs.

    Borrows the hand-checkable ARIMA(0, 1, 0) harness; the back-to-back
    test swaps in a pure AR(8) detector ("predict the value of 8 ticks
    ago") because a last-value predictor cannot see its own history
    contamination.
    """

    WARMUP = TestMonitorStateMachine.WARMUP
    WINDOW = TestMonitorStateMachine.WINDOW
    COOLDOWN = TestMonitorStateMachine.COOLDOWN
    LEAD_IN = TestMonitorStateMachine.LEAD_IN
    _pipeline = TestMonitorStateMachine._pipeline
    _monitor = TestMonitorStateMachine._monitor
    _feed_flat = staticmethod(TestMonitorStateMachine._feed_flat)
    _incident = TestMonitorStateMachine._incident

    def _ar8_monitor(self, captured, cooldown_ticks):
        """Monitor whose prediction looks exactly 8 ticks back."""
        context = OperationContext("wordcount", "slave-1")
        model = ARIMAModel(
            order=ARIMAOrder(8, 0, 0),
            ar=np.array([0.0] * 7 + [1.0]),
            ma=np.empty(0),
            intercept=0.0,
            sigma2=1.0,
        )
        detector = AnomalyDetector.from_artifacts(
            model, DriftThreshold(ThresholdRule.BETA_MAX, upper=0.5)
        )
        catalog = MetricCatalog(names=("m0", "m1", "m2", "m3"))
        invariants = InvariantSet(
            pairs=[(0, 1)], baseline=np.array([0.9]), catalog=catalog
        )
        pipe = InvarNetX(catalog=catalog)
        pipe.store.adopt(
            context.key(),
            ContextModels(
                context=context, detector=detector, invariants=invariants
            ),
        )

        def fake_infer(ctx, window, top_k=3):
            captured.append(np.asarray(window))
            return InferenceResult(
                causes=[], violations=np.zeros(1, dtype=bool)
            )

        pipe.infer = fake_infer
        return OnlineMonitor(
            pipe,
            context,
            window_ticks=self.WINDOW,
            warmup_ticks=self.WARMUP,
            cooldown_ticks=cooldown_ticks,
        )

    # -- bugfix 1: fault-window CPI must not poison ARIMA history -------
    def test_back_to_back_identical_faults_both_alarm(self):
        """Two identical faults in quick succession must both alarm.

        The AR(8) predictor's lookback spans the previous incident: if
        the COLLECTING-phase CPI (level 3.0) had been folded into the
        history, fault B's onset predictions would hit those contaminated
        samples, every residual would be 0, and B would never alarm.
        """
        captured: list[np.ndarray] = []
        monitor = self._ar8_monitor(captured, cooldown_ticks=2)
        events = []

        def feed(value, ticks):
            for _ in range(ticks):
                event = monitor.observe(np.zeros(4), value)
                if event is not None:
                    events.append(event)

        feed(1.0, self.WARMUP)  # healthy baseline
        feed(3.0, 3)  # fault A: alarm on the third elevated tick
        feed(3.0, self.WINDOW - self.LEAD_IN)  # window fills -> diagnosis
        feed(1.0, 2)  # recovered; drains the 2-tick cool-down
        feed(3.0, 15)  # fault B, identical to A
        kinds = [type(e).__name__ for e in events]
        assert kinds[:2] == ["AlarmEvent", "DiagnosisEvent"]
        assert "AlarmEvent" in kinds[2:], (
            "second identical fault never alarmed: ARIMA history was "
            f"contaminated by the first fault's window (events={kinds})"
        )
        alarm_b = next(e for e in events[2:] if isinstance(e, AlarmEvent))
        # B's onset predictions (1.0, from the quarantined history) make
        # each elevated tick anomalous: alarm on B's third tick exactly
        # ticks: 12 warm-up, 3 ramp A, 3 collecting, 2 cool-down
        fault_b_start = (
            self.WARMUP
            + OnlineMonitor.CONSECUTIVE
            + (self.WINDOW - self.LEAD_IN)
            + 2
        )
        assert alarm_b.tick == fault_b_start + 2

    def test_collection_cpi_quarantined(self):
        """White-box: COLLECTING CPI lands in the incident buffer, not
        the detector history, and the buffer clears on re-arm."""
        monitor = self._monitor(captured=[])
        self._feed_flat(monitor, 1.0, self.WARMUP)
        _, value = self._incident(monitor, 1.0)
        assert monitor.cpi_len == self.WARMUP + OnlineMonitor.CONSECUTIVE
        self._feed_flat(monitor, value, self.WINDOW - self.LEAD_IN)
        # the three collection ticks were quarantined
        assert monitor.cpi_len == self.WARMUP + OnlineMonitor.CONSECUTIVE
        assert monitor._incident_cpi == [value] * (
            self.WINDOW - self.LEAD_IN
        )
        self._feed_flat(monitor, value, self.COOLDOWN)
        assert monitor.state is MonitorState.MONITORING
        assert monitor._incident_cpi == []  # cleared on re-arm

    # -- bugfix 2: lead-in ring stays fresh across a prompt re-arm ------
    def test_short_cooldown_second_window_has_no_stale_rows(self):
        """With a 1-tick cool-down the second alarm fires only 4 appends
        after the first (pre-fix: COLLECTING skipped the ring), so the
        old code seeded window B with a row from incident A's ramp.  The
        rows encode their tick: window B must be contiguous."""
        captured: list[np.ndarray] = []
        monitor = self._monitor(captured)
        # rebuild with a 1-tick cooldown (the harness default is 4)
        monitor.cooldown_ticks = 1
        self._feed_flat(monitor, 1.0, self.WARMUP)
        _, value = self._incident(monitor, 1.0)
        self._feed_flat(monitor, value, self.WINDOW - self.LEAD_IN)
        self._feed_flat(monitor, value, 1)  # the whole cool-down
        assert monitor.state is MonitorState.MONITORING
        alarm_b, value = self._incident(monitor, value)
        remaining = self.WINDOW - self.LEAD_IN
        events = self._feed_flat(monitor, value, remaining)
        assert len(events) == 1 and isinstance(events[0], DiagnosisEvent)
        assert len(captured) == 2
        window_b = captured[1]
        expected_ticks = np.arange(
            alarm_b.tick - self.LEAD_IN + 1, alarm_b.tick + remaining + 1
        )
        assert np.array_equal(window_b[:, 0], expected_ticks), (
            "second abnormal window contains stale pre-incident rows: "
            f"{window_b[:, 0].tolist()} != {expected_ticks.tolist()}"
        )

    # -- bugfix 3: the detector only runs on MONITORING ticks -----------
    def test_detector_runs_only_while_monitoring(self):
        monitor = self._monitor(captured=[])
        spy = _CountingDetector(monitor.detector)
        monitor._models.detector = spy
        self._feed_flat(monitor, 1.0, self.WARMUP)
        assert spy.calls == 0  # warm-up never checks
        _, value = self._incident(monitor, 1.0)
        assert spy.calls == OnlineMonitor.CONSECUTIVE
        self._feed_flat(monitor, value, self.WINDOW - self.LEAD_IN)
        assert spy.calls == OnlineMonitor.CONSECUTIVE  # collecting: none
        self._feed_flat(monitor, value, self.COOLDOWN)
        assert spy.calls == OnlineMonitor.CONSECUTIVE  # cool-down: none
        self._feed_flat(monitor, value, 1)
        assert spy.calls == OnlineMonitor.CONSECUTIVE + 1  # re-armed

    def test_precomputed_verdict_skips_detector(self):
        """The serving fast lane hands ``observe`` its own verdict; the
        monitor must not re-run the recursion."""
        monitor = self._monitor(captured=[])
        spy = _CountingDetector(monitor.detector)
        monitor._models.detector = spy
        self._feed_flat(monitor, 1.0, self.WARMUP)
        for _ in range(OnlineMonitor.CONSECUTIVE):
            event = monitor.observe(np.zeros(4), 1.0, anomalous=True)
        assert isinstance(event, AlarmEvent)
        assert spy.calls == 0

    def test_diagnosis_event_carries_window(self):
        captured: list[np.ndarray] = []
        monitor = self._monitor(captured)
        self._feed_flat(monitor, 1.0, self.WARMUP)
        _, value = self._incident(monitor, 1.0)
        events = self._feed_flat(monitor, value, self.WINDOW - self.LEAD_IN)
        (diagnosis,) = events
        assert isinstance(diagnosis, DiagnosisEvent)
        assert diagnosis.window is not None
        assert np.array_equal(diagnosis.window, captured[0])


class TestInvariantTracker:
    def _matrices(self, rng, n=5):
        from repro.telemetry.metrics import MetricCatalog

        cat = MetricCatalog(names=("a", "b", "c", "d"))
        mats = []
        for _ in range(n):
            m = rng.uniform(0, 1, (4, 4))
            m = (m + m.T) / 2
            np.fill_diagonal(m, 1.0)
            mats.append(m)
        return cat, mats

    def test_matches_batch_algorithm(self, rng):
        cat, mats = self._matrices(rng)
        tracker = InvariantTracker(catalog=cat)
        for m in mats:
            tracker.add_run(m)
        incremental = tracker.current()
        batch = select_invariants(mats, catalog=cat)
        assert incremental.pairs == batch.pairs
        assert np.allclose(incremental.baseline, batch.baseline)

    def test_invariants_only_shrink_with_more_runs(self, rng):
        cat, mats = self._matrices(rng, n=8)
        tracker = InvariantTracker(catalog=cat)
        sizes = []
        for m in mats:
            tracker.add_run(m)
            sizes.append(len(tracker.current()))
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_empty_tracker_rejected(self):
        with pytest.raises(RuntimeError):
            InvariantTracker().current()

    def test_shape_validated(self, rng):
        tracker = InvariantTracker()
        with pytest.raises(ValueError):
            tracker.add_run(np.eye(4))

    def test_tau_validated(self):
        with pytest.raises(ValueError):
            InvariantTracker(tau=0.0)

    def test_run_count(self, rng):
        cat, mats = self._matrices(rng, n=3)
        tracker = InvariantTracker(catalog=cat)
        for m in mats:
            tracker.add_run(m)
        assert tracker.n_runs == 3

"""Property-based round-trip tests for the XML stores."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.anomaly import DriftThreshold, ThresholdRule
from repro.core.context import OperationContext
from repro.core.invariants import InvariantSet
from repro.core.persistence import (
    load_invariants,
    load_performance_model,
    load_signatures,
    save_invariants,
    save_performance_model,
    save_signatures,
)
from repro.core.signatures import SignatureDatabase
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.telemetry.metrics import MetricCatalog

CTX = OperationContext("wordcount", "slave-1", "10.0.0.11")

_coeff = st.floats(
    min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False
)


@st.composite
def arima_models(draw):
    p = draw(st.integers(0, 3))
    q = draw(st.integers(0, 3))
    d = draw(st.integers(0, 2))
    if p == 0 and q == 0 and d == 0:
        d = 1
    return ARIMAModel(
        order=ARIMAOrder(p, d, q),
        ar=np.asarray([draw(_coeff) for _ in range(p)]),
        ma=np.asarray([draw(_coeff) for _ in range(q)]),
        intercept=draw(_coeff),
        sigma2=draw(st.floats(min_value=1e-9, max_value=10.0)),
    )


@st.composite
def invariant_sets(draw):
    catalog = MetricCatalog()
    all_pairs = catalog.pairs()
    n = draw(st.integers(0, 40))
    idx = draw(
        st.lists(
            st.integers(0, len(all_pairs) - 1),
            min_size=n, max_size=n, unique=True,
        )
    )
    pairs = sorted(all_pairs[i] for i in idx)
    baseline = np.asarray(
        [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in pairs]
    )
    return InvariantSet(pairs=pairs, baseline=baseline, catalog=catalog)


class TestModelRoundtripProperty:
    @given(arima_models())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_model_roundtrip(self, tmp_path, model):
        path = tmp_path / "m.xml"
        thr = DriftThreshold(ThresholdRule.BETA_MAX, upper=0.2)
        save_performance_model(model, thr, CTX, path)
        loaded, _, _ = load_performance_model(path)
        assert loaded.order == model.order
        assert np.array_equal(loaded.ar, model.ar)
        assert np.array_equal(loaded.ma, model.ma)
        assert loaded.intercept == model.intercept


class TestInvariantRoundtripProperty:
    @given(invariant_sets())
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_invariant_roundtrip(self, tmp_path, inv):
        path = tmp_path / "i.xml"
        save_invariants(inv, CTX, path)
        loaded, _ = load_invariants(path)
        assert loaded.pairs == inv.pairs
        assert np.allclose(loaded.baseline, inv.baseline)


class TestSignatureRoundtripProperty:
    @given(
        st.lists(
            st.tuples(
                st.lists(st.booleans(), min_size=5, max_size=5),
                st.sampled_from(["CPU-hog", "Mem-hog", "Lock-R"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_signature_roundtrip(self, tmp_path, entries):
        db = SignatureDatabase()
        for bits, problem in entries:
            db.add(np.asarray(bits), problem, ip="x", workload="wc")
        path = tmp_path / "s.xml"
        save_signatures(db, path)
        loaded = load_signatures(path)
        assert len(loaded) == len(db)
        for a, b in zip(loaded.signatures, db.signatures):
            assert a.violations == b.violations
            assert a.problem == b.problem

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_rank_survives_roundtrip(self, tmp_path, query_bits):
        rng = np.random.default_rng(7)
        db = SignatureDatabase()
        for problem in ("A", "B", "C"):
            db.add(
                rng.random(len(query_bits)) > 0.5, problem
            )
        path = tmp_path / "s.xml"
        save_signatures(db, path)
        loaded = load_signatures(path)
        query = np.asarray(query_bits)
        assert loaded.rank(query) == db.rank(query)

"""Unit tests for Algorithm 1 and violation checking (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.invariants import (
    EPSILON,
    TAU,
    AssociationMatrix,
    InvariantSet,
    InvariantTracker,
    select_invariants,
)
from repro.telemetry.metrics import MetricCatalog

CAT3 = MetricCatalog(names=("a", "b", "c"))


def _matrix(values):
    return AssociationMatrix(values=np.asarray(values, float), catalog=CAT3)


class TestAssociationMatrix:
    def test_from_samples_shape(self, rng):
        samples = rng.uniform(0, 1, size=(40, 3))
        m = AssociationMatrix.from_samples(samples, catalog=CAT3)
        assert m.values.shape == (3, 3)

    def test_from_samples_detects_coupling(self, rng):
        base = rng.uniform(0, 1, 60)
        samples = np.column_stack([base, 2 * base, rng.uniform(0, 1, 60)])
        m = AssociationMatrix.from_samples(samples, catalog=CAT3)
        assert m.score("a", "b") > 0.9
        assert m.score("a", "c") < m.score("a", "b")

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            AssociationMatrix.from_samples(
                rng.uniform(0, 1, (40, 5)), catalog=CAT3
            )

    def test_wrong_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            AssociationMatrix(values=np.eye(4), catalog=CAT3)


class TestAlgorithm1:
    def test_paper_defaults(self):
        assert TAU == 0.2
        assert EPSILON == 0.2

    def test_stable_pair_selected_with_max_value(self):
        runs = [
            _matrix([[1, 0.80, 0.1], [0.80, 1, 0.5], [0.1, 0.5, 1]]),
            _matrix([[1, 0.90, 0.4], [0.90, 1, 0.5], [0.4, 0.5, 1]]),
            _matrix([[1, 0.85, 0.7], [0.85, 1, 0.5], [0.7, 0.5, 1]]),
        ]
        inv = select_invariants(runs, tau=0.2, catalog=CAT3)
        # (a,b) spread 0.10 < tau -> kept with I = max = 0.90
        # (a,c) spread 0.60 -> dropped; (b,c) spread 0 -> kept at 0.5
        assert inv.pairs == [(0, 1), (1, 2)]
        assert inv.baseline[0] == pytest.approx(0.90)
        assert inv.baseline[1] == pytest.approx(0.50)

    def test_boundary_spread_excluded(self):
        """max - min == tau is NOT < tau (Algorithm 1 strict inequality).

        Values chosen to be exactly representable in binary floating point
        so the boundary is hit exactly.
        """
        runs = [
            _matrix([[1, 0.25, 0], [0.25, 1, 0], [0, 0, 1]]),
            _matrix([[1, 0.5, 0], [0.5, 1, 0], [0, 0, 1]]),
        ]
        inv = select_invariants(runs, tau=0.25, catalog=CAT3)
        assert (0, 1) not in inv.pairs

    def test_zero_invariants_kept(self):
        """A pair silent in every run is a stable MIC=0 invariant."""
        runs = [_matrix(np.eye(3)) for _ in range(3)]
        inv = select_invariants(runs, catalog=CAT3)
        assert len(inv) == 3
        assert np.allclose(inv.baseline, 0.0)

    def test_single_run_keeps_everything(self):
        inv = select_invariants(
            [_matrix([[1, 0.3, 0.9], [0.3, 1, 0.6], [0.9, 0.6, 1]])],
            catalog=CAT3,
        )
        assert len(inv) == 3

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            select_invariants([])

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            select_invariants([_matrix(np.eye(3))], tau=0.0)

    def test_accepts_raw_arrays(self):
        inv = select_invariants([np.eye(3)], catalog=CAT3)
        assert len(inv) == 3


class TestShapeValidation:
    """A matrix whose shape disagrees with the catalog must be rejected —
    stacking it silently would mis-align every metric pair."""

    def test_too_large_raw_array_rejected(self):
        with pytest.raises(ValueError, match="association matrix 1"):
            select_invariants([np.eye(3), np.eye(4)], catalog=CAT3)

    def test_too_small_raw_array_rejected(self):
        with pytest.raises(ValueError, match=r"expected \(3, 3\)"):
            select_invariants([np.eye(2)], catalog=CAT3)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            select_invariants([np.zeros((3, 4))], catalog=CAT3)

    def test_mismatched_against_inferred_catalog(self):
        """Catalog inferred from the first AssociationMatrix still guards
        the raw arrays that follow it."""
        with pytest.raises(ValueError):
            select_invariants([_matrix(np.eye(3)), np.eye(4)])

    def test_matching_raw_arrays_accepted(self):
        inv = select_invariants([np.eye(3), np.eye(3)], catalog=CAT3)
        assert len(inv) == 3


_SCORE = st.floats(0.0, 1.0, width=32, allow_nan=False)


def _runs_strategy():
    """1-5 runs of symmetric 3x3 association matrices."""
    triple = st.tuples(_SCORE, _SCORE, _SCORE)
    return st.lists(triple, min_size=1, max_size=5)


class TestTrackerMatchesBatch:
    @given(_runs_strategy())
    @settings(max_examples=50, deadline=None)
    def test_incremental_equals_batch(self, triples):
        runs = []
        for ab, ac, bc in triples:
            runs.append(
                np.array(
                    [[1.0, ab, ac], [ab, 1.0, bc], [ac, bc, 1.0]]
                )
            )
        batch = select_invariants(runs, catalog=CAT3)
        tracker = InvariantTracker(catalog=CAT3)
        for run in runs:
            tracker.add_run(run)
        incremental = tracker.current()
        assert incremental.pairs == batch.pairs
        assert np.array_equal(incremental.baseline, batch.baseline)

    def test_tracker_rejects_mismatched_shape(self):
        tracker = InvariantTracker(catalog=CAT3)
        with pytest.raises(ValueError):
            tracker.add_run(np.eye(4))

    def test_tracker_requires_runs(self):
        with pytest.raises(RuntimeError):
            InvariantTracker(catalog=CAT3).current()


class TestViolations:
    @pytest.fixture()
    def invariants(self):
        return InvariantSet(
            pairs=[(0, 1), (1, 2)],
            baseline=np.array([0.9, 0.0]),
            catalog=CAT3,
        )

    def test_violation_when_association_drops(self, invariants):
        abnormal = _matrix([[1, 0.4, 0], [0.4, 1, 0.05], [0, 0.05, 1]])
        flags = invariants.violations(abnormal)
        assert list(flags) == [True, False]

    def test_violation_when_silent_pair_activates(self, invariants):
        abnormal = _matrix([[1, 0.85, 0], [0.85, 1, 0.6], [0, 0.6, 1]])
        flags = invariants.violations(abnormal)
        assert list(flags) == [False, True]

    def test_epsilon_boundary_is_violation(self, invariants):
        """|I - A| >= epsilon counts (§2 uses >=)."""
        abnormal = _matrix([[1, 0.7, 0], [0.7, 1, 0.0], [0, 0.0, 1]])
        flags = invariants.violations(abnormal, epsilon=0.2)
        assert flags[0]  # |0.9 - 0.7| == 0.2 -> violated

    def test_violated_pair_names(self, invariants):
        abnormal = _matrix([[1, 0.1, 0], [0.1, 1, 0], [0, 0, 1]])
        names = invariants.violated_pair_names(abnormal)
        assert names == [("a", "b")]

    def test_invalid_epsilon(self, invariants):
        abnormal = _matrix(np.eye(3))
        with pytest.raises(ValueError):
            invariants.violations(abnormal, epsilon=0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InvariantSet(pairs=[(0, 1)], baseline=np.array([0.5, 0.6]))

    def test_pair_names(self, invariants):
        assert invariants.pair_names() == [("a", "b"), ("b", "c")]

"""Tests for centralized cluster-wide diagnosis (Fig. 1's scenario)."""

import pytest

from repro.core.orchestrator import ClusterDiagnoser
from repro.faults.spec import FaultSpec, build_fault


@pytest.fixture(scope="module")
def diagnoser(cluster, wordcount_runs):
    d = ClusterDiagnoser()
    d.train(wordcount_runs)
    for problem, seed in (("CPU-hog", 4001), ("Mem-hog", 4002)):
        for node in ("slave-1", "slave-3"):
            fault = build_fault(problem, FaultSpec(node, 30, 30))
            run = cluster.run("wordcount", faults=[fault], seed=seed)
            d.train_signature(problem, run, node)
    return d


class TestTraining:
    def test_trains_all_slaves(self, diagnoser):
        contexts = diagnoser.pipeline.contexts()
        nodes = {node for _, node in contexts}
        assert nodes == {"slave-1", "slave-2", "slave-3", "slave-4"}

    def test_master_not_monitored(self, diagnoser):
        assert ("wordcount", "master") not in diagnoser.pipeline.contexts()

    def test_mixed_workloads_rejected(self, cluster):
        d = ClusterDiagnoser()
        runs = [
            cluster.run("wordcount", seed=1),
            cluster.run("grep", seed=2),
        ]
        with pytest.raises(ValueError, match="multiple workloads"):
            d.train(runs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterDiagnoser().train([])


class TestLocalisation:
    def test_healthy_cluster(self, diagnoser, cluster):
        run = cluster.run("wordcount", seed=4400)
        diagnosis = diagnoser.diagnose(run)
        assert not diagnosis.problem_detected
        assert diagnosis.verdict() is None
        assert diagnosis.faulty_nodes == []

    @pytest.mark.parametrize("target", ["slave-1", "slave-3"])
    def test_localises_node_and_cause(self, diagnoser, cluster, target):
        """Fig. 1: the violations on slave-3 identify both the node and
        the CPU-hog."""
        fault = build_fault("CPU-hog", FaultSpec(target, 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=4401)
        diagnosis = diagnoser.diagnose(run)
        verdict = diagnosis.verdict()
        assert verdict is not None
        node, cause = verdict
        assert node == target
        assert cause == "CPU-hog"

    def test_unaffected_nodes_stay_clean(self, diagnoser, cluster):
        fault = build_fault("Mem-hog", FaultSpec("slave-2", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=4402)
        diagnosis = diagnoser.diagnose(run)
        per_node = {n.node_id: n for n in diagnosis.nodes}
        assert per_node["slave-2"].detected
        # the hog is local; the majority of peers must not raise
        clean = [
            n for nid, n in per_node.items()
            if nid != "slave-2" and not n.detected
        ]
        assert len(clean) >= 2

    def test_restricted_node_list(self, cluster, wordcount_runs):
        d = ClusterDiagnoser(node_ids=["slave-1"])
        d.train(wordcount_runs)
        run = cluster.run("wordcount", seed=4403)
        diagnosis = d.diagnose(run)
        assert [n.node_id for n in diagnosis.nodes] == ["slave-1"]


class _SpyRecorder:
    """Minimal duck-typed event sink matching RunRecorder's surface."""

    def __init__(self):
        self.events = []

    def record(self, context_key, kind, **fields):
        self.events.append((tuple(context_key), kind, fields))


class TestRecorderHook:
    def test_train_emits_one_event_per_node(self, cluster, wordcount_runs):
        d = ClusterDiagnoser(node_ids=["slave-1", "slave-2"])
        spy = _SpyRecorder()
        d.train(wordcount_runs, recorder=spy)
        assert [(key, kind) for key, kind, _ in spy.events] == [
            (("wordcount", "slave-1"), "train"),
            (("wordcount", "slave-2"), "train"),
        ]
        for _, _, fields in spy.events:
            assert fields == {"runs": len(wordcount_runs), "warm": False}

    def test_diagnose_emits_verdict_fields(self, cluster, wordcount_runs):
        d = ClusterDiagnoser(node_ids=["slave-1"])
        d.train(wordcount_runs)
        spy = _SpyRecorder()
        d.diagnose(cluster.run("wordcount", seed=4404), recorder=spy)
        ((key, kind, fields),) = spy.events
        assert key == ("wordcount", "slave-1")
        assert kind == "diagnose"
        assert set(fields) == {"detected", "predicted"}

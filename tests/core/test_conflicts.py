"""Unit tests for signature-conflict detection (future-work extension)."""

import numpy as np
import pytest

from repro.core.signatures import SignatureDatabase


def _bits(s: str) -> np.ndarray:
    return np.array([c == "1" for c in s])


@pytest.fixture()
def db():
    db = SignatureDatabase()
    db.add(_bits("11110000"), "Net-drop")
    db.add(_bits("11110001"), "Net-delay")  # near-identical to Net-drop
    db.add(_bits("00001111"), "Mem-hog")
    db.add(_bits("10101010"), "Lock-R")
    return db


class TestConflicts:
    def test_near_identical_pair_reported(self, db):
        conflicts = db.conflicts(threshold=0.85)
        pairs = {(a, b) for a, b, _ in conflicts}
        assert ("Net-delay", "Net-drop") in pairs

    def test_distinct_pairs_not_reported(self, db):
        conflicts = db.conflicts(threshold=0.85)
        pairs = {(a, b) for a, b, _ in conflicts}
        assert ("Mem-hog", "Net-drop") not in pairs

    def test_sorted_by_similarity(self, db):
        scores = [s for _, _, s in db.conflicts(threshold=0.0)]
        assert scores == sorted(scores, reverse=True)

    def test_same_problem_signatures_never_conflict(self):
        db = SignatureDatabase()
        db.add(_bits("1111"), "CPU-hog")
        db.add(_bits("1111"), "CPU-hog")
        assert db.conflicts(threshold=0.5) == []

    def test_pair_reported_once_with_best_score(self):
        db = SignatureDatabase()
        db.add(_bits("1100"), "A")
        db.add(_bits("0011"), "A")
        db.add(_bits("1100"), "B")
        conflicts = db.conflicts(threshold=0.9)
        assert conflicts == [("A", "B", 1.0)]

    def test_threshold_validation(self, db):
        with pytest.raises(ValueError):
            db.conflicts(threshold=1.5)

    def test_measure_validation(self, db):
        with pytest.raises(ValueError, match="known:"):
            db.conflicts(measure="cosine")

    def test_jaccard_measure_supported(self, db):
        conflicts = db.conflicts(threshold=0.7, measure="jaccard")
        pairs = {(a, b) for a, b, _ in conflicts}
        assert ("Net-delay", "Net-drop") in pairs


class TestTopCauses:
    def test_top_causes_from_diagnosis(
        self, cluster, trained_pipeline, wordcount_context
    ):
        from repro.faults.spec import FaultSpec, build_fault

        fault = build_fault("Mem-hog", FaultSpec("slave-1", 30, 30))
        run = cluster.run("wordcount", faults=[fault], seed=8850)
        result = trained_pipeline.diagnose_run(
            wordcount_context, run, top_k=3
        )
        causes = result.top_causes(2)
        assert causes[0] == "Mem-hog"
        assert len(causes) == 2

    def test_top_causes_empty_when_undetected(
        self, cluster, trained_pipeline, wordcount_context
    ):
        run = cluster.run("wordcount", seed=8851)
        result = trained_pipeline.diagnose_run(wordcount_context, run)
        assert result.top_causes(3) == []

"""Round-trip tests for the XML stores (§3.2/§3.3 tuple formats)."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.anomaly import DriftThreshold, ThresholdRule
from repro.core.context import OperationContext
from repro.core.invariants import InvariantSet
from repro.core.persistence import (
    atomic_write_text,
    load_invariants,
    load_performance_model,
    load_signatures,
    save_invariants,
    save_performance_model,
    save_signatures,
)
from repro.core.signatures import SignatureDatabase
from repro.stats.arima import ARIMAModel, ARIMAOrder
from repro.telemetry.metrics import MetricCatalog

CTX = OperationContext("wordcount", "slave-1", "10.0.0.11")


@pytest.fixture()
def model():
    return ARIMAModel(
        order=ARIMAOrder(2, 1, 1),
        ar=np.array([0.5, -0.2]),
        ma=np.array([0.3]),
        intercept=0.01,
        sigma2=0.002,
    )


class TestPerformanceModelStore:
    def test_roundtrip(self, tmp_path, model):
        path = tmp_path / "model.xml"
        threshold = DriftThreshold(ThresholdRule.BETA_MAX, upper=0.15, lower=0.0)
        save_performance_model(model, threshold, CTX, path)
        loaded, thr, ctx = load_performance_model(path)
        assert loaded.order == model.order
        assert np.allclose(loaded.ar, model.ar)
        assert np.allclose(loaded.ma, model.ma)
        assert loaded.intercept == model.intercept
        assert loaded.sigma2 == model.sigma2
        assert thr == threshold
        assert ctx == CTX

    def test_five_tuple_schema(self, tmp_path, model):
        """The paper stores (p, d, q, ip, type)."""
        path = tmp_path / "model.xml"
        threshold = DriftThreshold(ThresholdRule.BETA_MAX, upper=0.1)
        save_performance_model(model, threshold, CTX, path)
        five = ET.parse(path).getroot().find("five-tuple")
        assert five is not None
        assert five.get("p") == "2"
        assert five.get("d") == "1"
        assert five.get("q") == "1"
        assert five.get("ip") == "10.0.0.11"
        assert five.get("type") == "wordcount"

    def test_loaded_model_predicts(self, tmp_path, model, rng):
        path = tmp_path / "model.xml"
        save_performance_model(
            model, DriftThreshold(ThresholdRule.BETA_MAX, 0.1), CTX, path
        )
        loaded, _, _ = load_performance_model(path)
        history = rng.normal(1.0, 0.1, 50)
        assert loaded.predict_next(history) == pytest.approx(
            model.predict_next(history)
        )

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<other/>")
        with pytest.raises(ValueError):
            load_performance_model(path)


class TestInvariantStore:
    def test_roundtrip(self, tmp_path):
        cat = MetricCatalog(names=("a", "b", "c", "d"))
        inv = InvariantSet(
            pairs=[(0, 1), (2, 3)],
            baseline=np.array([0.85, 0.0]),
            catalog=cat,
        )
        path = tmp_path / "inv.xml"
        save_invariants(inv, CTX, path)
        loaded, ctx = load_invariants(path)
        assert loaded.pairs == inv.pairs
        assert np.allclose(loaded.baseline, inv.baseline)
        assert loaded.catalog.names == cat.names
        assert ctx == CTX

    def test_three_tuple_schema(self, tmp_path):
        """The paper stores (I, ip, type) with I in matrix form."""
        inv = InvariantSet(
            pairs=[(0, 1)], baseline=np.array([0.5]),
            catalog=MetricCatalog(names=("a", "b")),
        )
        path = tmp_path / "inv.xml"
        save_invariants(inv, CTX, path)
        root = ET.parse(path).getroot()
        assert root.get("ip") == "10.0.0.11"
        assert root.get("type") == "wordcount"
        assert root.find("matrix") is not None

    def test_full_catalog_roundtrip(self, tmp_path):
        cat = MetricCatalog()
        pairs = cat.pairs()[:40]
        inv = InvariantSet(
            pairs=pairs,
            baseline=np.linspace(0, 1, len(pairs)),
            catalog=cat,
        )
        path = tmp_path / "inv.xml"
        save_invariants(inv, CTX, path)
        loaded, _ = load_invariants(path)
        assert loaded.pairs == pairs


class TestInvariantFileValidation:
    """Malformed <row> elements must fail loudly, never corrupt a matrix."""

    def _valid_file(self, tmp_path):
        inv = InvariantSet(
            pairs=[(0, 1), (1, 2)],
            baseline=np.array([0.8, 0.6]),
            catalog=MetricCatalog(names=("a", "b", "c")),
        )
        path = tmp_path / "inv.xml"
        save_invariants(inv, CTX, path)
        return path

    def _mutate(self, path, old, new, count=1):
        text = path.read_text()
        assert old in text
        path.write_text(text.replace(old, new, count))

    def test_missing_index_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        self._mutate(path, '<row index="1">', "<row>")
        with pytest.raises(ValueError, match="missing its index"):
            load_invariants(path)

    def test_non_integer_index_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        self._mutate(path, 'index="1"', 'index="one"')
        with pytest.raises(ValueError, match="non-integer index"):
            load_invariants(path)

    def test_out_of_range_index_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        self._mutate(path, 'index="2"', 'index="3"')
        with pytest.raises(ValueError, match="outside matrix"):
            load_invariants(path)

    def test_negative_index_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        self._mutate(path, 'index="2"', 'index="-1"')
        with pytest.raises(ValueError, match="outside matrix"):
            load_invariants(path)

    def test_duplicate_index_rejected(self, tmp_path):
        """The historical failure mode: a duplicated index silently
        overwrote the other row instead of raising."""
        path = self._valid_file(tmp_path)
        self._mutate(path, 'index="1"', 'index="0"')
        with pytest.raises(ValueError, match="duplicate"):
            load_invariants(path)

    def test_short_row_rejected(self, tmp_path):
        path = self._valid_file(tmp_path)
        root = ET.parse(path).getroot()
        row = root.find("matrix").findall("row")[1]
        row.text = "0.5"
        ET.ElementTree(root).write(path)
        with pytest.raises(ValueError, match="values, expected"):
            load_invariants(path)


class TestAtomicWrites:
    """All three writers publish via temp-file + os.replace."""

    def test_no_temp_files_left_behind(self, tmp_path, model):
        save_performance_model(
            model, DriftThreshold(ThresholdRule.BETA_MAX, 0.1), CTX,
            tmp_path / "model.xml",
        )
        inv = InvariantSet(
            pairs=[(0, 1)], baseline=np.array([0.5]),
            catalog=MetricCatalog(names=("a", "b")),
        )
        save_invariants(inv, CTX, tmp_path / "inv.xml")
        db = SignatureDatabase()
        db.add(np.array([True]), "CPU-hog")
        save_signatures(db, tmp_path / "sigs.xml")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["inv.xml", "model.xml", "sigs.xml"]

    def test_failed_publish_preserves_previous_artifact(
        self, tmp_path, model, monkeypatch
    ):
        """A crash between serialisation and publish leaves the old file
        complete and readable — never a torn half-write."""
        import os as os_module

        path = tmp_path / "model.xml"
        threshold = DriftThreshold(ThresholdRule.BETA_MAX, 0.1)
        save_performance_model(model, threshold, CTX, path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the publish point")

        monkeypatch.setattr(
            "repro.core.persistence.os.replace", exploding_replace
        )
        with pytest.raises(OSError, match="simulated crash"):
            save_performance_model(model, threshold, CTX, path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["model.xml"]
        loaded, thr, _ = load_performance_model(path)
        assert thr == threshold
        assert os_module.path.exists(path)

    def test_atomic_write_text_roundtrip(self, tmp_path):
        path = tmp_path / "manifest.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]


class TestSignatureStore:
    def test_roundtrip(self, tmp_path):
        db = SignatureDatabase()
        db.add(
            np.array([True, False, True]), "CPU-hog",
            ip="10.0.0.11", workload="wordcount",
        )
        db.add(np.array([False, True, False]), "Mem-hog")
        path = tmp_path / "sigs.xml"
        save_signatures(db, path)
        loaded = load_signatures(path)
        assert len(loaded) == 2
        assert loaded.signatures[0].violations == (True, False, True)
        assert loaded.signatures[0].problem == "CPU-hog"
        assert loaded.signatures[0].ip == "10.0.0.11"
        assert loaded.signatures[0].workload == "wordcount"

    def test_four_tuple_schema(self, tmp_path):
        """The paper stores (binary tuple, problem, ip, workload type)."""
        db = SignatureDatabase()
        db.add(np.array([True, True]), "Suspend", ip="x", workload="sort")
        path = tmp_path / "sigs.xml"
        save_signatures(db, path)
        el = ET.parse(path).getroot().find("signature")
        assert el is not None
        assert el.text == "11"
        assert el.get("problem") == "Suspend"
        assert el.get("type") == "sort"

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<nope/>")
        with pytest.raises(ValueError):
            load_signatures(path)

"""Unit tests for the signature database."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signatures import (
    Signature,
    SignatureDatabase,
    jaccard_similarity,
    matching_similarity,
)


def _bits(s: str) -> np.ndarray:
    return np.array([c == "1" for c in s])


class TestSimilarities:
    def test_jaccard_identical(self):
        assert jaccard_similarity(_bits("1010"), _bits("1010")) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity(_bits("1100"), _bits("0011")) == 0.0

    def test_jaccard_all_zero_convention(self):
        assert jaccard_similarity(_bits("0000"), _bits("0000")) == 1.0

    def test_matching_counts_agreeing_zeros(self):
        # 3 of 4 positions agree
        assert matching_similarity(_bits("1000"), _bits("1001")) == 0.75

    def test_matching_superset_penalised(self):
        """A broad signature must not swallow a narrow query — the reason
        matching similarity is the default."""
        query = _bits("1100000000")
        narrow = _bits("1100000000")
        broad = _bits("1111111111")
        assert matching_similarity(query, narrow) > matching_similarity(
            query, broad
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            jaccard_similarity(_bits("10"), _bits("100"))

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, bits):
        arr = np.asarray(bits)
        assert matching_similarity(arr, arr) == 1.0
        assert jaccard_similarity(arr, arr) == 1.0

    @given(
        st.lists(st.booleans(), min_size=8, max_size=32),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_symmetric(self, bits, seed):
        a = np.asarray(bits)
        b = np.random.default_rng(seed).random(a.size) > 0.5
        for sim in (matching_similarity, jaccard_similarity):
            v = sim(a, b)
            assert 0.0 <= v <= 1.0
            assert v == pytest.approx(sim(b, a))


class TestSignature:
    def test_empty_problem_rejected(self):
        with pytest.raises(ValueError):
            Signature(violations=(True,), problem="", ip="", workload="")

    def test_as_array(self):
        sig = Signature(
            violations=(True, False), problem="CPU-hog", ip="", workload=""
        )
        assert sig.as_array().dtype == bool
        assert sig.tuple_length == 2


class TestSignatureDatabase:
    @pytest.fixture()
    def db(self):
        db = SignatureDatabase()
        db.add(_bits("110000"), "CPU-hog", ip="10.0.0.1", workload="wc")
        db.add(_bits("110001"), "CPU-hog", ip="10.0.0.1", workload="wc")
        db.add(_bits("001100"), "Mem-hog", ip="10.0.0.1", workload="wc")
        db.add(_bits("111111"), "Suspend", ip="10.0.0.1", workload="wc")
        return db

    def test_problems_first_seen_order(self, db):
        assert db.problems == ["CPU-hog", "Mem-hog", "Suspend"]

    def test_rank_exact_match_first(self, db):
        ranking = db.rank(_bits("001100"))
        assert ranking[0] == ("Mem-hog", 1.0)

    def test_rank_best_of_multiple_signatures(self, db):
        ranking = db.rank(_bits("110001"))
        assert ranking[0][0] == "CPU-hog"
        assert ranking[0][1] == 1.0

    def test_rank_jaccard_measure(self, db):
        ranking = db.rank(_bits("110000"), measure="jaccard")
        assert ranking[0][0] == "CPU-hog"

    def test_unknown_measure_rejected(self, db):
        with pytest.raises(ValueError, match="known:"):
            db.rank(_bits("110000"), measure="cosine")

    def test_rank_scores_sorted(self, db):
        scores = [s for _, s in db.rank(_bits("110010"))]
        assert scores == sorted(scores, reverse=True)

    def test_length_mismatch_on_add(self, db):
        with pytest.raises(ValueError):
            db.add(_bits("10"), "X")

    def test_tuple_growth(self, db):
        """The database grows as problems are diagnosed (§3.3)."""
        before = len(db)
        db.add(_bits("000011"), "Net-drop")
        assert len(db) == before + 1

    def test_deterministic_tiebreak(self):
        db = SignatureDatabase()
        db.add(_bits("1100"), "B-fault")
        db.add(_bits("1100"), "A-fault")
        ranking = db.rank(_bits("1100"))
        assert [p for p, _ in ranking] == ["A-fault", "B-fault"]

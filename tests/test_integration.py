"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro import HadoopCluster, InvarNetX, OperationContext
from repro.datagen.campaigns import CampaignConfig, FaultCampaign
from repro.eval.confusion import DiagnosisOutcome, score_outcomes
from repro.eval.experiments import run_diagnosis_experiment
from repro.faults.spec import FaultSpec, build_fault


class TestOfflineOnlineCycle:
    """The full Fig. 3 flow: train offline, diagnose online, learn."""

    def test_small_campaign_accuracy(self, cluster):
        config = CampaignConfig(
            workload="wordcount",
            n_normal=6,
            train_reps=2,
            test_reps=3,
            base_seed=314,
        )
        faults = ("CPU-hog", "Mem-hog", "Disk-hog", "Suspend")
        campaign = FaultCampaign(cluster, config, faults)
        ctx = OperationContext(
            "wordcount", "slave-1", cluster.ip_of("slave-1")
        )
        result = run_diagnosis_experiment(
            InvarNetX(), campaign, ctx, "InvarNet-X"
        )
        # These four faults are maximally distinct; a healthy pipeline
        # separates them nearly perfectly.
        assert result.scores["average"].precision > 0.85
        assert result.scores["average"].recall > 0.85

    def test_online_learning_loop(self, cluster, wordcount_runs):
        """A problem diagnosed as unknown is learned and then recognised."""
        ctx = OperationContext(
            "wordcount", "slave-1", cluster.ip_of("slave-1")
        )
        pipe = InvarNetX()
        pipe.train_from_runs(ctx, wordcount_runs)

        fault = build_fault("Mem-hog", FaultSpec("slave-1", 30, 30))
        first = cluster.run("wordcount", faults=[fault], seed=5001)
        result = pipe.diagnose_run(ctx, first)
        assert result.detected
        assert result.root_cause is None  # empty database: unknown problem

        # Operator investigates, resolves, and the signature is stored.
        pipe.train_signature_from_run(ctx, "Mem-hog", first)

        second = cluster.run("wordcount", faults=[fault], seed=5002)
        result = pipe.diagnose_run(ctx, second)
        assert result.root_cause == "Mem-hog"

    def test_per_context_isolation(self, cluster, wordcount_runs):
        """Models trained for one context do not leak into another."""
        pipe = InvarNetX()
        ctx1 = OperationContext("wordcount", "slave-1")
        pipe.train_from_runs(ctx1, wordcount_runs)
        ctx2 = OperationContext("wordcount", "slave-2")
        with pytest.raises(RuntimeError):
            pipe.detect(ctx2, wordcount_runs[0].node("slave-2").cpi)

    def test_interactive_context_end_to_end(self, cluster):
        ctx = OperationContext("tpcds", "slave-1", cluster.ip_of("slave-1"))
        pipe = InvarNetX()
        normal = [cluster.run("tpcds", seed=6100 + i) for i in range(6)]
        pipe.train_from_runs(ctx, normal)
        fault = build_fault("Overload", FaultSpec("slave-1", 30, 30))
        train_run = cluster.run("tpcds", faults=[fault], seed=6200)
        pipe.train_signature_from_run(ctx, "Overload", train_run)
        test_run = cluster.run("tpcds", faults=[fault], seed=6201)
        result = pipe.diagnose_run(ctx, test_run)
        assert result.root_cause == "Overload"


class TestScoringIntegration:
    def test_outcomes_flow_into_scores(self):
        outcomes = [
            DiagnosisOutcome("CPU-hog", "CPU-hog", True),
            DiagnosisOutcome("CPU-hog", "Mem-hog", True),
            DiagnosisOutcome("Mem-hog", "Mem-hog", True),
            DiagnosisOutcome("Mem-hog", None, False),
        ]
        scores = score_outcomes(outcomes)
        assert scores["CPU-hog"].recall == pytest.approx(0.5)
        assert scores["Mem-hog"].precision == pytest.approx(0.5)


class TestClusterScaling:
    def test_larger_cluster_still_diagnoses(self):
        """The local-modelling design scales with node count (paper §1 c)."""
        big = HadoopCluster(n_slaves=8)
        ctx = OperationContext("grep", "slave-7", big.ip_of("slave-7"))
        pipe = InvarNetX()
        normal = [big.run("grep", seed=7100 + i) for i in range(6)]
        pipe.train_from_runs(ctx, normal)
        fault = build_fault("CPU-hog", FaultSpec("slave-7", 20, 30))
        train_run = big.run("grep", faults=[fault], seed=7200)
        pipe.train_signature_from_run(ctx, "CPU-hog", train_run)
        result = pipe.diagnose_run(
            ctx, big.run("grep", faults=[fault], seed=7201)
        )
        assert result.root_cause == "CPU-hog"

"""Maximal Information Coefficient (MIC), implemented from scratch.

InvarNet-X builds its likely invariants from pairwise MIC scores between
performance metrics (paper §3.3), citing Reshef et al., *Detecting novel
associations in large data sets*, Science 334 (2011).  ``minepy`` is not
available in this environment, so this module implements the MINE
approximation algorithm directly:

1. For every grid resolution ``(x, y)`` with ``x * y <= B(n) = n ** alpha``
   the algorithm computes (approximately) the maximal mutual information
   achievable by an ``x``-by-``y`` grid over the data.
2. The y-axis is equipartitioned into ``y`` rows; the x-axis partition is
   optimised by dynamic programming over *clumps* (maximal runs of x-ordered
   points falling into a single row).
3. The characteristic matrix entry is the maximal MI normalised by
   ``log2(min(x, y))``; MIC is the largest entry.

Both axis orientations are evaluated and the per-cell maximum taken, as in
the reference implementation.  The dynamic programme here is vectorised with
numpy: for each row count ``y`` a dense ``(k+1, k+1)`` partial-entropy gain
matrix over clump boundaries is built once, after which each additional
column of the DP is a single broadcast-and-max.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mic", "mic_matrix", "MICParameters"]


class MICParameters:
    """Tuning constants of the MINE approximation.

    Attributes:
        alpha: exponent of the grid-size budget ``B(n) = n ** alpha``
            (0.6 in the paper and in minepy's default).
        clumps_factor: the number of superclumps retained on the optimised
            axis is at most ``clumps_factor * x`` (15 in minepy's default).
    """

    def __init__(self, alpha: float = 0.6, clumps_factor: int = 15) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if clumps_factor < 1:
            raise ValueError(f"clumps_factor must be >= 1, got {clumps_factor}")
        self.alpha = alpha
        self.clumps_factor = clumps_factor

    def budget(self, n: int) -> int:
        """Grid-size budget ``B(n)``, never below the minimal 2x2 grid."""
        return max(int(n**self.alpha), 4)


_DEFAULT_PARAMS = MICParameters()


def _equipartition(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Assign sorted values to ``num_bins`` bins of near-equal size.

    Tied values always land in the same bin (Reshef's EquipartitionYAxis),
    so the realised number of bins can be smaller than requested when the
    data is heavily tied.

    Args:
        values: values sorted ascending.
        num_bins: desired number of bins.

    Returns:
        Integer bin index per position (non-decreasing).
    """
    n = values.size
    assign = np.empty(n, dtype=np.int64)
    current_bin = 0
    placed = 0
    bin_size = 0
    i = 0
    while i < n:
        j = i + 1
        while j < n and values[j] == values[i]:
            j += 1
        run = j - i
        remaining_bins = num_bins - current_bin
        # Ideal size for the bin being filled: points not yet committed to a
        # closed bin, spread over the bins still available.
        target = (n - placed) / remaining_bins if remaining_bins else n
        if (
            bin_size > 0
            and current_bin < num_bins - 1
            and abs(bin_size + run - target) >= abs(bin_size - target)
        ):
            current_bin += 1
            placed += bin_size
            bin_size = 0
        assign[i:j] = current_bin
        bin_size += run
        i = j
    return assign


def _clumps(x_sorted: np.ndarray, q_by_xorder: np.ndarray) -> np.ndarray:
    """Clump boundaries (cumulative point counts) along the x axis.

    A clump is a maximal run of x-consecutive points that share a y-row.
    Groups of points with identical x-values are atomic: if such a group
    spans several rows it becomes its own (mixed) clump.

    Args:
        x_sorted: x values sorted ascending.
        q_by_xorder: row index of each point, in x order.

    Returns:
        Array ``c`` with ``c[0] == 0`` and ``c[-1] == n`` so that clump ``t``
        covers points ``c[t-1]:c[t]``.
    """
    n = x_sorted.size
    # Resolve x ties: a tie group with heterogeneous rows gets a fresh
    # sentinel label so it cannot merge with its neighbours.
    labels = q_by_xorder.astype(np.int64).copy()
    sentinel = int(labels.max(initial=0)) + 1
    i = 0
    while i < n:
        j = i + 1
        while j < n and x_sorted[j] == x_sorted[i]:
            j += 1
        if j - i > 1 and np.unique(labels[i:j]).size > 1:
            labels[i:j] = sentinel
            sentinel += 1
        i = j
    changes = np.nonzero(labels[1:] != labels[:-1])[0] + 1
    return np.concatenate(([0], changes, [n])).astype(np.int64)


def _superclumps(boundaries: np.ndarray, n: int, k_hat: int) -> np.ndarray:
    """Coarsen clump boundaries down to at most ``k_hat`` superclumps.

    Walks the clumps in order, closing a superclump whenever its size
    reaches the equipartition target.  Clumps are atomic.
    """
    k = boundaries.size - 1
    if k <= k_hat:
        return boundaries
    out = [0]
    target = n / k_hat
    filled = 0.0
    for t in range(1, k + 1):
        if boundaries[t] >= filled + target or t == k:
            out.append(int(boundaries[t]))
            filled = float(boundaries[t])
            target = (n - filled) / max(k_hat - (len(out) - 1), 1)
    return np.asarray(out, dtype=np.int64)


def _entropy_gains(cum: np.ndarray) -> np.ndarray:
    """Pairwise column-gain matrix for the x-axis DP.

    ``cum[s]`` holds per-row cumulative counts of the first ``s`` clumps.
    Entry ``(s, t)`` (for ``s < t``) is the unnormalised contribution of a
    column spanning clumps ``s+1 .. t`` to ``-n * H(Q | P)``:

        gain(s, t) = sum_rows  m_r * log(m_r / m)

    with ``m_r`` the per-row counts inside the column and ``m`` its total.
    """
    k_plus_1 = cum.shape[0]
    counts = cum[None, :, :] - cum[:, None, :]  # (s, t, rows)
    totals = counts.sum(axis=2)
    safe_counts = np.maximum(counts, 1)
    safe_totals = np.maximum(totals, 1)
    logs = np.log(safe_counts) - np.log(safe_totals)[:, :, None]
    terms = np.where(counts > 0, counts * logs, 0.0)
    gains = terms.sum(axis=2)
    # Invalid (s >= t or empty column) cells must never win a max.
    invalid = np.tril(np.ones((k_plus_1, k_plus_1), dtype=bool))
    gains[invalid] = -np.inf
    gains[totals == 0] = -np.inf
    return gains


def _optimize_axis(
    q_counts_cum: np.ndarray, n: int, max_cols: int
) -> np.ndarray:
    """Maximal ``-n * H(Q|P)`` for each column count ``l = 1 .. max_cols``.

    Args:
        q_counts_cum: ``(k+1, rows)`` cumulative per-row counts at each
            clump boundary.
        n: total number of points.
        max_cols: largest number of x-axis columns to evaluate.

    Returns:
        Array ``G`` of length ``max_cols + 1``; ``G[l]`` is the optimum for
        ``l`` columns (``G[0]`` unused, ``-inf``).
    """
    k = q_counts_cum.shape[0] - 1
    gains = _entropy_gains(q_counts_cum)
    max_cols = min(max_cols, k)
    out = np.full(max_cols + 1, -np.inf)
    # G_l[t] = best value partitioning the first t clumps into l columns.
    g_prev = gains[0, :].copy()  # l = 1: single column over clumps 1..t
    out[1] = g_prev[k]
    for l in range(2, max_cols + 1):
        # g_curr[t] = max_s g_prev[s] + gains[s, t]
        stacked = g_prev[:, None] + gains
        g_curr = stacked.max(axis=0)
        out[l] = g_curr[k]
        g_prev = g_curr
    return out


def _half_characteristic(
    x: np.ndarray, y: np.ndarray, budget: int, params: MICParameters
) -> dict[tuple[int, int], float]:
    """Characteristic-matrix entries with the y axis equipartitioned.

    Returns a map from grid shape ``(cols, rows)`` to mutual information in
    nats (unnormalised).
    """
    n = x.size
    order_x = np.argsort(x, kind="stable")
    x_sorted = x[order_x]
    order_y = np.argsort(y, kind="stable")

    entries: dict[tuple[int, int], float] = {}
    max_rows = budget // 2
    for rows in range(2, max_rows + 1):
        q_sorted = _equipartition(y[order_y], rows)
        q = np.empty(n, dtype=np.int64)
        q[order_y] = q_sorted
        realised_rows = int(q.max()) + 1
        if realised_rows < 2:
            continue  # too many ties to form two rows
        q_x = q[order_x]
        max_cols = budget // rows
        if max_cols < 2:
            break
        boundaries = _clumps(x_sorted, q_x)
        k_hat = max(params.clumps_factor * max_cols, 2)
        boundaries = _superclumps(boundaries, n, k_hat)
        # Cumulative per-row counts at each boundary.
        k = boundaries.size - 1
        cum = np.zeros((k + 1, realised_rows), dtype=np.int64)
        onehot_cum = np.zeros((n + 1, realised_rows), dtype=np.int64)
        np.add.at(onehot_cum[1:], (np.arange(n), q_x), 1)
        onehot_cum = np.cumsum(onehot_cum, axis=0)
        cum = onehot_cum[boundaries]
        # H(Q) over all points, in nats.
        row_totals = cum[-1].astype(float)
        probs = row_totals / n
        h_q = -float(np.sum(probs[probs > 0] * np.log(probs[probs > 0])))
        g = _optimize_axis(cum, n, max_cols)
        for cols in range(2, min(max_cols, k) + 1):
            if not np.isfinite(g[cols]):
                continue
            mi = h_q + g[cols] / n
            key = (cols, rows)
            if mi > entries.get(key, -np.inf):
                entries[key] = mi
    return entries


def mic(
    x: np.ndarray | list[float],
    y: np.ndarray | list[float],
    params: MICParameters | None = None,
) -> float:
    """Maximal Information Coefficient between two samples.

    Args:
        x: first sample.
        y: second sample, same length.
        params: optional tuning constants; defaults match minepy
            (``alpha=0.6``, ``c=15``).

    Returns:
        MIC score in ``[0, 1]``.  Returns 0.0 when either input is constant
        (no association can be expressed) or when fewer than 4 paired
        observations are available.
    """
    params = params or _DEFAULT_PARAMS
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(
            f"x and y must be 1-D of equal length, got {xa.shape} and {ya.shape}"
        )
    mask = np.isfinite(xa) & np.isfinite(ya)
    xa, ya = xa[mask], ya[mask]
    n = xa.size
    if n < 4:
        return 0.0
    # repro: disable=float-equality — exact zero range is the degenerate case
    if np.ptp(xa) == 0.0 or np.ptp(ya) == 0.0:
        return 0.0
    budget = params.budget(n)

    best = 0.0
    for first, second in ((xa, ya), (ya, xa)):
        entries = _half_characteristic(first, second, budget, params)
        for (cols, rows), mi in entries.items():
            denom = np.log(min(cols, rows))
            if denom <= 0:
                continue
            score = mi / denom
            if score > best:
                best = score
    return float(min(max(best, 0.0), 1.0))


def mic_matrix(
    data: np.ndarray,
    params: MICParameters | None = None,
) -> np.ndarray:
    """Pairwise MIC over the columns of a samples-by-metrics array.

    Args:
        data: array of shape ``(n_samples, n_metrics)``.
        params: optional tuning constants.

    Returns:
        Symmetric ``(n_metrics, n_metrics)`` matrix with unit diagonal.
    """
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
    m = arr.shape[1]
    out = np.eye(m)
    for i in range(m):
        for j in range(i + 1, m):
            score = mic(arr[:, i], arr[:, j], params)
            out[i, j] = score
            out[j, i] = score
    return out

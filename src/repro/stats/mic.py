"""Maximal Information Coefficient (MIC), implemented from scratch.

InvarNet-X builds its likely invariants from pairwise MIC scores between
performance metrics (paper §3.3), citing Reshef et al., *Detecting novel
associations in large data sets*, Science 334 (2011).  ``minepy`` is not
available in this environment, so this module implements the MINE
approximation algorithm directly:

1. For every grid resolution ``(x, y)`` with ``x * y <= B(n) = n ** alpha``
   the algorithm computes (approximately) the maximal mutual information
   achievable by an ``x``-by-``y`` grid over the data.
2. The y-axis is equipartitioned into ``y`` rows; the x-axis partition is
   optimised by dynamic programming over *clumps* (maximal runs of x-ordered
   points falling into a single row).
3. The characteristic matrix entry is the maximal MI normalised by
   ``log(min(x, y))`` — where ``x`` and ``y`` are the *realised* grid
   dimensions: ties can collapse the requested row count into fewer bins,
   and the normaliser must track what the grid actually is, not what was
   asked for.  MIC is the largest entry.

Both axis orientations are evaluated and the per-cell maximum taken, as in
the reference implementation.

The kernels here are written to be shared across pairs.  Everything that
depends on a single column only — its sort order, its tie-group structure,
and the whole family of y-axis equipartitions (one per row count) — is
computed once by :func:`prepare_column` and reused for every pair the
column appears in; :mod:`repro.stats.micfast` drives that reuse across a
full association matrix.  The per-pair work that remains is the clump
construction and the x-axis dynamic programme, both vectorised: the
``(k+1, k+1)`` partial-entropy gain matrix over clump boundaries is built
from a precomputed ``m * log(m)`` lookup table (no transcendental calls in
the hot loop), after which each additional DP column is a single
broadcast-add-and-max over reused buffers.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

__all__ = [
    "mic",
    "mic_matrix",
    "MICParameters",
    "ColumnPrep",
    "prepare_column",
]


class MICParameters:
    """Tuning constants of the MINE approximation.

    Attributes:
        alpha: exponent of the grid-size budget ``B(n) = n ** alpha``
            (0.6 in the paper and in minepy's default).
        clumps_factor: the number of superclumps retained on the optimised
            axis is at most ``clumps_factor * x`` (15 in minepy's default).
    """

    def __init__(self, alpha: float = 0.6, clumps_factor: int = 15) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if clumps_factor < 1:
            raise ValueError(f"clumps_factor must be >= 1, got {clumps_factor}")
        self.alpha = alpha
        self.clumps_factor = clumps_factor

    def budget(self, n: int) -> int:
        """Grid-size budget ``B(n)``, never below the minimal 2x2 grid."""
        return max(int(n**self.alpha), 4)


_DEFAULT_PARAMS = MICParameters()


def _nlogn_table(n: int) -> np.ndarray:
    """Lookup table ``t[m] = m * log(m)`` for integer counts ``0 .. n``.

    ``t[0] = 0`` encodes the usual ``0 * log(0) = 0`` convention, so the
    entropy-gain kernel can gather instead of guarding each log.
    """
    table = np.zeros(n + 1)
    if n >= 1:
        counts = np.arange(1, n + 1, dtype=float)
        np.multiply(counts, np.log(counts), out=table[1:])
    return table


def _equipartition(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Assign sorted values to ``num_bins`` bins of near-equal size.

    Tied values always land in the same bin (Reshef's EquipartitionYAxis),
    so the realised number of bins can be smaller than requested when the
    data is heavily tied.

    Args:
        values: values sorted ascending.
        num_bins: desired number of bins.

    Returns:
        Integer bin index per position (non-decreasing).
    """
    n = values.size
    assign = np.empty(n, dtype=np.int64)
    current_bin = 0
    placed = 0
    bin_size = 0
    i = 0
    while i < n:
        j = i + 1
        while j < n and values[j] == values[i]:
            j += 1
        run = j - i
        remaining_bins = num_bins - current_bin
        # Ideal size for the bin being filled: points not yet committed to a
        # closed bin, spread over the bins still available.
        target = (n - placed) / remaining_bins if remaining_bins else n
        if (
            bin_size > 0
            and current_bin < num_bins - 1
            and abs(bin_size + run - target) >= abs(bin_size - target)
        ):
            current_bin += 1
            placed += bin_size
            bin_size = 0
        assign[i:j] = current_bin
        bin_size += run
        i = j
    return assign


def _tie_group_starts(sorted_values: np.ndarray) -> np.ndarray:
    """Start index of every maximal run of equal values (sorted input)."""
    changes = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
    return np.concatenate(([0], changes)).astype(np.int64)


def _clumps_from_groups(
    q_x: np.ndarray, group_starts: np.ndarray, n: int
) -> np.ndarray:
    """Clump boundaries given precomputed x tie-group starts.

    A clump is a maximal run of x-consecutive points that share a y-row.
    An x tie group spanning several rows is atomic: it becomes its own
    (mixed) clump, labelled distinctly so it cannot merge with neighbours.
    """
    if group_starts.size == n:
        labels = q_x
    else:
        gmin = np.minimum.reduceat(q_x, group_starts)
        gmax = np.maximum.reduceat(q_x, group_starts)
        hetero = gmax > gmin
        if hetero.any():
            sizes = np.diff(np.append(group_starts, n))
            group_of = np.repeat(np.arange(group_starts.size), sizes)
            # Negative labels are one-per-group, so a mixed group never
            # merges with anything — including an adjacent mixed group.
            labels = np.where(hetero[group_of], -group_of - 1, q_x)
        else:
            labels = q_x
    changes = np.flatnonzero(labels[1:] != labels[:-1]) + 1
    return np.concatenate(([0], changes, [n])).astype(np.int64)


def _clumps(x_sorted: np.ndarray, q_by_xorder: np.ndarray) -> np.ndarray:
    """Clump boundaries (cumulative point counts) along the x axis.

    Args:
        x_sorted: x values sorted ascending.
        q_by_xorder: row index of each point, in x order.

    Returns:
        Array ``c`` with ``c[0] == 0`` and ``c[-1] == n`` so that clump ``t``
        covers points ``c[t-1]:c[t]``.
    """
    n = x_sorted.size
    starts = _tie_group_starts(np.asarray(x_sorted))
    return _clumps_from_groups(
        np.asarray(q_by_xorder, dtype=np.int64), starts, n
    )


def _superclumps(boundaries: np.ndarray, n: int, k_hat: int) -> np.ndarray:
    """Coarsen clump boundaries down to at most ``k_hat`` superclumps.

    Walks the clumps in order, closing a superclump whenever its size
    reaches the equipartition target.  Clumps are atomic.  The walk jumps
    straight to each closing clump with a binary search, so the cost scales
    with the number of superclumps produced, not the number of clumps.
    """
    k = boundaries.size - 1
    if k <= k_hat:
        return boundaries
    blist = boundaries.tolist()
    out = [0]
    append = out.append
    filled = 0.0
    target = n / k_hat
    closed = 0
    t = 0
    while t < k:
        nxt = bisect_left(blist, filled + target)
        if nxt > k:
            nxt = k
        closing = blist[nxt]
        append(closing)
        closed += 1
        filled = float(closing)
        remaining = k_hat - closed
        target = (n - filled) / (remaining if remaining > 0 else 1)
        t = nxt
    return np.asarray(out, dtype=np.int64)


def _cum_counts(
    q_x: np.ndarray, boundaries: np.ndarray, realised_rows: int
) -> np.ndarray:
    """Cumulative per-row counts at each clump boundary, shape (k+1, rows)."""
    k = boundaries.size - 1
    seg = np.repeat(np.arange(k), np.diff(boundaries))
    flat = np.bincount(
        seg * realised_rows + q_x, minlength=k * realised_rows
    )
    cum = np.zeros((k + 1, realised_rows), dtype=np.int64)
    np.cumsum(flat.reshape(k, realised_rows), axis=0, out=cum[1:])
    return cum


class _Workspace:
    """Reusable scratch matrices for the per-grid dynamic programme.

    The DP allocates several ``(k+1, k+1)`` temporaries per grid
    resolution; at realistic window sizes each is large enough that a
    fresh allocation costs page faults every time.  One workspace amortises
    them across all grids of a pair — and, via :mod:`repro.stats.micfast`,
    across the whole association matrix.  Buffers only ever grow.
    """

    __slots__ = ("cap", "f0", "f1", "f2", "i0", "i1", "b0")

    def __init__(self) -> None:
        self.cap = 0

    def ensure(self, width: int) -> None:
        """Guarantee capacity for ``(width, width)`` scratch matrices."""
        if width > self.cap:
            self.cap = width
            sq = width * width
            self.f0 = np.empty(sq)
            self.f1 = np.empty(sq)
            self.f2 = np.empty(sq)
            self.i0 = np.empty(sq, dtype=np.int64)
            self.i1 = np.empty(sq, dtype=np.int64)
            self.b0 = np.empty(sq, dtype=bool)

    @staticmethod
    def mat(flat: np.ndarray, width: int) -> np.ndarray:
        """A ``(width, width)`` view over a flat scratch buffer."""
        return flat[: width * width].reshape(width, width)


def _entropy_gains(
    cum: np.ndarray,
    nlogn: np.ndarray | None = None,
    work: _Workspace | None = None,
) -> np.ndarray:
    """Pairwise column-gain matrix for the x-axis DP.

    ``cum[s]`` holds per-row cumulative counts of the first ``s`` clumps.
    Entry ``(s, t)`` (for ``s < t``) is the unnormalised contribution of a
    column spanning clumps ``s+1 .. t`` to ``-n * H(Q | P)``:

        gain(s, t) = sum_rows  m_r * log(m_r / m)
                   = sum_rows  m_r * log(m_r)  -  m * log(m)

    with ``m_r`` the per-row counts inside the column and ``m`` its total —
    both integers, so both terms come from the ``nlogn`` lookup table.
    """
    if nlogn is None:
        nlogn = _nlogn_table(int(cum[-1].sum()))
    if work is None:
        work = _Workspace()
    k_plus_1 = cum.shape[0]
    work.ensure(k_plus_1)
    totals = _Workspace.mat(work.i0, k_plus_1)
    diff = _Workspace.mat(work.i1, k_plus_1)
    gains = _Workspace.mat(work.f0, k_plus_1)
    gathered = _Workspace.mat(work.f1, k_plus_1)
    invalid = _Workspace.mat(work.b0, k_plus_1)
    # Column totals come straight from the boundary positions: the total of
    # clumps s+1..t is boundary[t] - boundary[s].
    b = cum.sum(axis=1)
    np.subtract(b[None, :], b[:, None], out=totals)  # (s, t)
    # Invalid cells (s >= t) have totals <= 0; their negative differences
    # clip to the table's 0 entry, and the mask at the end overwrites them.
    np.take(nlogn, totals, out=gains, mode="clip")
    np.negative(gains, out=gains)
    cum_t = np.ascontiguousarray(cum.T)  # (rows, k+1)
    for row_counts in cum_t:
        np.subtract(row_counts[None, :], row_counts[:, None], out=diff)
        np.take(nlogn, diff, out=gathered, mode="clip")
        gains += gathered
    np.less_equal(totals, 0, out=invalid)
    gains[invalid] = -np.inf
    return gains


def _optimize_axis(
    q_counts_cum: np.ndarray,
    n: int,
    max_cols: int,
    nlogn: np.ndarray | None = None,
    work: _Workspace | None = None,
) -> np.ndarray:
    """Maximal ``-n * H(Q|P)`` for each column count ``l = 1 .. max_cols``.

    Args:
        q_counts_cum: ``(k+1, rows)`` cumulative per-row counts at each
            clump boundary.
        n: total number of points.
        max_cols: largest number of x-axis columns to evaluate.
        nlogn: optional precomputed ``m * log(m)`` table covering ``0 .. n``.

    Returns:
        Array ``G`` of length ``max_cols + 1``; ``G[l]`` is the optimum for
        ``l`` columns (``G[0]`` unused, ``-inf``).
    """
    k = q_counts_cum.shape[0] - 1
    if work is None:
        work = _Workspace()
    gains = _entropy_gains(q_counts_cum, nlogn, work)
    max_cols = min(max_cols, k)
    out = np.full(max_cols + 1, -np.inf)
    # G_l[t] = best value partitioning the first t clumps into l columns.
    g_prev = gains[0, :].copy()  # l = 1: single column over clumps 1..t
    out[1] = g_prev[k]
    if max_cols >= 2:
        buf = _Workspace.mat(work.f2, k + 1)
        g_curr = np.empty_like(g_prev)
        for l in range(2, max_cols + 1):
            # g_curr[t] = max_s g_prev[s] + gains[s, t]
            np.add(g_prev[:, None], gains, out=buf)
            buf.max(axis=0, out=g_curr)
            out[l] = g_curr[k]
            g_prev, g_curr = g_curr, g_prev
    return out


class ColumnPrep:
    """Pair-independent precompute of one metric column.

    Everything MIC needs from a column alone: its stable argsort order,
    the tie-group starts of the sorted values (clump construction), and
    the *plan* — the family of y-axis equipartitions, one entry per
    distinct ``(row assignment, column budget)`` the grid-budget sweep
    produces.  Entries whose assignment and budget duplicate an earlier
    row count are dropped: the downstream computation would be
    bit-identical, so deduplication is a pure speedup.

    Attributes:
        order: stable argsort of the column.
        group_starts: start index of each tie group in sorted order.
        plan: list of ``(max_cols, q, realised_rows)`` with ``q`` the row
            assignment in original index order.
    """

    __slots__ = ("order", "group_starts", "plan")

    def __init__(
        self,
        order: np.ndarray,
        group_starts: np.ndarray,
        plan: list[tuple[int, np.ndarray, int]],
    ) -> None:
        self.order = order
        self.group_starts = group_starts
        self.plan = plan


def prepare_column(
    values: np.ndarray,
    budget: int,
    params: MICParameters | None = None,
) -> ColumnPrep:
    """Precompute the shareable per-column state for :class:`ColumnPrep`.

    Args:
        values: one finite, non-constant column.
        budget: grid-size budget ``B(n)`` of the sample count.
        params: optional tuning constants.

    Returns:
        The column's :class:`ColumnPrep`.
    """
    params = params or _DEFAULT_PARAMS
    vals = np.ascontiguousarray(values, dtype=float)
    n = vals.size
    order = np.argsort(vals, kind="stable")
    svals = vals[order]
    group_starts = _tie_group_starts(svals)
    plan: list[tuple[int, np.ndarray, int]] = []
    seen: set[tuple[bytes, int]] = set()
    max_rows = budget // 2
    for rows in range(2, max_rows + 1):
        max_cols = budget // rows
        if max_cols < 2:
            break
        q_sorted = _equipartition(svals, rows)
        realised_rows = int(q_sorted[-1]) + 1
        if realised_rows < 2:
            continue  # too many ties to form two rows
        key = (q_sorted.tobytes(), max_cols)
        if key in seen:
            continue
        seen.add(key)
        q = np.empty(n, dtype=np.int64)
        q[order] = q_sorted
        plan.append((max_cols, q, realised_rows))
    return ColumnPrep(order, group_starts, plan)


def _half_characteristic_prepared(
    prep_x: ColumnPrep,
    prep_y: ColumnPrep,
    n: int,
    params: MICParameters,
    nlogn: np.ndarray,
    work: _Workspace | None = None,
) -> dict[tuple[int, int], float]:
    """Characteristic-matrix entries with the y axis equipartitioned.

    Returns a map from realised grid shape ``(cols, realised_rows)`` to
    mutual information in nats (unnormalised).  Keying by the *realised*
    row count is what makes heavily tied columns normalise correctly: a
    requested 8-row grid that ties collapse to 2 rows is a 2-row grid.
    """
    entries: dict[tuple[int, int], float] = {}
    if work is None:
        work = _Workspace()
    order_x = prep_x.order
    for max_cols, q, realised_rows in prep_y.plan:
        q_x = q[order_x]
        boundaries = _clumps_from_groups(q_x, prep_x.group_starts, n)
        k_hat = max(params.clumps_factor * max_cols, 2)
        boundaries = _superclumps(boundaries, n, k_hat)
        k = boundaries.size - 1
        cum = _cum_counts(q_x, boundaries, realised_rows)
        # H(Q) over all points, in nats.
        row_totals = cum[-1].astype(float)
        probs = row_totals / n
        h_q = -float(np.sum(probs[probs > 0] * np.log(probs[probs > 0])))
        g = _optimize_axis(cum, n, max_cols, nlogn, work)
        for cols in range(2, min(max_cols, k) + 1):
            if not np.isfinite(g[cols]):
                continue
            mi = h_q + g[cols] / n
            key = (cols, realised_rows)
            if mi > entries.get(key, -np.inf):
                entries[key] = mi
    return entries


def _half_characteristic(
    x: np.ndarray, y: np.ndarray, budget: int, params: MICParameters
) -> dict[tuple[int, int], float]:
    """One-shot form of :func:`_half_characteristic_prepared`."""
    n = x.size
    prep_x = prepare_column(x, budget, params)
    prep_y = prepare_column(y, budget, params)
    return _half_characteristic_prepared(
        prep_x, prep_y, n, params, _nlogn_table(n)
    )


def _mic_prepared(
    prep_x: ColumnPrep,
    prep_y: ColumnPrep,
    n: int,
    params: MICParameters,
    nlogn: np.ndarray,
    work: _Workspace | None = None,
) -> float:
    """MIC of two prepared columns (both all-finite and non-constant)."""
    if work is None:
        work = _Workspace()
    best = 0.0
    for first, second in ((prep_x, prep_y), (prep_y, prep_x)):
        entries = _half_characteristic_prepared(
            first, second, n, params, nlogn, work
        )
        for (cols, rows), mi in entries.items():
            denom = np.log(min(cols, rows))
            if denom <= 0:
                continue
            score = mi / denom
            if score > best:
                best = score
    return float(min(max(best, 0.0), 1.0))


def mic(
    x: np.ndarray | list[float],
    y: np.ndarray | list[float],
    params: MICParameters | None = None,
) -> float:
    """Maximal Information Coefficient between two samples.

    Args:
        x: first sample.
        y: second sample, same length.
        params: optional tuning constants; defaults match minepy
            (``alpha=0.6``, ``c=15``).

    Returns:
        MIC score in ``[0, 1]``.  Returns 0.0 when either input is constant
        (no association can be expressed) or when fewer than 4 paired
        observations are available.
    """
    params = params or _DEFAULT_PARAMS
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(
            f"x and y must be 1-D of equal length, got {xa.shape} and {ya.shape}"
        )
    mask = np.isfinite(xa) & np.isfinite(ya)
    xa, ya = xa[mask], ya[mask]
    n = xa.size
    if n < 4:
        return 0.0
    # repro: disable=float-equality — exact zero range is the degenerate case
    if np.ptp(xa) == 0.0 or np.ptp(ya) == 0.0:
        return 0.0
    budget = params.budget(n)
    prep_x = prepare_column(xa, budget, params)
    prep_y = prepare_column(ya, budget, params)
    return _mic_prepared(prep_x, prep_y, n, params, _nlogn_table(n))


def mic_matrix(
    data: np.ndarray,
    params: MICParameters | None = None,
    max_workers: int | None = None,
) -> np.ndarray:
    """Pairwise MIC over the columns of a samples-by-metrics array.

    Delegates to the shared-precompute engine in
    :mod:`repro.stats.micfast`, which computes each column's sort order
    and equipartition family once and reuses them across all pairs.

    Args:
        data: array of shape ``(n_samples, n_metrics)``.
        params: optional tuning constants.
        max_workers: parallelism knob — ``None`` runs serial, ``0`` uses
            all CPUs, a positive value caps the process pool size.

    Returns:
        Symmetric ``(n_metrics, n_metrics)`` matrix with unit diagonal.
    """
    from repro.stats.micfast import mic_matrix_fast

    return mic_matrix_fast(data, params=params, max_workers=max_workers)

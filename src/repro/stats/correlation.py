"""Association and regression helpers used across the evaluation.

These are the small statistical utilities the paper leans on outside the two
big engines: Pearson/Spearman correlation (Fig. 4's CPI-vs-execution-time
validation), second-order polynomial fitting (the monotone CPI/time fit) and
min-normalisation (the paper normalises both series "to the minimum value"
within a group).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pearson",
    "spearman",
    "polyfit2",
    "normalize_to_min",
    "percentile",
]


def _paired(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(
            f"inputs must be 1-D of equal length, got {xa.shape} and {ya.shape}"
        )
    if xa.size < 2:
        raise ValueError("need at least two paired observations")
    return xa, ya


def pearson(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> float:
    """Pearson correlation coefficient.

    Returns 0.0 when either sample is constant (correlation undefined).
    """
    xa, ya = _paired(x, y)
    sx = xa.std()
    sy = ya.std()
    # repro: disable=float-equality — exact zero std is the degenerate case
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((xa - xa.mean()) * (ya - ya.mean())) / (sx * sy))


def spearman(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> float:
    """Spearman rank correlation (Pearson over midranks)."""
    xa, ya = _paired(x, y)

    def midrank(arr: np.ndarray) -> np.ndarray:
        order = np.argsort(arr, kind="stable")
        ranks = np.empty(arr.size, dtype=float)
        sorted_vals = arr[order]
        i = 0
        while i < arr.size:
            j = i + 1
            while j < arr.size and sorted_vals[j] == sorted_vals[i]:
                j += 1
            ranks[order[i:j]] = 0.5 * (i + j - 1) + 1.0
            i = j
        return ranks

    return pearson(midrank(xa), midrank(ya))


def polyfit2(
    x: np.ndarray | list[float], y: np.ndarray | list[float]
) -> tuple[np.ndarray, float]:
    """Least-squares 2nd-order polynomial fit, as used in Fig. 4 (c)/(d).

    Args:
        x: predictor values.
        y: response values.

    Returns:
        Tuple ``(coefficients, r_squared)`` where coefficients are ordered
        ``(c2, c1, c0)`` for ``y = c2 x^2 + c1 x + c0``.
    """
    xa, ya = _paired(x, y)
    if xa.size < 3:
        raise ValueError("need at least three points for a quadratic fit")
    coeffs = np.polyfit(xa, ya, deg=2)
    fitted = np.polyval(coeffs, xa)
    ss_res = float(np.sum((ya - fitted) ** 2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return coeffs, r2


def normalize_to_min(values: np.ndarray | list[float]) -> np.ndarray:
    """Normalise a positive series to its minimum (paper §3.1, Fig. 4).

    Args:
        values: strictly positive values.

    Returns:
        ``values / min(values)`` — the minimum maps to 1.0.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot normalise an empty series")
    lo = float(arr.min())
    if lo <= 0.0:
        raise ValueError(f"values must be strictly positive, min is {lo}")
    return arr / lo


def percentile(values: np.ndarray | list[float], q: float) -> float:
    """Percentile helper (paper uses the 95th percentile of CPI as the
    per-run sufficient statistic and of residuals as a threshold rule).

    Args:
        values: sample.
        q: percentile in [0, 100].
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))

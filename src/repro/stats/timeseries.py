"""Core time-series primitives shared by the ARIMA and ARX models.

Everything here operates on one-dimensional :class:`numpy.ndarray` series and
is deliberately free of any project-specific concepts: differencing,
autocorrelation, partial autocorrelation, information criteria and a
light-weight stationarity check.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "difference",
    "undifference",
    "acf",
    "pacf",
    "aic",
    "bic",
    "is_stationary",
    "ljung_box",
]


def _as_series(values: np.ndarray | list[float]) -> np.ndarray:
    """Validate and convert input to a 1-D float array."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("series is empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError("series contains NaN or infinite values")
    return arr


def difference(series: np.ndarray | list[float], order: int = 1) -> np.ndarray:
    """Apply ``order`` rounds of first differencing.

    Differencing is the "I" in ARIMA: it removes trend so the AR/MA parts
    model a (weakly) stationary process.

    Args:
        series: input series of length ``n``.
        order: number of differencing passes (``d`` in ARIMA); 0 returns a
            copy of the input.

    Returns:
        Array of length ``n - order``.
    """
    arr = _as_series(series)
    if order < 0:
        raise ValueError(f"differencing order must be >= 0, got {order}")
    if order >= arr.size:
        raise ValueError(
            f"cannot difference a length-{arr.size} series {order} times"
        )
    if order == 0:
        return arr.copy()
    for _ in range(order):
        arr = np.diff(arr)
    return arr


def undifference(
    diffed: np.ndarray | list[float],
    heads: np.ndarray | list[float],
) -> np.ndarray:
    """Invert :func:`difference`.

    Args:
        diffed: the differenced series.
        heads: the leading values dropped by each differencing pass, ordered
            from the outermost pass inward (``heads[0]`` is the first value
            of the original series).  Its length determines the differencing
            order to undo.

    Returns:
        The reconstructed series of length ``len(diffed) + len(heads)``.
    """
    arr = np.asarray(diffed, dtype=float)
    head_arr = np.asarray(heads, dtype=float)
    for head in head_arr[::-1]:
        arr = np.concatenate(([head], head + np.cumsum(arr)))
    return arr


def acf(series: np.ndarray | list[float], nlags: int) -> np.ndarray:
    """Sample autocorrelation function.

    Uses the biased (1/n) covariance estimator, the standard choice for
    Yule-Walker style fitting because it guarantees a positive-definite
    autocovariance sequence.

    Args:
        series: input series.
        nlags: largest lag to compute.

    Returns:
        Array ``rho`` of length ``nlags + 1`` with ``rho[0] == 1``.
    """
    arr = _as_series(series)
    if nlags < 0:
        raise ValueError(f"nlags must be >= 0, got {nlags}")
    if nlags >= arr.size:
        raise ValueError(f"nlags={nlags} too large for series of length {arr.size}")
    centered = arr - arr.mean()
    denom = float(centered @ centered)
    # repro: disable=float-equality — exact zero energy is the degenerate case
    if denom == 0.0:
        # A constant series is perfectly "autocorrelated" by convention.
        return np.ones(nlags + 1)
    out = np.empty(nlags + 1)
    out[0] = 1.0
    for lag in range(1, nlags + 1):
        out[lag] = float(centered[lag:] @ centered[:-lag]) / denom
    return out


def pacf(series: np.ndarray | list[float], nlags: int) -> np.ndarray:
    """Sample partial autocorrelation function via Durbin-Levinson.

    Args:
        series: input series.
        nlags: largest lag to compute.

    Returns:
        Array ``phi`` of length ``nlags + 1`` with ``phi[0] == 1``; entry
        ``phi[k]`` is the lag-``k`` partial autocorrelation.
    """
    rho = acf(series, nlags)
    out = np.empty(nlags + 1)
    out[0] = 1.0
    if nlags == 0:
        return out
    # Durbin-Levinson recursion.
    phi_prev = np.zeros(nlags + 1)
    phi_curr = np.zeros(nlags + 1)
    phi_prev[1] = rho[1]
    out[1] = rho[1]
    for k in range(2, nlags + 1):
        num = rho[k] - float(phi_prev[1:k] @ rho[k - 1 : 0 : -1])
        den = 1.0 - float(phi_prev[1:k] @ rho[1:k])
        alpha = num / den if abs(den) > 1e-12 else 0.0
        phi_curr[k] = alpha
        phi_curr[1:k] = phi_prev[1:k] - alpha * phi_prev[k - 1 : 0 : -1]
        out[k] = alpha
        phi_prev, phi_curr = phi_curr.copy(), phi_prev
    return out


def aic(rss: float, n_obs: int, n_params: int) -> float:
    """Akaike information criterion for a Gaussian least-squares fit.

    Args:
        rss: residual sum of squares.
        n_obs: number of fitted observations.
        n_params: number of estimated parameters (excluding the variance).
    """
    if n_obs <= 0:
        raise ValueError("n_obs must be positive")
    sigma2 = max(rss / n_obs, 1e-300)
    return n_obs * float(np.log(sigma2)) + 2.0 * n_params


def bic(rss: float, n_obs: int, n_params: int) -> float:
    """Bayesian information criterion for a Gaussian least-squares fit."""
    if n_obs <= 0:
        raise ValueError("n_obs must be positive")
    sigma2 = max(rss / n_obs, 1e-300)
    return n_obs * float(np.log(sigma2)) + n_params * float(np.log(n_obs))


def is_stationary(series: np.ndarray | list[float], threshold: float = 0.05) -> bool:
    """Cheap stationarity screen used to choose the differencing order ``d``.

    This is a Dickey-Fuller-style test: regress ``diff(y)`` on ``y[:-1]`` and
    an intercept, and examine the t-statistic of the lag coefficient.  Rather
    than interpolating the Dickey-Fuller distribution we use the conventional
    5 % critical value (-2.86 for the constant-only case), which is accurate
    enough for the "does CPI need one difference?" decision the pipeline
    makes.

    Args:
        series: input series (length >= 8).
        threshold: nominal test level; only 0.05 and 0.01 are tabulated.

    Returns:
        True when the unit-root hypothesis is rejected (series looks
        stationary).
    """
    arr = _as_series(series)
    if arr.size < 8:
        raise ValueError("need at least 8 observations for the stationarity test")
    # repro: disable=float-equality — exact zero range is the degenerate case
    if np.ptp(arr) == 0.0:
        return True  # a constant series is trivially stationary
    dy = np.diff(arr)
    y_lag = arr[:-1]
    design = np.column_stack([y_lag, np.ones_like(y_lag)])
    coef, residuals, rank, _ = np.linalg.lstsq(design, dy, rcond=None)
    fitted = design @ coef
    resid = dy - fitted
    dof = max(dy.size - 2, 1)
    sigma2 = float(resid @ resid) / dof
    xtx_inv = np.linalg.pinv(design.T @ design)
    se = float(np.sqrt(max(sigma2 * xtx_inv[0, 0], 1e-300)))
    t_stat = float(coef[0]) / se if se > 0 else 0.0
    critical = {0.05: -2.86, 0.01: -3.43}.get(threshold, -2.86)
    return t_stat < critical


def ljung_box(
    residuals: np.ndarray | list[float],
    nlags: int = 10,
    n_fitted_params: int = 0,
) -> tuple[float, float]:
    """Ljung-Box portmanteau test for residual whiteness.

    Args:
        residuals: model residuals.
        nlags: number of autocorrelation lags pooled into the statistic.
        n_fitted_params: degrees of freedom consumed by the model (p + q for
            an ARMA fit); subtracted from the chi-square dof.

    Returns:
        Tuple ``(Q, p_value)``.  A large p-value means the residuals are
        consistent with white noise.
    """
    from scipy import stats as sps

    arr = _as_series(residuals)
    n = arr.size
    if nlags >= n:
        raise ValueError("nlags must be smaller than the series length")
    rho = acf(arr, nlags)
    q_stat = n * (n + 2) * float(np.sum(rho[1:] ** 2 / (n - np.arange(1, nlags + 1))))
    dof = max(nlags - n_fitted_params, 1)
    p_value = float(sps.chi2.sf(q_stat, dof))
    return q_stat, p_value

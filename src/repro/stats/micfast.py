"""Shared-precompute MIC engine for association matrices.

Computing an association matrix the naive way pays the full MINE cost —
argsort, y-axis equipartition family, clump construction, dynamic
programme — for every one of the M(M-1)/2 metric pairs, even though the
argsort and the equipartition family depend on a *single* column.  This
module amortises that per-column work across all M-1 pairs a column
appears in, and adds two orthogonal accelerators:

- an optional ``concurrent.futures`` process pool over the pair list
  (``max_workers``), with an automatic serial fallback when a pool cannot
  be created — results are identical either way, workers just redo the
  column precompute for their own slice of pairs;
- a content-hash LRU cache of whole association matrices
  (:class:`AssociationCache`), so an online monitor re-scoring an
  unchanged window, or a batch pipeline revisiting a run, never recomputes
  an identical input.

Equivalence contract: for every pair, the engine returns *exactly* the
value of :func:`repro.stats.mic.mic` on the two columns.  Pairs where the
shared precompute does not apply — a column with NaNs (masking is
pairwise), a constant column, or fewer than 4 samples — fall back to the
scalar path, which handles them natively.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

import numpy as np

import repro.obs as obs
from repro.stats.mic import (
    MICParameters,
    _DEFAULT_PARAMS,
    _mic_prepared,
    _nlogn_table,
    _Workspace,
    mic,
    prepare_column,
)

__all__ = [
    "mic_matrix_fast",
    "cached_mic_matrix",
    "resolve_workers",
    "AssociationCache",
    "association_cache",
    "clear_association_cache",
]

#: Below this many pairs the pool's start-up cost dwarfs the work.
_MIN_PARALLEL_PAIRS = 16

_log = obs.get_logger("stats.micfast")


def resolve_workers(max_workers: int | None) -> int:
    """Normalise the ``max_workers`` knob to a concrete worker count.

    ``None`` means serial (1 worker, no pool), ``0`` means one worker per
    CPU, and a positive integer is used as-is.  Negative values are an
    error.
    """
    if max_workers is None:
        return 1
    workers = int(max_workers)
    if workers < 0:
        raise ValueError(f"max_workers must be >= 0, got {max_workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


class _PrepTable:
    """Lazy per-column :class:`~repro.stats.mic.ColumnPrep` store.

    A column is *sharable* when the fast path applies to it: all values
    finite (so the pairwise NaN mask never fires), non-constant, and at
    least 4 samples.  Pairs with a non-sharable member use the scalar
    :func:`~repro.stats.mic.mic`, which is also the cheap path for them
    (constants short-circuit to 0.0; NaN masking must be pairwise anyway).
    """

    def __init__(self, arr: np.ndarray, params: MICParameters) -> None:
        self.arr = arr
        self.params = params
        n, m = arr.shape
        self.n = n
        self.budget = params.budget(n)
        self.sharable = np.zeros(m, dtype=bool)
        if n >= 4 and m:
            finite = np.isfinite(arr).all(axis=0)
            if finite.any():
                self.sharable[finite] = np.ptp(arr[:, finite], axis=0) > 0
        self.nlogn = _nlogn_table(n) if self.sharable.any() else None
        self._work = _Workspace()
        self._preps: dict[int, object] = {}

    def _prep(self, idx: int):
        prep = self._preps.get(idx)
        if prep is None:
            prep = prepare_column(self.arr[:, idx], self.budget, self.params)
            self._preps[idx] = prep
        return prep

    def pair_score(self, i: int, j: int) -> float:
        """MIC of columns ``i`` and ``j``, sharing precompute when valid."""
        if self.sharable[i] and self.sharable[j]:
            return _mic_prepared(
                self._prep(i),
                self._prep(j),
                self.n,
                self.params,
                self.nlogn,
                self._work,
            )
        return mic(self.arr[:, i], self.arr[:, j], self.params)


# Per-process state of pool workers, set once by the pool initializer so
# each worker builds its column precompute at most once per column.
_WORKER_TABLE: _PrepTable | None = None


def _pool_init(arr: np.ndarray, params: MICParameters) -> None:
    global _WORKER_TABLE
    _WORKER_TABLE = _PrepTable(arr, params)


def _pool_chunk(
    pairs: list[tuple[int, int]],
) -> list[tuple[int, int, float]]:
    table = _WORKER_TABLE
    if table is None:
        raise RuntimeError("MIC pool worker used before initialisation")
    return [(i, j, table.pair_score(i, j)) for i, j in pairs]


def _chunk_pairs(
    pairs: list[tuple[int, int]], workers: int
) -> list[list[tuple[int, int]]]:
    """Strided split so long and short pairs spread across chunks."""
    n_chunks = max(1, min(len(pairs), workers * 4))
    return [pairs[c::n_chunks] for c in range(n_chunks)]


def _parallel_scores(
    arr: np.ndarray,
    params: MICParameters,
    pairs: list[tuple[int, int]],
    workers: int,
) -> list[tuple[int, int, float]] | None:
    """Score pairs on a process pool; None signals 'fall back to serial'."""
    chunks = _chunk_pairs(pairs, workers)
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_init,
            initargs=(arr, params),
        ) as pool:
            chunk_results = list(pool.map(_pool_chunk, chunks))
    except (OSError, RuntimeError) as exc:
        # Once per process: a monitor scoring thousands of windows on a
        # pool-less host must not emit thousands of identical warnings.
        obs.warn_once(
            "micfast.serial-fallback",
            f"MIC process pool unavailable ({exc!r}); "
            "falling back to serial execution",
            category=RuntimeWarning,
            logger=_log,
            stacklevel=3,  # point at mic_matrix_fast's caller, as before
        )
        return None
    return [item for chunk in chunk_results for item in chunk]


def mic_matrix_fast(
    data: np.ndarray,
    params: MICParameters | None = None,
    max_workers: int | None = None,
) -> np.ndarray:
    """Pairwise MIC over columns, with per-column precompute shared.

    Args:
        data: array of shape ``(n_samples, n_metrics)``.
        params: optional tuning constants.
        max_workers: ``None`` → serial; ``0`` → one process per CPU;
            ``k > 0`` → at most ``k`` pool processes.  The pool falls back
            to serial (with a warning) if it cannot be created.

    Returns:
        Symmetric ``(n_metrics, n_metrics)`` matrix with unit diagonal,
        equal entry-for-entry to scalar :func:`repro.stats.mic.mic`.
    """
    params = params or _DEFAULT_PARAMS
    arr = np.ascontiguousarray(data, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
    m = arr.shape[1]
    out = np.eye(m)
    pairs = [(i, j) for i in range(m) for j in range(i + 1, m)]
    if not pairs:
        return out
    workers = resolve_workers(max_workers)
    with obs.span("mic.sweep") as sp:
        scores: list[tuple[int, int, float]] | None = None
        if workers > 1 and len(pairs) >= _MIN_PARALLEL_PAIRS:
            scores = _parallel_scores(arr, params, pairs, workers)
        parallel = scores is not None
        if scores is None:
            table = _PrepTable(arr, params)
            scores = [(i, j, table.pair_score(i, j)) for i, j in pairs]
        if sp:
            sp.set(
                pairs=len(pairs),
                samples=arr.shape[0],
                workers=workers,
                parallel=parallel,
            )
    if obs.enabled():
        obs.metrics_registry().counter(
            "invarnetx_mic_pairs_scored_total",
            "Metric pairs scored by the MIC engine",
        ).inc(len(pairs))
    for i, j, score in scores:
        out[i, j] = score
        out[j, i] = score
    return out


class AssociationCache:
    """Content-addressed LRU cache of association matrices.

    Keys hash the window's bytes, shape, dtype, and the MIC parameters, so
    two windows collide only when their content is identical — exactly the
    case where recomputation is waste.  Stored and returned matrices are
    copies; callers can mutate their result freely.  Thread-safe.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()  # repro: guarded-by=_lock
        self._lock = threading.Lock()
        self.hits = 0  # repro: guarded-by=_lock
        self.misses = 0  # repro: guarded-by=_lock

    @staticmethod
    def key_for(data: np.ndarray, params: MICParameters) -> str:
        """Content hash of a window under the given MIC parameters."""
        arr = np.ascontiguousarray(data, dtype=float)
        digest = hashlib.sha256()
        header = (
            arr.shape,
            str(arr.dtype),
            params.alpha,
            params.clumps_factor,
        )
        digest.update(repr(header).encode())
        digest.update(arr.tobytes())
        return digest.hexdigest()

    def get(self, key: str) -> np.ndarray | None:
        """Cached matrix for ``key`` (a copy), or None on a miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cached.copy()

    def put(self, key: str, matrix: np.ndarray) -> None:
        """Store a matrix, evicting the least recently used past maxsize."""
        with self._lock:
            self._entries[key] = np.array(matrix, dtype=float, copy=True)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        """Current size and hit/miss counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_GLOBAL_CACHE = AssociationCache()


def association_cache() -> AssociationCache:
    """The process-wide association-matrix cache."""
    return _GLOBAL_CACHE


def clear_association_cache() -> None:
    """Empty the process-wide association-matrix cache."""
    _GLOBAL_CACHE.clear()


def cached_mic_matrix(
    data: np.ndarray,
    params: MICParameters | None = None,
    max_workers: int | None = None,
    cache: AssociationCache | None = None,
) -> np.ndarray:
    """:func:`mic_matrix_fast` behind the content-hash LRU cache.

    Args:
        data: array of shape ``(n_samples, n_metrics)``.
        params: optional tuning constants (part of the cache key).
        max_workers: parallelism knob, forwarded on a miss.
        cache: cache instance; defaults to the process-wide one.

    Returns:
        The association matrix; a fresh array on both hit and miss.
    """
    params = params or _DEFAULT_PARAMS
    cache = cache if cache is not None else _GLOBAL_CACHE
    arr = np.ascontiguousarray(data, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
    key = AssociationCache.key_for(arr, params)
    cached = cache.get(key)
    if cached is not None:
        if obs.enabled():
            obs.metrics_registry().counter(
                "invarnetx_mic_cache_hits_total",
                "Association-matrix cache hits",
            ).inc()
        return cached
    if obs.enabled():
        obs.metrics_registry().counter(
            "invarnetx_mic_cache_misses_total",
            "Association-matrix cache misses",
        ).inc()
    matrix = mic_matrix_fast(arr, params=params, max_workers=max_workers)
    cache.put(key, matrix)
    return matrix

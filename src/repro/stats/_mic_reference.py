"""Reference (pre-engine) MIC implementation — the validation baseline.

This module is a frozen snapshot of the original per-pair MIC
implementation that :mod:`repro.stats.mic` shipped before the shared
precompute engine (:mod:`repro.stats.micfast`) replaced it on the hot
path.  It re-sorts and re-equipartitions every column from scratch for
every pair, exactly as the original did, and is kept for two reasons:

1. **Numerical ground truth.**  The equivalence suite asserts that the
   engine agrees with this implementation to within 1e-9 on
   non-degenerate inputs, so any behavioural drift in the optimised
   kernels fails loudly.
2. **Speed baseline.**  ``benchmarks/test_perf_mic_engine.py`` measures
   the engine's speedup against this implementation — the honest
   "pre-PR" cost of an association matrix.

The one deliberate difference from the historical code is the
tie-collapse normalisation fix: characteristic-matrix entries are keyed
by the *realised* number of rows after ``_equipartition`` merges tied
values, not by the requested row count, so MIC normalises by
``log(min(cols, realised_rows))`` per Reshef et al. (Science 2011).
The fix lands in both this reference and the live kernels so the
equivalence comparison stays meaningful.

Do not import this module from production code — it exists for tests
and benchmarks only.
"""

from __future__ import annotations

import numpy as np

from repro.stats.mic import MICParameters

__all__ = ["mic_reference", "mic_matrix_reference"]

_DEFAULT_PARAMS = MICParameters()


def _equipartition(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Assign sorted values to ``num_bins`` bins of near-equal size."""
    n = values.size
    assign = np.empty(n, dtype=np.int64)
    current_bin = 0
    placed = 0
    bin_size = 0
    i = 0
    while i < n:
        j = i + 1
        while j < n and values[j] == values[i]:
            j += 1
        run = j - i
        remaining_bins = num_bins - current_bin
        target = (n - placed) / remaining_bins if remaining_bins else n
        if (
            bin_size > 0
            and current_bin < num_bins - 1
            and abs(bin_size + run - target) >= abs(bin_size - target)
        ):
            current_bin += 1
            placed += bin_size
            bin_size = 0
        assign[i:j] = current_bin
        bin_size += run
        i = j
    return assign


def _clumps(x_sorted: np.ndarray, q_by_xorder: np.ndarray) -> np.ndarray:
    """Clump boundaries (cumulative point counts) along the x axis."""
    n = x_sorted.size
    labels = q_by_xorder.astype(np.int64).copy()
    sentinel = int(labels.max(initial=0)) + 1
    i = 0
    while i < n:
        j = i + 1
        while j < n and x_sorted[j] == x_sorted[i]:
            j += 1
        if j - i > 1 and np.unique(labels[i:j]).size > 1:
            labels[i:j] = sentinel
            sentinel += 1
        i = j
    changes = np.nonzero(labels[1:] != labels[:-1])[0] + 1
    return np.concatenate(([0], changes, [n])).astype(np.int64)


def _superclumps(boundaries: np.ndarray, n: int, k_hat: int) -> np.ndarray:
    """Coarsen clump boundaries down to at most ``k_hat`` superclumps."""
    k = boundaries.size - 1
    if k <= k_hat:
        return boundaries
    out = [0]
    target = n / k_hat
    filled = 0.0
    for t in range(1, k + 1):
        if boundaries[t] >= filled + target or t == k:
            out.append(int(boundaries[t]))
            filled = float(boundaries[t])
            target = (n - filled) / max(k_hat - (len(out) - 1), 1)
    return np.asarray(out, dtype=np.int64)


def _entropy_gains(cum: np.ndarray) -> np.ndarray:
    """Pairwise column-gain matrix for the x-axis DP."""
    k_plus_1 = cum.shape[0]
    counts = cum[None, :, :] - cum[:, None, :]
    totals = counts.sum(axis=2)
    safe_counts = np.maximum(counts, 1)
    safe_totals = np.maximum(totals, 1)
    logs = np.log(safe_counts) - np.log(safe_totals)[:, :, None]
    terms = np.where(counts > 0, counts * logs, 0.0)
    gains = terms.sum(axis=2)
    invalid = np.tril(np.ones((k_plus_1, k_plus_1), dtype=bool))
    gains[invalid] = -np.inf
    gains[totals == 0] = -np.inf
    return gains


def _optimize_axis(
    q_counts_cum: np.ndarray, n: int, max_cols: int
) -> np.ndarray:
    """Maximal ``-n * H(Q|P)`` for each column count ``l = 1 .. max_cols``."""
    k = q_counts_cum.shape[0] - 1
    gains = _entropy_gains(q_counts_cum)
    max_cols = min(max_cols, k)
    out = np.full(max_cols + 1, -np.inf)
    g_prev = gains[0, :].copy()
    out[1] = g_prev[k]
    for l in range(2, max_cols + 1):
        stacked = g_prev[:, None] + gains
        g_curr = stacked.max(axis=0)
        out[l] = g_curr[k]
        g_prev = g_curr
    return out


def _half_characteristic(
    x: np.ndarray, y: np.ndarray, budget: int, params: MICParameters
) -> dict[tuple[int, int], float]:
    """Characteristic-matrix entries with the y axis equipartitioned.

    Entries are keyed by the *realised* grid shape: when ties collapse
    the requested ``rows`` into fewer bins, the key carries the realised
    row count (the tie-collapse normalisation fix).
    """
    n = x.size
    order_x = np.argsort(x, kind="stable")
    x_sorted = x[order_x]
    order_y = np.argsort(y, kind="stable")

    entries: dict[tuple[int, int], float] = {}
    max_rows = budget // 2
    for rows in range(2, max_rows + 1):
        q_sorted = _equipartition(y[order_y], rows)
        q = np.empty(n, dtype=np.int64)
        q[order_y] = q_sorted
        realised_rows = int(q.max()) + 1
        if realised_rows < 2:
            continue
        q_x = q[order_x]
        max_cols = budget // rows
        if max_cols < 2:
            break
        boundaries = _clumps(x_sorted, q_x)
        k_hat = max(params.clumps_factor * max_cols, 2)
        boundaries = _superclumps(boundaries, n, k_hat)
        k = boundaries.size - 1
        onehot_cum = np.zeros((n + 1, realised_rows), dtype=np.int64)
        np.add.at(onehot_cum[1:], (np.arange(n), q_x), 1)
        onehot_cum = np.cumsum(onehot_cum, axis=0)
        cum = onehot_cum[boundaries]
        row_totals = cum[-1].astype(float)
        probs = row_totals / n
        h_q = -float(np.sum(probs[probs > 0] * np.log(probs[probs > 0])))
        g = _optimize_axis(cum, n, max_cols)
        for cols in range(2, min(max_cols, k) + 1):
            if not np.isfinite(g[cols]):
                continue
            mi = h_q + g[cols] / n
            key = (cols, realised_rows)
            if mi > entries.get(key, -np.inf):
                entries[key] = mi
    return entries


def mic_reference(
    x: np.ndarray | list[float],
    y: np.ndarray | list[float],
    params: MICParameters | None = None,
) -> float:
    """MIC via the original per-pair algorithm (plus the tie fix)."""
    params = params or _DEFAULT_PARAMS
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError(
            f"x and y must be 1-D of equal length, got {xa.shape} and {ya.shape}"
        )
    mask = np.isfinite(xa) & np.isfinite(ya)
    xa, ya = xa[mask], ya[mask]
    n = xa.size
    if n < 4:
        return 0.0
    # repro: disable=float-equality — exact zero range is the degenerate case
    if np.ptp(xa) == 0.0 or np.ptp(ya) == 0.0:
        return 0.0
    budget = params.budget(n)

    best = 0.0
    for first, second in ((xa, ya), (ya, xa)):
        entries = _half_characteristic(first, second, budget, params)
        for (cols, rows), mi in entries.items():
            denom = np.log(min(cols, rows))
            if denom <= 0:
                continue
            score = mi / denom
            if score > best:
                best = score
    return float(min(max(best, 0.0), 1.0))


def mic_matrix_reference(
    data: np.ndarray,
    params: MICParameters | None = None,
) -> np.ndarray:
    """Pairwise MIC by the pre-engine path: one cold pair at a time."""
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
    m = arr.shape[1]
    out = np.eye(m)
    for i in range(m):
        for j in range(i + 1, m):
            score = mic_reference(arr[:, i], arr[:, j], params)
            out[i, j] = score
            out[j, i] = score
    return out

"""Statistical substrate for InvarNet-X.

This subpackage provides from-scratch implementations of the two statistical
engines the paper relies on:

- :mod:`repro.stats.arima` — ARIMA(p, d, q) modelling of CPI time series,
  used by the performance-anomaly detector (paper §3.2).
- :mod:`repro.stats.mic` — the Maximal Information Coefficient of
  Reshef et al. (Science, 2011), used to build likely invariants
  (paper §3.3).
- :mod:`repro.stats.micfast` — the shared-precompute MIC engine for
  whole association matrices: per-column precompute reused across all
  pairs, optional process-pool parallelism, and a content-hash LRU cache
  of computed matrices.

Supporting modules supply shared time-series machinery
(:mod:`repro.stats.timeseries`) and association/regression helpers
(:mod:`repro.stats.correlation`).
"""

from repro.stats.arima import ARIMAModel, fit_arima, select_order
from repro.stats.correlation import pearson, polyfit2, spearman
from repro.stats.mic import mic, mic_matrix
from repro.stats.micfast import (
    AssociationCache,
    association_cache,
    cached_mic_matrix,
    clear_association_cache,
    mic_matrix_fast,
)
from repro.stats.timeseries import acf, difference, pacf, undifference

__all__ = [
    "ARIMAModel",
    "fit_arima",
    "select_order",
    "mic",
    "mic_matrix",
    "mic_matrix_fast",
    "cached_mic_matrix",
    "AssociationCache",
    "association_cache",
    "clear_association_cache",
    "pearson",
    "spearman",
    "polyfit2",
    "acf",
    "pacf",
    "difference",
    "undifference",
]

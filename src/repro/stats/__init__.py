"""Statistical substrate for InvarNet-X.

This subpackage provides from-scratch implementations of the two statistical
engines the paper relies on:

- :mod:`repro.stats.arima` — ARIMA(p, d, q) modelling of CPI time series,
  used by the performance-anomaly detector (paper §3.2).
- :mod:`repro.stats.mic` — the Maximal Information Coefficient of
  Reshef et al. (Science, 2011), used to build likely invariants
  (paper §3.3).

Supporting modules supply shared time-series machinery
(:mod:`repro.stats.timeseries`) and association/regression helpers
(:mod:`repro.stats.correlation`).
"""

from repro.stats.arima import ARIMAModel, fit_arima, select_order
from repro.stats.correlation import pearson, polyfit2, spearman
from repro.stats.mic import mic, mic_matrix
from repro.stats.timeseries import acf, difference, pacf, undifference

__all__ = [
    "ARIMAModel",
    "fit_arima",
    "select_order",
    "mic",
    "mic_matrix",
    "pearson",
    "spearman",
    "polyfit2",
    "acf",
    "pacf",
    "difference",
    "undifference",
]

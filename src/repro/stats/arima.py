"""ARIMA(p, d, q) models implemented from scratch.

The paper's anomaly detector (§3.2) trains an ARIMA model on the normal-state
CPI series of each (workload, node) operation context and flags an anomaly
when the one-step prediction residual exceeds a threshold.  ``statsmodels``
is not available in this environment, so this module provides a compact,
well-tested ARIMA implementation:

- estimation by the Hannan-Rissanen two-stage least-squares procedure, with
  an optional conditional-sum-of-squares (CSS) refinement via
  :func:`scipy.optimize.minimize`;
- one-step-ahead in-sample prediction and out-of-sample forecasting;
- AIC-based order selection over a (p, d, q) grid.

The model operates on the ``d``-times differenced series internally.  One
convenient consequence used throughout the project: the one-step prediction
residual is identical in the differenced and original scales, because the
reconstruction terms (lagged observed values) cancel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np
from scipy import optimize

import repro.obs as obs
from repro.stats.timeseries import aic as _aic
from repro.stats.timeseries import difference, is_stationary

__all__ = ["ARIMAOrder", "ARIMAModel", "fit_arima", "select_order"]


class ARIMAOrder(NamedTuple):
    """The (p, d, q) order triple of an ARIMA model."""

    p: int
    d: int
    q: int

    def validate(self) -> None:
        """Reject negative components and the degenerate (0,0,0) order."""
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ValueError(f"ARIMA order components must be >= 0, got {self}")
        if self.p == 0 and self.q == 0 and self.d == 0:
            raise ValueError("degenerate ARIMA(0,0,0) model is not allowed")


@dataclass
class ARIMAModel:
    """A fitted ARIMA(p, d, q) model.

    Attributes:
        order: the (p, d, q) triple.
        ar: AR coefficients ``phi_1 .. phi_p`` (on the differenced series).
        ma: MA coefficients ``theta_1 .. theta_q``.
        intercept: constant term of the differenced-series ARMA equation.
        sigma2: residual variance from the training fit.
        train_rss: residual sum of squares on the training series.
        train_nobs: number of observations the RSS was computed over.
    """

    order: ARIMAOrder
    ar: np.ndarray
    ma: np.ndarray
    intercept: float
    sigma2: float
    train_rss: float = 0.0
    train_nobs: int = 0
    _warmup: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self.order = ARIMAOrder(*self.order)
        self.order.validate()
        self.ar = np.asarray(self.ar, dtype=float)
        self.ma = np.asarray(self.ma, dtype=float)
        if self.ar.size != self.order.p:
            raise ValueError(
                f"expected {self.order.p} AR coefficients, got {self.ar.size}"
            )
        if self.ma.size != self.order.q:
            raise ValueError(
                f"expected {self.order.q} MA coefficients, got {self.ma.size}"
            )
        self._warmup = max(self.order.p, self.order.q)

    @property
    def n_params(self) -> int:
        """Number of estimated mean-model parameters (AR + MA + intercept)."""
        return self.order.p + self.order.q + 1

    def aic(self) -> float:
        """AIC of the training fit."""
        if self.train_nobs == 0:
            raise ValueError("model carries no training fit statistics")
        return _aic(self.train_rss, self.train_nobs, self.n_params)

    # ------------------------------------------------------------------
    # prediction machinery
    # ------------------------------------------------------------------
    def _arma_recursion(self, w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Run the ARMA one-step recursion over a differenced series ``w``.

        Returns ``(predictions, residuals)`` aligned with ``w``; the first
        ``max(p, q)`` entries are warm-up values predicted with partial
        history (missing AR lags treated as the series mean, missing MA lags
        as zero innovation).
        """
        p, _, q = self.order
        n = w.size
        preds = np.empty(n)
        resid = np.zeros(n)
        mean_w = float(w.mean()) if n else 0.0
        for t in range(n):
            acc = self.intercept
            for i in range(1, p + 1):
                acc += self.ar[i - 1] * (w[t - i] if t - i >= 0 else mean_w)
            for j in range(1, q + 1):
                acc += self.ma[j - 1] * (resid[t - j] if t - j >= 0 else 0.0)
            preds[t] = acc
            resid[t] = w[t] - acc
        return preds, resid

    def one_step_residuals(self, series: np.ndarray | list[float]) -> np.ndarray:
        """One-step-ahead prediction residuals over a series.

        The residual at position ``t`` is ``y[t] - y_hat[t]`` where
        ``y_hat[t]`` is the model's prediction from history ``y[:t]``.
        The returned array is aligned with ``series``; the first
        ``d + max(p, q)`` positions (where full history is unavailable) are
        set to NaN so callers can mask the warm-up region explicitly.

        Args:
            series: series in the original (undifferenced) scale.

        Returns:
            Array of the same length as ``series``.
        """
        arr = np.asarray(series, dtype=float)
        d = self.order.d
        if arr.size <= d + self._warmup:
            raise ValueError(
                f"series too short ({arr.size}) for ARIMA{tuple(self.order)}"
            )
        w = difference(arr, d)
        _, resid = self._arma_recursion(w)
        out = np.full(arr.size, np.nan)
        out[d + self._warmup :] = resid[self._warmup :]
        return out

    def predict_next(self, history: np.ndarray | list[float]) -> float:
        """Predict the next value of the series in the original scale.

        Args:
            history: all observations so far, original scale; must be longer
                than ``d + max(p, q)``.

        Returns:
            The one-step-ahead prediction ``y_hat[len(history)]``.
        """
        arr = np.asarray(history, dtype=float)
        d = self.order.d
        if arr.size <= d + self._warmup:
            raise ValueError(
                f"history too short ({arr.size}) for ARIMA{tuple(self.order)}"
            )
        w = difference(arr, d)
        p, _, q = self.order
        _, resid = self._arma_recursion(w)
        acc = self.intercept
        n = w.size
        for i in range(1, p + 1):
            acc += self.ar[i - 1] * w[n - i]
        for j in range(1, q + 1):
            acc += self.ma[j - 1] * resid[n - j]
        w_next = acc
        # Reconstruct the original-scale prediction by undoing differencing:
        # for d=0 it is w_next itself; for d=1 it is y[-1] + w_next; for
        # general d, add back the d-th order partial sums of the tail.
        tails = [arr]
        for _ in range(d):
            tails.append(np.diff(tails[-1]))
        y_next = w_next
        for level in range(d - 1, -1, -1):
            y_next = tails[level][-1] + y_next
        return float(y_next)

    def forecast(
        self, history: np.ndarray | list[float], steps: int
    ) -> np.ndarray:
        """Multi-step forecast by iterating :meth:`predict_next`.

        Future innovations are taken as zero (their conditional mean).

        Args:
            history: observations so far in the original scale.
            steps: number of future points to forecast.

        Returns:
            Array of length ``steps``.
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        buf = list(np.asarray(history, dtype=float))
        out = np.empty(steps)
        for k in range(steps):
            nxt = self.predict_next(np.asarray(buf))
            out[k] = nxt
            buf.append(nxt)
        return out

    def forecast_interval(
        self,
        history: np.ndarray | list[float],
        steps: int,
        level: float = 0.95,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forecast with Gaussian prediction intervals.

        The h-step forecast variance is ``sigma2 * sum(psi_j^2, j < h)``
        with ``psi`` the MA(∞) weights of the ARIMA process (computed by
        power-series inversion of the AR/differencing polynomial against
        the MA polynomial).

        Args:
            history: observations so far in the original scale.
            steps: forecast horizon.
            level: two-sided coverage of the interval (e.g. 0.95).

        Returns:
            ``(mean, lower, upper)`` arrays of length ``steps``.
        """
        from scipy import stats as sps

        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        mean = self.forecast(history, steps)
        p, d, q = self.order
        # AR polynomial including differencing: phi(B) * (1 - B)^d.
        ar_poly = np.zeros(p + 1)
        ar_poly[0] = 1.0
        ar_poly[1 : p + 1] = -self.ar
        diff_poly = np.array([1.0])
        for _ in range(d):
            diff_poly = np.convolve(diff_poly, np.array([1.0, -1.0]))
        full_ar = np.convolve(ar_poly, diff_poly)
        ma_poly = np.zeros(q + 1)
        ma_poly[0] = 1.0
        ma_poly[1 : q + 1] = self.ma
        # psi weights by long division: psi(B) = theta(B) / phi_full(B).
        psi = np.zeros(steps)
        for j in range(steps):
            acc = ma_poly[j] if j < ma_poly.size else 0.0
            for i in range(1, min(j, full_ar.size - 1) + 1):
                acc -= full_ar[i] * psi[j - i]
            psi[j] = acc
        variances = self.sigma2 * np.cumsum(psi**2)
        z = float(sps.norm.ppf(0.5 + level / 2.0))
        half = z * np.sqrt(np.maximum(variances, 0.0))
        return mean, mean - half, mean + half


def _hannan_rissanen(
    w: np.ndarray, p: int, q: int
) -> tuple[np.ndarray, np.ndarray, float, float, int]:
    """Two-stage Hannan-Rissanen ARMA(p, q) estimation.

    Stage 1 fits a long autoregression to estimate the innovation series;
    stage 2 regresses the observation on AR lags and estimated innovation
    lags.

    Returns:
        Tuple ``(ar, ma, intercept, rss, nobs)``.
    """
    n = w.size
    if q == 0:
        # Pure AR: a single OLS regression suffices.
        if n <= p + 1:
            raise ValueError(f"series too short (n={n}) for AR({p}) fit")
        rows = n - p
        design = np.ones((rows, p + 1))
        for i in range(1, p + 1):
            design[:, i] = w[p - i : n - i]
        target = w[p:]
        coef, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        resid = target - design @ coef
        rss = float(resid @ resid)
        return coef[1:], np.empty(0), float(coef[0]), rss, rows

    # Stage 1: long AR to approximate the innovations.
    long_p = min(max(p + q, 4) + int(np.floor(np.log(max(n, 2)))), max(n // 4, 1))
    long_p = max(long_p, 1)
    if n <= long_p + p + q + 1:
        raise ValueError(f"series too short (n={n}) for ARMA({p},{q}) fit")
    rows1 = n - long_p
    design1 = np.ones((rows1, long_p + 1))
    for i in range(1, long_p + 1):
        design1[:, i] = w[long_p - i : n - i]
    coef1, _, _, _ = np.linalg.lstsq(design1, w[long_p:], rcond=None)
    innov = np.zeros(n)
    innov[long_p:] = w[long_p:] - design1 @ coef1

    # Stage 2: regress on AR lags and innovation lags.
    start = long_p + max(p, q)
    rows2 = n - start
    design2 = np.ones((rows2, p + q + 1))
    col = 1
    for i in range(1, p + 1):
        design2[:, col] = w[start - i : n - i]
        col += 1
    for j in range(1, q + 1):
        design2[:, col] = innov[start - j : n - j]
        col += 1
    target2 = w[start:]
    coef2, _, _, _ = np.linalg.lstsq(design2, target2, rcond=None)
    resid2 = target2 - design2 @ coef2
    rss = float(resid2 @ resid2)
    intercept = float(coef2[0])
    ar = coef2[1 : p + 1]
    ma = coef2[p + 1 :]
    return ar, ma, intercept, rss, rows2


def _css_objective(params: np.ndarray, w: np.ndarray, p: int, q: int) -> float:
    """Conditional sum of squares for an ARMA parameter vector."""
    intercept = params[0]
    ar = params[1 : p + 1]
    ma = params[p + 1 :]
    n = w.size
    resid = np.zeros(n)
    warm = max(p, q)
    mean_w = float(w.mean())
    for t in range(n):
        acc = intercept
        for i in range(1, p + 1):
            acc += ar[i - 1] * (w[t - i] if t - i >= 0 else mean_w)
        for j in range(1, q + 1):
            acc += ma[j - 1] * (resid[t - j] if t - j >= 0 else 0.0)
        resid[t] = w[t] - acc
    tail = resid[warm:]
    return float(tail @ tail)


def fit_arima(
    series: np.ndarray | list[float],
    order: ARIMAOrder | tuple[int, int, int],
    refine: bool = False,
) -> ARIMAModel:
    """Fit an ARIMA(p, d, q) model.

    Args:
        series: training series in the original scale.
        order: (p, d, q) triple.
        refine: when True, polish the Hannan-Rissanen estimates by
            minimising the conditional sum of squares with Nelder-Mead.
            Slower but slightly more accurate for strongly MA processes.

    Returns:
        A fitted :class:`ARIMAModel`.
    """
    with obs.span("arima.fit") as sp:
        model = _fit_arima(series, ARIMAOrder(*order), refine)
    if sp:
        sp.set(
            order=f"({model.order.p},{model.order.d},{model.order.q})",
            nobs=model.train_nobs,
            refine=refine,
        )
    return model


def _fit_arima(
    series: np.ndarray | list[float], order: ARIMAOrder, refine: bool
) -> ARIMAModel:
    order.validate()
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    w = difference(arr, order.d)
    p, _, q = order
    if p == 0 and q == 0:
        # ARIMA(0, d, 0): the differenced series is modelled as
        # intercept + white noise.
        intercept = float(w.mean())
        resid = w - intercept
        rss = float(resid @ resid)
        return ARIMAModel(
            order=order,
            ar=np.empty(0),
            ma=np.empty(0),
            intercept=intercept,
            sigma2=rss / max(w.size, 1),
            train_rss=rss,
            train_nobs=w.size,
        )
    ar, ma, intercept, _, _ = _hannan_rissanen(w, p, q)
    # Evaluate (and optionally refine) on one common basis — the CSS over
    # all post-warm-up observations — so RSS/AIC are comparable across
    # orders and across the refined/unrefined paths.
    params = np.concatenate(([intercept], ar, ma))
    rss = _css_objective(params, w, p, q)
    nobs = w.size - max(p, q)
    if refine:
        result = optimize.minimize(
            _css_objective,
            params,
            args=(w, p, q),
            method="Nelder-Mead",
            options={"maxiter": 400 * (p + q + 1), "xatol": 1e-6, "fatol": 1e-9},
        )
        if result.fun < rss:
            intercept = float(result.x[0])
            ar = result.x[1 : p + 1]
            ma = result.x[p + 1 :]
            rss = float(result.fun)
    sigma2 = rss / max(nobs, 1)
    return ARIMAModel(
        order=order,
        ar=np.asarray(ar, dtype=float),
        ma=np.asarray(ma, dtype=float),
        intercept=intercept,
        sigma2=sigma2,
        train_rss=rss,
        train_nobs=nobs,
    )


def select_order(
    series: np.ndarray | list[float],
    max_p: int = 3,
    max_d: int = 1,
    max_q: int = 2,
) -> ARIMAOrder:
    """Choose an ARIMA order by stationarity screening plus an AIC grid.

    The differencing order ``d`` is the smallest value in ``[0, max_d]`` for
    which the differenced series passes the stationarity screen; (p, q) are
    then selected by minimum AIC over the grid, skipping combinations that
    fail to fit.

    Args:
        series: training series in the original scale.
        max_p: largest AR order considered.
        max_d: largest differencing order considered.
        max_q: largest MA order considered.

    Returns:
        The selected :class:`ARIMAOrder`.
    """
    arr = np.asarray(series, dtype=float)
    d = 0
    for cand in range(max_d + 1):
        d = cand
        diffed = difference(arr, cand)
        if diffed.size >= 8 and is_stationary(diffed):
            break

    best: tuple[float, ARIMAOrder] | None = None
    for p in range(max_p + 1):
        for q in range(max_q + 1):
            if p == 0 and q == 0 and d == 0:
                continue
            try:
                model = fit_arima(arr, (p, d, q))
                score = model.aic()
            except (ValueError, np.linalg.LinAlgError):
                continue
            if best is None or score < best[0]:
                best = (score, ARIMAOrder(p, d, q))
    if best is None:
        raise ValueError("no ARIMA order could be fitted to the series")
    return best[1]

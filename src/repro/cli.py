"""Command-line interface.

Three subcommands cover the working loop of the system:

``invarnetx simulate``
    Run one workload on the simulated cluster (optionally with an injected
    fault) and write the trace to an NPZ file — the unit of data every
    other command consumes.

``invarnetx diagnose``
    Train from normal-run NPZ traces and per-problem signature traces,
    then diagnose an incident trace; prints the ranked causes.

``invarnetx explain``
    Like ``diagnose``, but print the full incident-explanation report:
    per-cause similarity breakdowns, every violated invariant pair with
    its delta against ε, and the CPI residuals around the alarm tick
    (``--json`` for the machine-readable form).

``invarnetx experiment``
    Regenerate one of the paper's figures/tables and print it.  With
    ``--registry DIR`` the diagnosis exhibits (fig7, fig8, fig9-10)
    execute through the campaign run registry: committed under
    ``DIR/runs/<run_id>/``, indexed in SQLite, reused when already
    committed.

``invarnetx runs``
    The campaign registry (:mod:`repro.eval.registry`): ``run`` executes
    a campaign spec into a ``runs/<run_id>/`` directory, ``list``
    tabulates the cross-run SQLite index, ``show`` prints one committed
    run, and ``compare`` scores two cohorts against each other from the
    index alone (a byte-deterministic bake-off report).

``invarnetx store``
    List or inspect the contexts of an on-disk model registry
    (:class:`repro.store.DirectoryStore`) without loading runs or
    retraining anything.

``invarnetx health``
    Run the model drift watchdog (:mod:`repro.obs.health`) over a
    registry: residual drift, fragile invariants, ambiguous signatures,
    staleness and stage-timing regressions, per stored context.

``invarnetx ledger``
    Read the registry's run ledger: ``list`` tabulates every recorded
    run, ``show`` prints one entry's full JSON.

``invarnetx incidents``
    Correlate the incident bundles a serve blackbox committed into
    classified platform incidents (``list``/``show``); see
    :mod:`repro.serve.incidents`.

``invarnetx replay``
    Deterministically re-run detection and diagnosis from one incident
    bundle alone and assert the reproduced cause ranking, explanation
    bytes and drift verdicts match the originals (exit 1 on
    divergence); see :mod:`repro.obs.blackbox`.

``invarnetx lint``
    Run the domain linter (:mod:`repro.lint`) over the source tree:
    RNG discipline, operation-context key discipline, float-equality,
    the paper's tuned constants, and general hygiene.

Three global flags (before the subcommand) switch on the observability
layer of :mod:`repro.obs`: ``--log-level LEVEL`` streams structured
``event key=value`` logs to stderr, ``--trace`` prints the span tree of
the run to stderr after the command finishes, and ``--trace-out PATH``
writes the same spans as a Chrome ``trace_event`` JSON file for
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro.obs as obs
from repro.cluster import HadoopCluster
from repro.cluster.workloads import WORKLOADS
from repro.core import InvarNetX, InvarNetXConfig, OperationContext
from repro.faults.spec import ALL_FAULTS, FaultSpec, build_fault
from repro.store import DirectoryStore
from repro.telemetry.io import load_run_npz, save_node_csv, save_run_npz

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="invarnetx",
        description="InvarNet-X: invariant-based performance diagnosis "
        "(BPOE/VLDB 2014 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable observability and stream structured logs to stderr "
        "at this level",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable observability and print the span trace to stderr "
        "after the command finishes",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="enable observability and write the span trace as Chrome "
        "trace_event JSON (chrome://tracing, Perfetto) when the command "
        "finishes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser(
        "simulate", help="run a workload on the simulated cluster"
    )
    sim.add_argument("--workload", choices=sorted(WORKLOADS), required=True)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--fault", choices=sorted(ALL_FAULTS), default=None,
        help="optional fault to inject",
    )
    sim.add_argument("--fault-node", default="slave-1")
    sim.add_argument("--fault-start", type=int, default=30)
    sim.add_argument(
        "--fault-duration", type=int, default=30,
        help="ticks (paper: 5 min = 30)",
    )
    sim.add_argument(
        "--out", type=Path, required=True, help="output NPZ trace path"
    )
    sim.add_argument(
        "--csv-dir", type=Path, default=None,
        help="also dump per-node collectl-style CSVs here",
    )

    def add_diagnosis_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--normal", type=Path, nargs="+", required=True,
            help="normal-run NPZ traces (training corpus)",
        )
        p.add_argument(
            "--signature", action="append", default=[],
            metavar="PROBLEM=TRACE.npz",
            help="labelled faulty trace to store as a signature "
            "(repeatable)",
        )
        p.add_argument(
            "--incident", type=Path, required=True,
            help="the NPZ trace to diagnose",
        )
        p.add_argument("--node", default="slave-1")
        p.add_argument("--top-k", type=int, default=3)
        p.add_argument(
            "--mic-workers", type=int, default=None,
            help="MIC engine parallelism: omit for serial, 0 for one "
            "process per CPU, k for at most k processes (results are "
            "identical)",
        )
        p.add_argument(
            "--store", type=Path, default=None, metavar="DIR",
            help="durable model registry: trained models persist here, "
            "and a context already in the registry is loaded instead of "
            "retrained (warm restart)",
        )

    diag = sub.add_parser(
        "diagnose", help="train from traces and diagnose an incident"
    )
    add_diagnosis_arguments(diag)

    explain = sub.add_parser(
        "explain",
        help="diagnose an incident and print the full evidence report",
        description="Train (or warm-load) exactly as `diagnose` does, "
        "then print the incident explanation: per-cause similarity "
        "breakdowns, violated invariant pairs with deltas vs epsilon, "
        "and CPI residuals around the alarm tick.  The report goes to "
        "stdout; progress messages go to stderr.",
    )
    add_diagnosis_arguments(explain)
    explain.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )

    exp = sub.add_parser(
        "experiment", help="regenerate one of the paper's exhibits"
    )
    exp.add_argument(
        "name",
        choices=(
            "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9-10", "table1", "all",
        ),
        help='"all" regenerates every exhibit in order (a full '
        "reproduction report; allow ~20 minutes at default reps)",
    )
    exp.add_argument(
        "--reps", type=int, default=6,
        help="held-out runs per fault where applicable (paper: 38)",
    )
    exp.add_argument(
        "--out", type=Path, default=None,
        help="also write the report to this file",
    )
    exp.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="durable model registry for the diagnosis exhibits (fig7, "
        "fig8): trained contexts persist here and are reused on the next "
        "invocation instead of retraining",
    )
    exp.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="campaign registry root: run the diagnosis exhibits (fig7, "
        "fig8, fig9-10) through the run registry — committed under "
        "DIR/runs/<run_id>/, indexed in SQLite, and reused verbatim when "
        "the same spec fingerprint is already committed",
    )

    from repro.eval.registry.spec import BUILTIN_SPECS

    runs = sub.add_parser(
        "runs",
        help="execute and query campaign runs (the run registry)",
        description="The campaign registry: durable runs/<run_id>/ "
        "directories with atomically-committed manifests, a cross-run "
        "SQLite index, and byte-deterministic cohort bake-offs.",
    )
    runs_sub = runs.add_subparsers(dest="runs_action", required=True)
    runs_run = runs_sub.add_parser(
        "run", help="execute a campaign spec into the registry"
    )
    runs_run.add_argument(
        "--dir", type=Path, required=True, help="campaign registry root"
    )
    spec_source = runs_run.add_mutually_exclusive_group(required=True)
    spec_source.add_argument(
        "--spec", choices=BUILTIN_SPECS,
        help="one of the builtin exhibit specs",
    )
    spec_source.add_argument(
        "--spec-file", type=Path, metavar="PATH",
        help="a CampaignSpec JSON document (the spec.json dialect)",
    )
    runs_run.add_argument(
        "--reps", type=int, default=None,
        help="held-out runs per fault override (paper: 38)",
    )
    runs_run.add_argument(
        "--repetitions", type=int, default=None,
        help="whole-campaign repetitions override",
    )
    runs_run.add_argument(
        "--seed", type=int, default=None, help="base-seed override"
    )
    runs_run.add_argument(
        "--node", default=None, help="fault-target node override"
    )
    runs_run.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="model registry for InvarNet-X cohorts (warm restarts)",
    )
    runs_run.add_argument(
        "--force", action="store_true",
        help="re-execute even when this spec fingerprint is committed",
    )
    runs_list = runs_sub.add_parser(
        "list", help="tabulate the cross-run index"
    )
    runs_list.add_argument(
        "--dir", type=Path, required=True, help="campaign registry root"
    )
    runs_list.add_argument(
        "--spec", default=None, help="only runs of this campaign family"
    )
    runs_list.add_argument(
        "--rebuild", action="store_true",
        help="rebuild the SQLite index from the run manifests first",
    )
    runs_show = runs_sub.add_parser(
        "show", help="print one committed run"
    )
    runs_show.add_argument("run_id", help="run id (see: runs list)")
    runs_show.add_argument(
        "--dir", type=Path, required=True, help="campaign registry root"
    )
    runs_show.add_argument(
        "--json", action="store_true",
        help="emit the committed manifest as JSON instead of the report",
    )
    runs_compare = runs_sub.add_parser(
        "compare",
        help="score two cohorts against each other from the index",
    )
    runs_compare.add_argument("system_a", help="first cohort label")
    runs_compare.add_argument("system_b", help="second cohort label")
    runs_compare.add_argument(
        "--dir", type=Path, required=True, help="campaign registry root"
    )
    runs_compare.add_argument(
        "--spec", default=None,
        help="restrict both cohorts to one campaign family",
    )
    runs_compare.add_argument(
        "--json", action="store_true",
        help="emit the bake-off report as JSON instead of text",
    )

    store = sub.add_parser(
        "store",
        help="list or inspect an on-disk model registry",
        description="Read-only views over a DirectoryStore registry: the "
        "manifest index (list) and one context's rehydrated models "
        "(inspect).",
    )
    store_sub = store.add_subparsers(dest="store_action", required=True)
    store_list = store_sub.add_parser(
        "list", help="list every context in the registry"
    )
    store_list.add_argument("dir", type=Path, help="registry directory")
    store_inspect = store_sub.add_parser(
        "inspect", help="show one context's persisted models in detail"
    )
    store_inspect.add_argument("dir", type=Path, help="registry directory")
    store_inspect.add_argument("--workload", required=True)
    store_inspect.add_argument("--node", required=True)

    health = sub.add_parser(
        "health",
        help="score every stored context with the drift watchdog",
        description="Read-only longitudinal checks over a DirectoryStore "
        "registry and its colocated run ledger: residual drift vs the "
        "training distribution, invariants near the tau boundary, "
        "ambiguous signatures, staleness, and stage-timing regressions.",
    )
    health.add_argument("dir", type=Path, help="registry directory")
    health.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )
    health.add_argument(
        "--fragility-margin", type=float, default=None,
        help="MIC spread within this margin of tau counts as fragile",
    )
    health.add_argument(
        "--ambiguity-floor", type=float, default=None,
        help="cross-problem signature distance below this is ambiguous",
    )
    health.add_argument(
        "--stale-runs", type=int, default=None,
        help="diagnoses since the last retrain before a context is stale",
    )
    health.add_argument(
        "--drift-ratio", type=float, default=None,
        help="recent/training residual p90 ratio that counts as drift",
    )

    ledger = sub.add_parser(
        "ledger",
        help="read a registry's run ledger",
        description="Read-only views over the append-only run ledger "
        "colocated with a DirectoryStore registry (ledger.jsonl).",
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_action", required=True)
    ledger_list = ledger_sub.add_parser(
        "list", help="tabulate every recorded run"
    )
    ledger_list.add_argument("dir", type=Path, help="registry directory")
    ledger_list.add_argument(
        "--kind", default=None,
        help="only entries of this kind (train, signature, diagnose, ...)",
    )
    ledger_show = ledger_sub.add_parser(
        "show", help="print one ledger entry as JSON"
    )
    ledger_show.add_argument("dir", type=Path, help="registry directory")
    ledger_show.add_argument(
        "--seq", type=int, default=None,
        help="sequence number of the entry (default: the latest entry)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the fleet diagnosis service over HTTP",
        description="Multiplex streaming diagnosis for every context in "
        "a DirectoryStore registry behind a stdlib HTTP/JSON API "
        "(POST /ingest, GET /health, GET /contexts, GET /explain/<ctx>).",
    )
    serve.add_argument("dir", type=Path, help="registry directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--shards", type=int, default=8,
        help="monitor-registry shards (ingest parallelism bound)",
    )
    serve.add_argument(
        "--max-lanes-per-shard", type=int, default=None, metavar="N",
        help="resident monitors per shard before LRU eviction",
    )
    serve.add_argument(
        "--warmup-ticks", type=int, default=12,
        help="CPI samples buffered before drift checks begin",
    )
    serve.add_argument(
        "--cooldown-ticks", type=int, default=30,
        help="silent ticks after each diagnosis",
    )
    serve.add_argument(
        "--slo-interval", type=float, default=5.0, metavar="SECONDS",
        help="burn-rate evaluation period (0 disables SLO tracking)",
    )
    serve.add_argument(
        "--blackbox", type=Path, default=None, metavar="DIR",
        help="incident bundle directory "
        "(default: <registry>/incidents; --no-blackbox disables)",
    )
    serve.add_argument(
        "--no-blackbox", action="store_true",
        help="disable the flight recorder and incident bundles",
    )
    serve.add_argument(
        "--blackbox-capacity", type=int, default=None, metavar="TICKS",
        help="flight-recorder ring capacity per lane",
    )

    incidents = sub.add_parser(
        "incidents",
        help="correlate committed incident bundles into platform incidents",
        description="Read the incident bundles the serve blackbox "
        "committed under an incidents/ directory, chain temporally-"
        "adjacent alarms into platform incidents, and classify each "
        "along the paper's context axes (shared-workload, shared-node, "
        "fleet-wide).",
    )
    incidents_sub = incidents.add_subparsers(
        dest="incidents_action", required=True
    )
    incidents_list = incidents_sub.add_parser(
        "list", help="one line per correlated platform incident"
    )
    incidents_list.add_argument(
        "dir", type=Path, help="incidents directory (or a registry root)"
    )
    incidents_list.add_argument(
        "--horizon", type=int, default=None, metavar="TICKS",
        help="max alarm-tick gap inside one platform incident",
    )
    incidents_list.add_argument(
        "--json", action="store_true",
        help="emit the incidents as JSON instead of text",
    )
    incidents_show = incidents_sub.add_parser(
        "show", help="full member listing of one platform incident"
    )
    incidents_show.add_argument(
        "dir", type=Path, help="incidents directory (or a registry root)"
    )
    incidents_show.add_argument(
        "incident_id", help="platform incident id (P01, P02, ...)"
    )
    incidents_show.add_argument(
        "--horizon", type=int, default=None, metavar="TICKS",
        help="max alarm-tick gap inside one platform incident",
    )
    incidents_show.add_argument(
        "--json", action="store_true",
        help="emit the incident as JSON instead of text",
    )

    replay = sub.add_parser(
        "replay",
        help="re-run detection and diagnosis from an incident bundle",
        description="Rebuild the pipeline from a committed incident "
        "bundle alone (its config, models and raw window) and assert "
        "the reproduced cause ranking, explanation bytes and drift "
        "verdicts match the originals.  Exit 1 on any divergence.",
    )
    replay.add_argument("bundle", type=Path, help="incident bundle directory")
    replay.add_argument(
        "--passes", type=int, default=2, metavar="N",
        help="independent re-inference passes (each must match)",
    )
    replay.add_argument(
        "--json", action="store_true",
        help="emit the replay result as JSON instead of text",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard over a running fleet server",
        description="Poll a serve process's GET /metrics + GET /health "
        "and repaint a plain-text dashboard: lanes, ingest throughput, "
        "per-endpoint request rates and p50/p99 latency.",
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="base URL of the serve process",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between repaints",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame (no escape codes) and exit",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N repaints (default: run until ctrl-c)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the domain linter over the source tree",
        description="Static checks for the codebase's numerical and "
        "operation-context contracts (see repro.lint).",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    cluster = HadoopCluster()
    faults = []
    if args.fault:
        faults.append(
            build_fault(
                args.fault,
                FaultSpec(
                    target=args.fault_node,
                    start=args.fault_start,
                    duration=args.fault_duration,
                ),
            )
        )
    run = cluster.run(args.workload, faults=faults, seed=args.seed)
    save_run_npz(run, args.out)
    print(
        f"wrote {args.out}: workload={run.workload} "
        f"ticks={run.execution_ticks} completed={run.completed} "
        f"fault={run.fault or 'none'}"
    )
    if args.csv_dir:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        for node_id, trace in run.nodes.items():
            csv_path = args.csv_dir / f"{node_id}.csv"
            save_node_csv(trace, csv_path)
            print(f"wrote {csv_path}")
    return 0


def _trained_pipeline(
    args: argparse.Namespace, progress: object
) -> tuple[InvarNetX, OperationContext] | int:
    """Shared train-or-warm-load path of ``diagnose`` and ``explain``.

    Progress messages go to ``progress`` (stdout for ``diagnose``, stderr
    for ``explain`` so stdout stays a pure report); errors always go to
    stderr.  Returns the exit code instead of the pair on bad arguments.
    """
    normal_runs = [load_run_npz(p) for p in args.normal]
    workloads = {r.workload for r in normal_runs}
    if len(workloads) != 1:
        print(
            f"error: normal traces span multiple workloads: "
            f"{sorted(workloads)}",
            file=sys.stderr,
        )
        return 2
    workload = workloads.pop()
    first = normal_runs[0]
    if args.node not in first.nodes:
        print(
            f"error: node {args.node!r} not in trace "
            f"(has: {sorted(first.nodes)})",
            file=sys.stderr,
        )
        return 2
    ctx = OperationContext(workload, args.node, first.nodes[args.node].ip)
    config = InvarNetXConfig(mic_workers=args.mic_workers)
    if args.store is not None:
        registry = DirectoryStore(args.store)
        pipe = InvarNetX.attached_to(registry, config=config)
    else:
        registry = None
        pipe = InvarNetX(config)
    if pipe.is_trained(ctx):
        assert registry is not None  # only a store can pre-train a context
        print(
            f"warm start: {ctx} loaded from {args.store} "
            f"(revision {registry.revision(ctx.key())})",
            file=progress,
        )
    else:
        print(
            f"training {ctx} on {len(normal_runs)} normal runs...",
            file=progress,
        )
        pipe.train_from_runs(ctx, normal_runs)
    known = set(pipe.known_problems(ctx))
    for spec in args.signature:
        problem, _, trace_path = spec.partition("=")
        if not trace_path:
            print(
                f"error: bad --signature {spec!r}; "
                "expected PROBLEM=TRACE.npz",
                file=sys.stderr,
            )
            return 2
        if problem in known:
            print(
                f"signature for {problem!r} already in the store",
                file=progress,
            )
            continue
        run = load_run_npz(trace_path)
        pipe.train_signature_from_run(ctx, problem, run)
        print(
            f"learned signature for {problem!r} from {trace_path}",
            file=progress,
        )
    return pipe, ctx


def _cmd_diagnose(args: argparse.Namespace) -> int:
    trained = _trained_pipeline(args, progress=sys.stdout)
    if isinstance(trained, int):
        return trained
    pipe, ctx = trained
    incident = load_run_npz(args.incident)
    result = pipe.diagnose_run(ctx, incident, top_k=args.top_k)
    if not result.detected:
        print("no performance problem detected")
        return 0
    print(
        f"performance problem detected at tick "
        f"{result.anomaly.first_problem_tick()}"
    )
    assert result.inference is not None
    if result.inference.causes:
        print("ranked root causes:")
        for cause in result.inference.causes:
            print(f"  {cause.problem:14s} similarity={cause.score:.3f}")
    if result.root_cause is None:
        print("no stored signature is similar enough; violated pairs:")
        for a, b in result.inference.hints[:10]:
            print(f"  {a} ~ {b}")
    else:
        print(f"verdict: {result.root_cause}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.explain import explain_run

    trained = _trained_pipeline(args, progress=sys.stderr)
    if isinstance(trained, int):
        return trained
    pipe, ctx = trained
    incident = load_run_npz(args.incident)
    explanation = explain_run(pipe, ctx, incident, top_k=args.top_k)
    if explanation is None:
        print("no performance problem detected")
        return 0
    if args.json:
        json.dump(explanation.to_json(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(explanation.render_text())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments as ex
    from repro.eval import reporting as rp

    cluster = HadoopCluster()
    store = DirectoryStore(args.store) if args.store is not None else None
    registry = None
    if args.registry is not None:
        from repro.eval.registry import RunRegistry

        registry = RunRegistry(args.registry)

    def registry_exhibit(name: str, title: str | None = None) -> str:
        """One diagnosis exhibit executed through the run registry.

        A spec fingerprint already committed under the registry is
        reused verbatim (its stored report is printed); otherwise the
        campaign runs, commits and indexes before formatting.
        """
        from repro.eval.registry import builtin_spec

        assert registry is not None
        spec = builtin_spec(name, test_reps=args.reps)
        run = registry.execute(
            spec,
            cluster=cluster,
            store=store if name != "fig9-10" else None,
        )
        if run.skipped:
            print(
                f"... reusing committed run {run.run_id}", file=sys.stderr
            )
            from repro.eval.registry.run import REPORT_MD

            return (run.run_dir / REPORT_MD).read_text().rstrip("\n")
        print(f"... committed run {run.run_id}", file=sys.stderr)
        if name == "fig9-10":
            return rp.format_comparison(
                {label: reps[0] for label, reps in run.results.items()}
            )
        assert title is not None
        return rp.format_diagnosis(run.results["InvarNet-X"][0], title)

    producers = {
        "fig2": lambda: rp.format_fig2(ex.run_fig2_cpi_disturbance(cluster)),
        "fig4": lambda: rp.format_fig4(
            ex.run_fig4_cpi_kpi(cluster, reps=max(args.reps, 10))
        ),
        "fig5": lambda: rp.format_fig5(ex.run_fig5_residuals(cluster)),
        "fig6": lambda: rp.format_fig6(ex.run_fig6_threshold_rules(cluster)),
        "fig7": lambda: (
            registry_exhibit("fig7", "Fig. 7 — TPC-DS")
            if registry is not None
            else rp.format_diagnosis(
                ex.run_fig7_tpcds_diagnosis(
                    cluster, test_reps=args.reps, store=store
                ),
                "Fig. 7 — TPC-DS",
            )
        ),
        "fig8": lambda: (
            registry_exhibit("fig8", "Fig. 8 — Wordcount")
            if registry is not None
            else rp.format_diagnosis(
                ex.run_fig8_wordcount_diagnosis(
                    cluster, test_reps=args.reps, store=store
                ),
                "Fig. 8 — Wordcount",
            )
        ),
        "fig9-10": lambda: (
            registry_exhibit("fig9-10")
            if registry is not None
            else rp.format_comparison(
                ex.run_fig9_fig10_comparison(cluster, test_reps=args.reps)
            )
        ),
        "table1": lambda: rp.format_table1(ex.run_table1_overhead(cluster)),
    }
    names = list(producers) if args.name == "all" else [args.name]
    sections: list[str] = []
    for name in names:
        if args.name == "all":
            print(f"... running {name}", file=sys.stderr)
        sections.append(producers[name]())
    report = "\n\n".join(sections)
    if args.name == "all":
        report = (
            "InvarNet-X reproduction report (BPOE/VLDB 2014)\n"
            f"held-out runs per fault: {args.reps}\n\n" + report
        )
    print(report)
    if args.out is not None:
        args.out.write_text(report + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    if not (args.dir / "manifest.json").exists():
        print(f"error: no model registry at {args.dir}", file=sys.stderr)
        return 2
    registry = DirectoryStore(args.dir)
    if args.store_action == "list":
        entries = registry.entries()
        if not entries:
            print("registry is empty")
            return 0
        print(f"{'workload':<16s} {'node':<10s} {'ip':<14s} rev  artifacts")
        for key in sorted(entries):
            entry = entries[key]
            artifacts = ", ".join(entry.get("artifacts", [])) or "-"
            print(
                f"{key[0]:<16s} {key[1]:<10s} "
                f"{entry.get('ip', '') or '-':<14s} "
                f"{entry.get('revision', 0):<4d} {artifacts}"
            )
        return 0
    # inspect
    key = (args.workload, args.node)
    models = registry.peek(key)
    if models is None:
        print(
            f"error: context {args.workload}@{args.node} not in the "
            f"registry (try: invarnetx store list {args.dir})",
            file=sys.stderr,
        )
        return 2
    print(f"context: {args.workload}@{args.node}")
    print(f"revision: {registry.revision(key)}")
    detector = models.detector
    if detector is not None and detector.model is not None:
        model = detector.model
        assert detector.threshold is not None
        print(
            f"performance model: ARIMA{tuple(model.order)} "
            f"intercept={model.intercept:.6g} sigma2={model.sigma2:.6g}"
        )
        print(
            f"threshold: {detector.threshold.rule.value} "
            f"upper={detector.threshold.upper:.6g} "
            f"lower={detector.threshold.lower:.6g}"
        )
    else:
        print("performance model: (none)")
    if models.invariants is not None:
        print(f"invariants: {len(models.invariants.pairs)} pairs")
    else:
        print("invariants: (none)")
    if len(models.database):
        print(f"signatures: {len(models.database)}")
        for problem in models.database.problems:
            count = sum(
                1 for s in models.database.signatures if s.problem == problem
            )
            print(f"  {problem} x{count}")
    else:
        print("signatures: (none)")
    if registry.ledger_path.exists():
        from repro.obs.health import score_context

        ledger = registry.ledger()
        ctx_health = score_context(key, models, ledger)
        warns = [c.name for c in ctx_health.checks if c.status == "warn"]
        print(
            f"health: {ctx_health.status} score={ctx_health.score:.2f}"
            + (f" warn: {', '.join(warns)}" if warns else "")
        )
        last = ledger.last(context=key)
        if last is not None:
            print(
                f"last ledger entry: seq={last.get('seq', 0)} "
                f"kind={last['kind']} {_describe_entry(last)}"
            )
    return 0


_LEDGER_DETAIL_FIELDS = (
    "runs", "invariants", "problem", "violated", "detected", "top_cause",
    "top_score", "precision", "recall", "verdict", "faulty_nodes",
)


def _describe_entry(entry: dict) -> str:
    """One-line ``key=value`` summary of a ledger entry's salient fields."""
    parts = []
    for name in _LEDGER_DETAIL_FIELDS:
        if name in entry and entry[name] is not None:
            value = entry[name]
            if isinstance(value, float):
                value = f"{value:.3f}"
            elif isinstance(value, list):
                value = ",".join(str(v) for v in value) or "-"
            parts.append(f"{name}={value}")
    return " ".join(parts)


def _registry_ledger(directory: Path):
    """The (registry, ledger) pair for a CLI path, or an exit code."""
    if not (directory / "manifest.json").exists():
        print(f"error: no model registry at {directory}", file=sys.stderr)
        return 2
    registry = DirectoryStore(directory)
    return registry, registry.ledger()


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.obs.health import HealthThresholds, score_store

    pair = _registry_ledger(args.dir)
    if isinstance(pair, int):
        return pair
    registry, ledger = pair
    thresholds = HealthThresholds().overridden(
        fragility_margin=args.fragility_margin,
        ambiguity_floor=args.ambiguity_floor,
        stale_runs=args.stale_runs,
        drift_ratio=args.drift_ratio,
    )
    # A registry a serve blackbox has written to has a colocated
    # incidents/ directory; fold its correlation counters into the
    # fleet section of the report when present.
    incidents_dir = args.dir / "incidents"
    incident_summary = None
    if incidents_dir.is_dir():
        from repro.serve.incidents import scan_bundles, summarize

        incident_summary = summarize(scan_bundles(incidents_dir))
    report = score_store(
        registry,
        ledger=ledger,
        thresholds=thresholds,
        incident_summary=incident_summary,
    )
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(report.render_text())
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    pair = _registry_ledger(args.dir)
    if isinstance(pair, int):
        return pair
    _, ledger = pair
    entries = ledger.entries(kind=getattr(args, "kind", None))
    if args.ledger_action == "list":
        if not entries:
            print("ledger is empty")
            return 0
        print(f"{'seq':>5s} {'kind':<17s} {'context':<26s} detail")
        for entry in entries:
            context = entry.get("context")
            label = f"{context[0]}@{context[1]}" if context else "-"
            print(
                f"{entry.get('seq', 0):>5d} {entry['kind']:<17s} "
                f"{label:<26s} {_describe_entry(entry)}"
            )
        if ledger.skipped:
            print(
                f"({ledger.skipped} unparseable line(s) skipped)",
                file=sys.stderr,
            )
        return 0
    # show
    if not entries:
        print("error: ledger is empty", file=sys.stderr)
        return 2
    if args.seq is None:
        entry = entries[-1]
    else:
        matching = [e for e in entries if e.get("seq") == args.seq]
        if not matching:
            print(f"error: no entry with seq={args.seq}", file=sys.stderr)
            return 2
        entry = matching[-1]
    json.dump(entry, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.eval.registry import (
        CampaignSpec,
        RunRegistry,
        builtin_spec,
        compare_cohorts,
    )

    registry = RunRegistry(args.dir)

    if args.runs_action == "run":
        try:
            if args.spec_file is not None:
                spec = CampaignSpec.from_json(
                    json.loads(args.spec_file.read_text(encoding="utf-8"))
                )
                overrides = {
                    name: value
                    for name, value in (
                        ("test_reps", args.reps),
                        ("base_seed", args.seed),
                        ("node", args.node),
                        ("repetitions", args.repetitions),
                    )
                    if value is not None
                }
                if overrides:
                    spec = dataclasses.replace(spec, **overrides)
            else:
                spec = builtin_spec(
                    args.spec,
                    test_reps=args.reps,
                    base_seed=args.seed,
                    node=args.node,
                    repetitions=args.repetitions,
                )
        except (ValueError, json.JSONDecodeError, KeyError) as exc:
            print(f"error: bad campaign spec: {exc}", file=sys.stderr)
            return 2
        store = DirectoryStore(args.store) if args.store else None
        run = registry.execute(spec, store=store, force=args.force)
        if run.skipped:
            print(
                f"run {run.run_id} already committed at {run.run_dir} "
                "(--force re-runs)"
            )
        else:
            print(f"committed {run.run_id} -> {run.run_dir}")
        for row in run.manifest["table"]:
            print(
                f"  {row['system']:<16s} rep {row['repetition']}: "
                f"precision={row['precision']:.4f} "
                f"recall={row['recall']:.4f} "
                f"({row['detected']}/{row['outcomes']} detected)"
            )
        return 0

    if args.runs_action == "list":
        if args.rebuild:
            count = registry.rebuild_index()
            print(
                f"rebuilt index from {count} committed run(s)",
                file=sys.stderr,
            )
        rows = registry.index.runs(spec_name=args.spec)
        if not rows:
            print("no indexed runs")
            return 0
        print(
            f"{'run_id':<32s} {'spec':<14s} {'workload':<10s} "
            f"{'systems':<28s} reps"
        )
        for row in rows:
            print(
                f"{row['run_id']:<32s} {row['spec_name']:<14s} "
                f"{row['workload']:<10s} {row['systems']:<28s} "
                f"{row['repetitions']}"
            )
        return 0

    if args.runs_action == "show":
        manifest = registry.manifest(args.run_id)
        if manifest is None:
            print(
                f"error: no committed run {args.run_id!r} under "
                f"{registry.runs_dir}",
                file=sys.stderr,
            )
            return 2
        if args.json:
            json.dump(manifest, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
            return 0
        from repro.eval.registry.run import REPORT_MD

        report_path = registry.run_dir(args.run_id) / REPORT_MD
        if report_path.exists():
            sys.stdout.write(report_path.read_text(encoding="utf-8"))
        else:
            from repro.eval.registry.run import render_report_md

            sys.stdout.write(render_report_md(manifest))
        return 0

    # compare
    try:
        report = compare_cohorts(
            registry.index, args.system_a, args.system_b,
            spec_name=args.spec,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(report.render_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.obs.slo import SLOTracker
    from repro.serve import FleetMonitor, build_server

    pair = _registry_ledger(args.dir)
    if isinstance(pair, int):
        return pair
    registry, ledger = pair
    # The serving surface *is* the observability story: RED metrics,
    # /metrics and the SLO tracker all need collection on.
    obs.configure(enabled=True)
    pipeline = InvarNetX.attached_to(registry)
    blackbox_dir = None
    if not args.no_blackbox:
        blackbox_dir = (
            args.blackbox if args.blackbox is not None
            else args.dir / "incidents"
        )
    fleet_kwargs = {}
    if args.blackbox_capacity is not None:
        fleet_kwargs["blackbox_capacity"] = args.blackbox_capacity
    fleet = FleetMonitor(
        pipeline,
        shards=args.shards,
        max_lanes_per_shard=args.max_lanes_per_shard,
        warmup_ticks=args.warmup_ticks,
        cooldown_ticks=args.cooldown_ticks,
        blackbox_dir=blackbox_dir,
        **fleet_kwargs,
    )
    server = build_server(fleet, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    stop_slo = threading.Event()
    slo_thread = None
    if args.slo_interval > 0:
        tracker = SLOTracker(ledger=ledger)

        def _tick_slo() -> None:
            while not stop_slo.wait(args.slo_interval):
                tracker.observe()

        slo_thread = threading.Thread(
            target=_tick_slo, name="invarnetx-slo", daemon=True
        )
        slo_thread.start()
    print(
        f"serving {len(registry.keys())} trained context(s) "
        f"on http://{host}:{port} (ctrl-c to stop)",
        file=sys.stderr,
    )
    if blackbox_dir is not None:
        print(f"incident bundles -> {blackbox_dir}", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        stop_slo.set()
        if slo_thread is not None:
            slo_thread.join(timeout=5)
        server.server_close()
        fleet.close()
    return 0


def _incidents_root(path: Path) -> Path:
    """Accept either an incidents directory or a registry root.

    A directory that itself contains committed bundles wins; otherwise
    a nested ``incidents/`` (the serve default layout) is used.
    """
    from repro.obs.blackbox import BUNDLE_MANIFEST

    if path.is_dir():
        for entry in path.iterdir():
            if entry.is_dir() and (entry / BUNDLE_MANIFEST).is_file():
                return path
    nested = path / "incidents"
    return nested if nested.is_dir() else path


def _cmd_incidents(args: argparse.Namespace) -> int:
    from repro.serve.incidents import (
        DEFAULT_HORIZON,
        correlate,
        render_incident_list,
        render_incident_show,
        scan_bundles,
    )

    horizon = args.horizon if args.horizon is not None else DEFAULT_HORIZON
    records = scan_bundles(_incidents_root(args.dir))
    incidents = correlate(records, horizon=horizon)
    if args.incidents_action == "list":
        if args.json:
            json.dump(
                [i.to_json() for i in incidents],
                sys.stdout, indent=2, sort_keys=True,
            )
            sys.stdout.write("\n")
        else:
            print(render_incident_list(incidents))
        return 0
    # show
    matching = [i for i in incidents if i.incident_id == args.incident_id]
    if not matching:
        print(
            f"error: no platform incident {args.incident_id!r} "
            f"({len(incidents)} correlated at horizon {horizon})",
            file=sys.stderr,
        )
        return 2
    if args.json:
        json.dump(matching[0].to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_incident_show(matching[0]))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.blackbox import replay_bundle

    try:
        result = replay_bundle(args.bundle, passes=args.passes)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(result.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(result.render_text())
    return 0 if result.ok else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import HttpSource, TopApp

    app = TopApp(HttpSource(args.url), interval=args.interval)
    try:
        app.run(
            sys.stdout.write, once=args.once, iterations=args.iterations
        )
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.trace or args.trace_out is not None or args.log_level is not None:
        obs.configure(enabled=True, log_level=args.log_level)
    try:
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "diagnose":
            return _cmd_diagnose(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "health":
            return _cmd_health(args)
        if args.command == "ledger":
            return _cmd_ledger(args)
        if args.command == "runs":
            return _cmd_runs(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "incidents":
            return _cmd_incidents(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "lint":
            from repro.lint.cli import run_lint

            return run_lint(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        if args.trace:
            rendered = obs.render_trace()
            if rendered:
                print(rendered, file=sys.stderr)
        if args.trace_out is not None:
            written = obs.export_chrome_trace(args.trace_out)
            print(f"wrote trace to {written}", file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())

"""repro.lint — AST-based domain linter for the InvarNet-X codebase.

The Python type system cannot see the contracts this reproduction leans
on: per-:class:`~repro.core.context.OperationContext` model scoping
(paper §2, Figs. 9/10), explicitly threaded ``np.random.Generator``
reproducibility, and the paper's tuned constants (τ = 0.2, ε = 0.2,
β = 1.2) living in exactly one place.  This package enforces them
statically — pure :mod:`ast`, no new runtime dependencies.

Usage::

    invarnetx lint src examples          # CLI subcommand
    python -m repro.lint --format json   # module entry point

    from repro.lint import LintEngine
    report = LintEngine().check_source(code, "snippet.py")

    invarnetx lint --deep src            # + whole-program passes

``--deep`` adds the cross-module analyses of :mod:`repro.lint.project`:
determinism taint tracking from ``# repro: deterministic`` roots and
lock-discipline race detection over ``# repro: guarded-by=`` state, with
a committed baseline so CI fails on new findings only.

Violations can be silenced inline (``# repro: disable=rule-id``) or
configured repo-wide via ``[tool.repro-lint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, collect_files
from repro.lint.model import LintReport, Severity, Violation
from repro.lint.registry import (
    FileContext,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
)
from repro.lint.project import ProjectAnalyzer, deep_rule_ids
from repro.lint.reporting import render, render_json, render_text

__all__ = [
    "FileContext",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "ProjectAnalyzer",
    "Rule",
    "Severity",
    "Violation",
    "all_rules",
    "collect_files",
    "deep_rule_ids",
    "get_rule",
    "load_config",
    "register_rule",
    "render",
    "render_json",
    "render_text",
    "rule_ids",
]

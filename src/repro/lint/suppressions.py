"""Inline suppression comments.

Two forms are honoured:

``# repro: disable=rule-a,rule-b``
    Silences the named rules on the physical line carrying the comment.
    When the comment stands on a line of its own, it applies to the next
    code line instead (so directives can precede long statements).
    ``disable=all`` silences every rule there.

``# repro: disable-file=rule-a``
    Anywhere in the file (conventionally at the top): silences the named
    rules for the whole module.  ``disable-file=all`` exempts the module
    entirely.

Commentary may follow the directive after whitespace or a dash, e.g.
``# repro: disable=float-equality — exact degeneracy guard``.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "scan_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)

_ALL = "all"


class Suppressions:
    """Suppression state for one module."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()

    def add_line(self, line: int, rules: set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` silenced at ``line``?"""
        if _ALL in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return _ALL in rules or rule_id in rules


def _parse_rules(text: str) -> set[str]:
    # Stop at the first token that is not a rule list element so trailing
    # prose ("— exact zero guard") does not leak into rule names.
    rules: set[str] = set()
    for raw in text.split(","):
        name = raw.strip().split()[0] if raw.strip() else ""
        if name:
            rules.add(name)
    return rules


def _is_code_line(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


def _effective_line(
    lines: list[str], comment_line: int, comment_col: int
) -> int:
    """The line a directive governs.

    An end-of-line comment governs its own line; a standalone comment
    governs the next code line (skipping blanks and further comments).
    """
    before = lines[comment_line - 1][:comment_col]
    if before.strip():
        return comment_line
    for lineno in range(comment_line + 1, len(lines) + 1):
        if _is_code_line(lines[lineno - 1]):
            return lineno
    return comment_line


def scan_suppressions(source: str) -> Suppressions:
    """Extract every suppression directive from ``source``.

    Tokenises the module so directives inside string literals are never
    mistaken for comments.  On tokenisation failure (the engine reports
    the syntax error separately) an empty suppression set is returned.
    """
    supp = Suppressions()
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            if not rules:
                continue
            if match.group("kind") == "disable-file":
                supp.file_wide.update(rules)
            else:
                supp.add_line(
                    _effective_line(lines, tok.start[0], tok.start[1]),
                    rules,
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return supp

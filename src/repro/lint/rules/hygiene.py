"""General hygiene rules: ``silent-except`` and ``mutable-default``.

``silent-except``
    A bare ``except:`` (or ``except Exception/BaseException:``) whose
    body is only ``pass`` / ``...`` swallows every failure on the path —
    in a diagnosis system that means silently mis-training a model or
    dropping an anomaly.  Narrow the exception type or handle it
    visibly.

``mutable-default``
    A mutable default argument (``def f(x=[])``) is shared across calls;
    with per-context model dictionaries that aliasing corrupts state
    across operation contexts.  Use ``None`` plus an in-body default.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Violation
from repro.lint.registry import FileContext, Rule, register_rule

__all__ = ["SilentExceptRule", "MutableDefaultRule"]

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_broad(handler_type: ast.AST | None) -> bool:
    if handler_type is None:  # bare except:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD_EXCEPTIONS
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(el) for el in handler_type.elts)
    return False


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register_rule
class SilentExceptRule(Rule):
    rule_id = "silent-except"
    category = "hygiene"
    description = (
        "bare or broad except with a pass-only body swallows failures"
    )
    rationale = (
        "a swallowed exception here means silently mis-training a model "
        "or dropping an anomaly; narrow the type or handle it visibly"
    )
    node_types = (ast.ExceptHandler,)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        assert isinstance(node, ast.ExceptHandler)
        if not _is_broad(node.type):
            return
        if all(_is_noop(stmt) for stmt in node.body):
            what = (
                "bare except"
                if node.type is None
                else "broad except"
            )
            yield self.violation(
                ctx,
                node,
                f"{what} with a pass-only body silently swallows "
                "failures; narrow the exception type or handle it",
            )


_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register_rule
class MutableDefaultRule(Rule):
    rule_id = "mutable-default"
    category = "hygiene"
    description = "no mutable default arguments (list/dict/set literals)"
    rationale = (
        "defaults are evaluated once and shared across calls; mutating "
        "one leaks state across every caller (and every operation "
        "context)"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        assert isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and _is_mutable_literal(default):
                label = (
                    node.name
                    if isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    else "<lambda>"
                )
                yield self.violation(
                    ctx,
                    default,
                    f"mutable default argument in {label}(); use None "
                    "and create the value in the body",
                )

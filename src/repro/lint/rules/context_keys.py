"""Operation-context key discipline (rule ``context-key``).

Every model, invariant set and signature database in InvarNet-X is scoped
per :class:`~repro.core.context.OperationContext` (paper §2, Figs. 9/10).
The *only* sanctioned dictionary key for that scope is
``OperationContext.key()`` — it is the single place the
``use_operation_context=False`` ablation (collapse to ``GLOBAL_CONTEXT``)
can be implemented, and the single place the key layout can evolve.

Code that indexes a mapping with a hand-rolled ``(workload, node)`` tuple
bypasses that choke point: the ablation silently stops applying to it and
any key-layout change corrupts its lookups.  This rule flags subscripts
and ``get``/``setdefault``/``pop`` calls whose key is a literal tuple
combining a workload-ish element with a node-ish element.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Violation
from repro.lint.registry import FileContext, Rule, register_rule

__all__ = ["ContextKeyRule"]

_DICT_KEY_METHODS = frozenset({"get", "setdefault", "pop"})


def _terminal_name(node: ast.AST) -> str:
    """The identifier a tuple element reads from, lowercased.

    ``ctx.workload`` -> ``workload``; ``workload`` -> ``workload``;
    anything else -> ``""``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    return ""


def _is_raw_context_tuple(node: ast.AST) -> bool:
    if not isinstance(node, ast.Tuple) or not 2 <= len(node.elts) <= 3:
        return False
    names = [_terminal_name(el) for el in node.elts]
    has_workload = any("workload" in n for n in names)
    has_node = any("node" in n for n in names)
    return has_workload and has_node


@register_rule
class ContextKeyRule(Rule):
    rule_id = "context-key"
    category = "conventions"
    description = (
        "index per-context mappings with OperationContext.key(), not a "
        "raw (workload, node) tuple"
    )
    rationale = (
        "OperationContext.key() is the one choke point where the "
        "global-context ablation and any key-layout change apply; raw "
        "tuples bypass it"
    )
    node_types = (ast.Subscript, ast.Call)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Subscript):
            if _is_raw_context_tuple(node.slice):
                yield self.violation(
                    ctx,
                    node,
                    "mapping indexed by a raw (workload, node) tuple; "
                    "use OperationContext.key()",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _DICT_KEY_METHODS
                and node.args
                and _is_raw_context_tuple(node.args[0])
            ):
                yield self.violation(
                    ctx,
                    node,
                    f".{func.attr}() keyed by a raw (workload, node) "
                    "tuple; use OperationContext.key()",
                )

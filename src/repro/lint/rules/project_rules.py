"""Registry entries for the whole-program passes (``--deep``).

These classes carry the *metadata* — stable ids, severities, categories,
``--list-rules`` text — for violations produced by
:mod:`repro.lint.project`.  They register like any per-file rule, so
``# repro: disable=deep-determinism`` suppressions, ``[tool.repro-lint]``
``disable`` / ``severity`` configuration and the JSON report's rule
table all work unchanged; but their ``node_types`` is empty, so the
per-file engine never dispatches to them.  The analysis itself lives in
:mod:`repro.lint.project.taint` and :mod:`repro.lint.project.races` and
only runs under ``invarnetx lint --deep``.
"""

from __future__ import annotations

from repro.lint.registry import Rule, register_rule

__all__ = [
    "DeepDeterminismRule",
    "LockDisciplineRule",
    "ModuleMutableStateRule",
]


@register_rule
class DeepDeterminismRule(Rule):
    rule_id = "deep-determinism"
    category = "determinism"
    project_pass = True
    description = (
        "no call path from a '# repro: deterministic' root to a "
        "nondeterminism source (clocks, global RNGs, salted hashes, "
        "unsorted filesystem or set iteration)"
    )
    rationale = (
        "golden-file reports, signature bits and ledger fingerprints are "
        "contracts; one time.time() three frames below a renderer breaks "
        "byte-determinism invisibly to per-file rules"
    )
    node_types = ()


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    category = "concurrency"
    project_pass = True
    description = (
        "attributes written under 'with self._lock:' (or declared via "
        "'# repro: guarded-by=') must never be mutated outside it"
    )
    rationale = (
        "the tracer, metrics registry and run ledger are hammered from "
        "worker threads; one unguarded write is a lost-update bug that "
        "no unit test reliably reproduces"
    )
    node_types = ()


@register_rule
class ModuleMutableStateRule(Rule):
    rule_id = "module-mutable-state"
    category = "concurrency"
    project_pass = True
    description = (
        "module-level mutable containers in threaded modules must only "
        "be mutated while holding a module-level lock"
    )
    rationale = (
        "process-wide registries (warn-once keys, caches) are shared by "
        "every thread; post-import mutation without a lock races"
    )
    node_types = ()

"""Numerical-contract rules: ``float-equality`` and ``magic-constant``.

``float-equality``
    ``==`` / ``!=`` between float-typed expressions inside the numerical
    packages (``repro/stats``, ``repro/core`` by default).  ARIMA
    residuals, MIC scores and thresholds move with BLAS builds and
    platform math; exact comparison is either a latent bug or — when an
    exact degeneracy guard really is meant — worth an explicit
    ``# repro: disable=float-equality`` with a justification.

``magic-constant``
    The paper's tuned thresholds — τ = 0.2 (Algorithm 1 stability),
    ε = 0.2 (violation threshold), β = 1.2 (beta-max fluctuation) — are
    defined once, in the canonical parameter modules
    (``core/invariants.py``, ``core/anomaly.py``) and re-exported through
    the config dataclasses (``core/pipeline.py``, ``arx/pipeline.py``).
    A literal ``0.2`` / ``1.2`` used as a threshold anywhere else is a
    drift hazard: retuning the canonical constant silently diverges from
    the copy.  Flagged positions are comparisons containing the literal
    and bindings of the literal to a τ/ε/β-named parameter or variable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.model import Violation
from repro.lint.registry import FileContext, Rule, register_rule

__all__ = ["FloatEqualityRule", "MagicConstantRule"]


def _is_floaty(node: ast.AST) -> bool:
    """Does this expression plainly evaluate to a float?

    A deliberately shallow, syntactic notion: float literals, ``float()``
    conversions, true division, and unary/binary arithmetic over any of
    those.  Names and attribute loads are *not* assumed float — the rule
    fires only when at least one side is visibly float-typed.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floaty(node.left) or _is_floaty(node.right)
    return False


@register_rule
class FloatEqualityRule(Rule):
    rule_id = "float-equality"
    category = "numerics"
    description = (
        "no == / != between float-typed expressions in the numerical "
        "packages"
    )
    rationale = (
        "residuals, MIC scores and thresholds vary with platform math; "
        "exact float comparison is a latent bug unless explicitly "
        "justified"
    )
    node_types = (ast.Compare,)
    path_scopes = ("repro/stats/", "repro/core/")

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floaty(lhs) or _is_floaty(rhs):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.violation(
                    ctx,
                    node,
                    f"float {symbol} comparison; use a tolerance "
                    "(math.isclose / np.isclose) or suppress with a "
                    "justified '# repro: disable=float-equality'",
                )


#: The paper's tuned thresholds and the symbols they belong to.
_PAPER_CONSTANTS: dict[float, str] = {
    0.2: "tau/epsilon (TAU, EPSILON in repro.core.invariants)",
    1.2: "beta (BETA in repro.core.anomaly)",
}

_PARAM_NAME = re.compile(r"(^|_)(tau|eps|epsilon|beta)(_|$)", re.IGNORECASE)


def _paper_constant(node: ast.AST) -> float | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value in _PAPER_CONSTANTS
    ):
        return node.value
    return None


@register_rule
class MagicConstantRule(Rule):
    rule_id = "magic-constant"
    category = "numerics"
    description = (
        "paper thresholds 0.2 (tau/epsilon) and 1.2 (beta) must come "
        "from the canonical constants, not literals"
    )
    rationale = (
        "retuning TAU/EPSILON/BETA must take effect everywhere; literal "
        "copies silently drift"
    )
    node_types = (ast.Compare, ast.Call, ast.Assign, ast.AnnAssign)
    #: The canonical definition sites (parameter constants/dataclasses).
    allow_path_scopes = (
        "repro/core/invariants.py",
        "repro/core/anomaly.py",
        "repro/core/pipeline.py",
        "repro/arx/pipeline.py",
    )

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Compare):
            yield from self._check_compare(node, ctx)
        elif isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            yield from self._check_assign(node, ctx)

    def _check_compare(
        self, node: ast.Compare, ctx: FileContext
    ) -> Iterator[Violation]:
        # Any 0.2 / 1.2 inside a comparison is a threshold in disguise,
        # including the β·max(R) shape `x > 1.2 * peak`.
        for sub in ast.walk(node):
            value = _paper_constant(sub)
            if value is not None:
                yield self.violation(
                    ctx,
                    sub,
                    f"literal {value} used as a threshold; use the "
                    f"canonical constant for {_PAPER_CONSTANTS[value]}",
                )

    def _check_call(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Violation]:
        for kw in node.keywords:
            if kw.arg is None or not _PARAM_NAME.search(kw.arg):
                continue
            value = _paper_constant(kw.value)
            if value is not None:
                yield self.violation(
                    ctx,
                    kw.value,
                    f"literal {value} passed as {kw.arg}=; use the "
                    f"canonical constant for {_PAPER_CONSTANTS[value]}",
                )

    def _check_assign(
        self, node: ast.Assign | ast.AnnAssign, ctx: FileContext
    ) -> Iterator[Violation]:
        value = _paper_constant(node.value) if node.value else None
        if value is None:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            name = ""
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name and _PARAM_NAME.search(name):
                yield self.violation(
                    ctx,
                    node,
                    f"{name} bound to literal {value}; use the canonical "
                    f"constant for {_PAPER_CONSTANTS[value]}",
                )

"""Built-in lint rules.

Importing this package registers every rule with the registry in
:mod:`repro.lint.registry`.  Rules are grouped by the contract they
enforce:

- :mod:`repro.lint.rules.randomness` — RNG discipline;
- :mod:`repro.lint.rules.context_keys` — operation-context key discipline;
- :mod:`repro.lint.rules.numerics` — float equality and the paper's
  tuned constants;
- :mod:`repro.lint.rules.hygiene` — silent exception swallowing and
  mutable default arguments;
- :mod:`repro.lint.rules.project_rules` — metadata for the
  whole-program passes behind ``--deep`` (the analysis itself lives in
  :mod:`repro.lint.project`).
"""

from repro.lint.rules.context_keys import ContextKeyRule
from repro.lint.rules.hygiene import MutableDefaultRule, SilentExceptRule
from repro.lint.rules.numerics import FloatEqualityRule, MagicConstantRule
from repro.lint.rules.project_rules import (
    DeepDeterminismRule,
    LockDisciplineRule,
    ModuleMutableStateRule,
)
from repro.lint.rules.randomness import RngDisciplineRule

__all__ = [
    "ContextKeyRule",
    "DeepDeterminismRule",
    "FloatEqualityRule",
    "LockDisciplineRule",
    "MagicConstantRule",
    "ModuleMutableStateRule",
    "MutableDefaultRule",
    "RngDisciplineRule",
    "SilentExceptRule",
]

"""Built-in lint rules.

Importing this package registers every rule with the registry in
:mod:`repro.lint.registry`.  Rules are grouped by the contract they
enforce:

- :mod:`repro.lint.rules.randomness` — RNG discipline;
- :mod:`repro.lint.rules.context_keys` — operation-context key discipline;
- :mod:`repro.lint.rules.numerics` — float equality and the paper's
  tuned constants;
- :mod:`repro.lint.rules.hygiene` — silent exception swallowing and
  mutable default arguments.
"""

from repro.lint.rules.context_keys import ContextKeyRule
from repro.lint.rules.hygiene import MutableDefaultRule, SilentExceptRule
from repro.lint.rules.numerics import FloatEqualityRule, MagicConstantRule
from repro.lint.rules.randomness import RngDisciplineRule

__all__ = [
    "ContextKeyRule",
    "FloatEqualityRule",
    "MagicConstantRule",
    "MutableDefaultRule",
    "RngDisciplineRule",
    "SilentExceptRule",
]

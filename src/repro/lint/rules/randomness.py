"""RNG discipline (rule ``rng-discipline``).

Every stochastic path in this codebase threads an explicit
``np.random.Generator`` (see ``faults/bugs.py``, ``telemetry/perfcounter.py``
and ``cluster/job.py``): a run's seed fully determines its trace, which is
what makes experiments, signatures and regression tests reproducible.

Two ways to break that contract are flagged:

- calling through numpy's legacy *global* RNG (``np.random.rand(...)``,
  ``np.random.seed(...)``, ...) — hidden global state, unseedable per run;
- using the stdlib :mod:`random` module at all — a second, independently
  seeded RNG stream that silently decouples from the threaded generator.

Constructing generators is fine: ``np.random.default_rng(seed)`` and the
``Generator`` / ``SeedSequence`` / bit-generator classes are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Violation
from repro.lint.registry import FileContext, Rule, register_rule

__all__ = ["RngDisciplineRule"]

#: numpy.random attributes that are *construction*, not sampling.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register_rule
class RngDisciplineRule(Rule):
    rule_id = "rng-discipline"
    category = "determinism"
    description = (
        "stochastic code must thread an explicit np.random.Generator; "
        "no legacy np.random.* global calls, no stdlib random"
    )
    rationale = (
        "a run's seed must fully determine its trace (reproducible "
        "experiments and signatures); module-level RNG state breaks that"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            yield from self._check_import(node, ctx)
        elif isinstance(node, ast.ImportFrom):
            yield from self._check_import_from(node, ctx)
        elif isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)

    def _check_import(
        self, node: ast.Import, ctx: FileContext
    ) -> Iterator[Violation]:
        for alias in node.names:
            if alias.name == "random":
                yield self.violation(
                    ctx,
                    node,
                    "stdlib 'random' imported; thread an "
                    "np.random.Generator parameter instead",
                )

    def _check_import_from(
        self, node: ast.ImportFrom, ctx: FileContext
    ) -> Iterator[Violation]:
        if node.module == "random":
            yield self.violation(
                ctx,
                node,
                "import from stdlib 'random'; thread an "
                "np.random.Generator parameter instead",
            )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_NP_RANDOM:
                    yield self.violation(
                        ctx,
                        node,
                        f"'from numpy.random import {alias.name}' binds a "
                        "legacy global-state sampler; thread a Generator",
                    )

    def _check_call(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Violation]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        target = func.value
        # np.random.<fn>(...) via a numpy module alias.
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "random"
            and isinstance(target.value, ast.Name)
            and target.value.id in ctx.numpy_aliases
        ):
            if attr not in _ALLOWED_NP_RANDOM:
                yield self.violation(
                    ctx,
                    node,
                    f"legacy global RNG call np.random.{attr}(); pass an "
                    "np.random.Generator and sample from it",
                )
            return
        if not isinstance(target, ast.Name):
            return
        # nr.<fn>(...) via a numpy.random module alias.
        if target.id in ctx.numpy_random_aliases:
            if attr not in _ALLOWED_NP_RANDOM:
                yield self.violation(
                    ctx,
                    node,
                    f"legacy global RNG call numpy.random.{attr}(); pass "
                    "an np.random.Generator and sample from it",
                )
        # random.<fn>(...) via the stdlib module (redundant with the
        # import check but catches modules that dodge it, e.g. via
        # importlib or a re-export).
        elif target.id in ctx.stdlib_random_aliases:
            yield self.violation(
                ctx,
                node,
                f"stdlib random.{attr}() call; thread an "
                "np.random.Generator parameter instead",
            )

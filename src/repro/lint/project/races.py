"""Pass 2: lock-discipline race detection.

Two rules:

``lock-discipline``
    For every class that owns a lock (an attribute assigned
    ``threading.Lock()`` / ``RLock()``, or any attribute whose name ends
    in ``lock``), the pass infers the *guarded set*: attributes written
    or mutated inside a ``with self._lock:`` body, merged with explicit
    ``# repro: guarded-by=<lock>`` declarations (ground truth — an
    annotated attribute stays guarded even if every locked write is
    edited away).  Any write to a guarded attribute outside the lock —
    direct assignment, augmented assignment, subscript stores, or a
    mutating container method (``append``/``add``/``update``/...) — is
    flagged, naming the guarding lock.  ``__init__``/``__new__`` are
    exempt: construction happens-before sharing.

``module-mutable-state``
    In *threaded* modules (those importing ``threading`` or
    ``concurrent.futures``), module-level mutable containers (dict/list/
    set/deque/OrderedDict literals or constructors) mutated from function
    bodies must hold a module-level lock (``with _seen_lock:``); the
    pass flags unguarded mutations and ``global`` rebinding.  A
    module-level ``# repro: guarded-by=<lock>`` declaration is honoured
    as ground truth in any module, threaded or not.

Approximations (documented in DESIGN.md §12): writes through
``self.x.y = ...`` are attributed to ``y``'s owner, not ``x`` (so
thread-local wrappers do not false-positive); cross-module mutation of
an imported global is not tracked; objects handed to
``threading.Thread(target=...)`` are assumed to follow the class-lock
discipline above rather than being re-analysed per spawn site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.model import Severity, Violation
from repro.lint.project.symbols import (
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted_name,
)

__all__ = ["run_race_pass", "guarded_attributes"]

LOCK_RULE_ID = "lock-discipline"
MODULE_RULE_ID = "module-mutable-state"

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
        "move_to_end",
    }
)

#: Constructors that build mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "OrderedDict",
        "defaultdict",
        "Counter",
        "collections.deque",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.Counter",
    }
)

_THREADING_MODULES = ("threading", "concurrent.futures", "concurrent")


@dataclass
class _Write:
    """One attribute/global mutation site."""

    name: str
    line: int
    col: int
    method: str
    locks_held: frozenset[str]
    verb: str  # "assigned", "mutated via .append()", ...


def _lock_name_of_with_item(item: ast.withitem) -> str | None:
    """``with self.<name>:`` / ``with <name>:`` → the lock name."""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
    ):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_lock_ctor(value: ast.expr, mod: ModuleInfo) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = _dotted_name(value.func)
    if dotted is None:
        return False
    expanded = mod.expand(dotted)
    return expanded in (
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    )


def _is_mutable_ctor(value: ast.expr | None, mod: ModuleInfo) -> bool:
    if value is None:
        return False
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        dotted = _dotted_name(value.func)
        if dotted is None:
            return False
        return (
            dotted in _MUTABLE_CONSTRUCTORS
            or mod.expand(dotted) in _MUTABLE_CONSTRUCTORS
        )
    return False


# ----------------------------------------------------------------------
class _WriteCollector:
    """Walk one function body tracking the set of locks held."""

    def __init__(
        self,
        method_name: str,
        is_self_target: bool,
        watched: set[str] | None = None,
    ) -> None:
        self.method = method_name
        self.self_mode = is_self_target
        self.watched = watched  # None = watch all (class mode)
        self.writes: list[_Write] = []

    # -- target extraction ---------------------------------------------
    def _watched_name(self, expr: ast.expr) -> str | None:
        """The attribute/global name ``expr`` addresses, if watched."""
        if self.self_mode:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in ("self", "cls")
            ):
                return expr.attr
            return None
        if isinstance(expr, ast.Name) and (
            self.watched is None or expr.id in self.watched
        ):
            return expr.id
        return None

    def _record(
        self, name: str, node: ast.AST, locks: frozenset[str], verb: str
    ) -> None:
        self.writes.append(
            _Write(
                name=name,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                method=self.method,
                locks_held=locks,
                verb=verb,
            )
        )

    # -- traversal ------------------------------------------------------
    def walk(self, body: list[ast.stmt], locks: frozenset[str]) -> None:
        for stmt in body:
            self._visit(stmt, locks)

    def _visit(self, node: ast.AST, locks: frozenset[str]) -> None:
        if isinstance(node, ast.With):
            inner = set(locks)
            for item in node.items:
                lock = _lock_name_of_with_item(item)
                if lock is not None:
                    inner.add(lock)
            self.walk(node.body, frozenset(inner))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs: treat as same-thread code, keep lock context
            self.walk(node.body, locks)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._check_store(target, node, locks)
            self._visit_expr_children(node, locks)
            return
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            self._check_store(node.target, node, locks)
            self._visit_expr_children(node, locks)
            return
        if isinstance(node, ast.AugAssign):
            self._check_store(node.target, node, locks, verb="augmented")
            self._visit_expr_children(node, locks)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                name = self._watched_name(func.value)
                if name is not None:
                    self._record(
                        name, node, locks, f"mutated via .{func.attr}()"
                    )
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks)

    def _visit_expr_children(
        self, node: ast.AST, locks: frozenset[str]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks)

    def _check_store(
        self,
        target: ast.expr,
        node: ast.AST,
        locks: frozenset[str],
        verb: str = "assigned",
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, node, locks, verb)
            return
        if isinstance(target, ast.Subscript):
            name = self._watched_name(target.value)
            if name is not None:
                self._record(name, node, locks, "item-assigned")
            return
        name = self._watched_name(target)
        if name is not None:
            self._record(name, node, locks, verb)


# ----------------------------------------------------------------------
def _class_locks(cls: ClassInfo, mod: ModuleInfo) -> set[str]:
    """Lock attributes of ``cls``: ``threading.Lock()`` assignments and
    lock-named attributes."""
    locks: set[str] = set()
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and (
                        _is_lock_ctor(node.value, mod)
                        or target.attr.lower().endswith("lock")
                    )
                ):
                    locks.add(target.attr)
    for name in cls.declared_guards.values():
        locks.add(name)
    return locks


def guarded_attributes(
    cls: ClassInfo, mod: ModuleInfo, index: ProjectIndex
) -> tuple[dict[str, str], list[_Write]]:
    """(guarded attribute -> lock, every write site) for one class."""
    locks = _class_locks(cls, mod)
    writes: list[_Write] = []
    for method in cls.methods.values():
        collector = _WriteCollector(method.name, is_self_target=True)
        collector.walk(method.node.body, frozenset())
        writes.extend(collector.writes)
    guarded: dict[str, str] = {}
    for write in writes:
        if write.method in ("__init__", "__new__"):
            continue
        held = write.locks_held & locks
        if held and write.name not in guarded:
            guarded[write.name] = sorted(held)[0]
    # Ground truth wins over inference, and inherited declarations apply.
    guarded.update(index.guards_for(cls))
    # A lock never guards itself.
    for lock in locks:
        guarded.pop(lock, None)
    return guarded, writes


def _check_class(
    cls: ClassInfo,
    mod: ModuleInfo,
    index: ProjectIndex,
    severity: Severity,
) -> list[Violation]:
    guarded, writes = guarded_attributes(cls, mod, index)
    if not guarded:
        return []
    violations: list[Violation] = []
    for write in writes:
        if write.method in ("__init__", "__new__"):
            continue
        lock = guarded.get(write.name)
        if lock is None or lock in write.locks_held:
            continue
        violations.append(
            Violation(
                path=cls.path,
                line=write.line,
                col=write.col,
                rule_id=LOCK_RULE_ID,
                message=(
                    f"attribute {write.name!r} of {cls.qualname} is "
                    f"guarded by {lock!r} but {write.verb} in "
                    f"{write.method}() without holding it"
                ),
                severity=severity,
            )
        )
    return violations


# ----------------------------------------------------------------------
def _module_is_threaded(mod: ModuleInfo) -> bool:
    bound = set(mod.imports.values())
    for dotted in mod.from_imports.values():
        bound.add(dotted.rpartition(".")[0] or dotted)
    return any(
        b == m or b.startswith(m + ".")
        for b in bound
        for m in _THREADING_MODULES
    )


def _module_locks(mod: ModuleInfo) -> set[str]:
    locks: set[str] = set()
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value, mod):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    locks.update(mod.declared_guards.values())
    return locks


def _module_mutables(mod: ModuleInfo) -> set[str]:
    mutables: set[str] = set()
    for stmt in mod.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if not _is_mutable_ctor(value, mod):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


def _check_module_state(
    mod: ModuleInfo, severity: Severity
) -> list[Violation]:
    threaded = _module_is_threaded(mod)
    declared = set(mod.declared_guards)
    if not threaded and not declared:
        return []
    mutables = _module_mutables(mod) | declared
    if not mutables:
        return []
    locks = _module_locks(mod)
    violations: list[Violation] = []
    all_functions = list(mod.functions.values()) + [
        m for cls in mod.classes.values() for m in cls.methods.values()
    ]
    for fn in all_functions:
        collector = _WriteCollector(
            fn.name, is_self_target=False, watched=mutables
        )
        collector.walk(fn.node.body, frozenset())
        if not collector.writes:
            continue
        global_names: set[str] = set()
        local_names: set[str] = {
            a.arg
            for a in (
                *fn.node.args.posonlyargs,
                *fn.node.args.args,
                *fn.node.args.kwonlyargs,
            )
        }
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                local_names.add(node.id)
        for write in collector.writes:
            if write.verb in ("assigned", "augmented"):
                # A plain name store without `global` binds a local —
                # not a mutation of module state.
                if write.name not in global_names:
                    continue
            elif (
                write.name in local_names
                and write.name not in global_names
            ):
                # mutation of a local that shadows the module global.
                continue
            if write.name in declared:
                lock = mod.declared_guards[write.name]
                satisfied = lock in write.locks_held
            else:
                lock = sorted(locks)[0] if locks else None
                satisfied = bool(write.locks_held & locks)
            if lock is not None and satisfied:
                continue
            wanted = (
                f"hold {lock!r}" if lock is not None else "add a module lock"
            )
            violations.append(
                Violation(
                    path=mod.path,
                    line=write.line,
                    col=write.col,
                    rule_id=MODULE_RULE_ID,
                    message=(
                        f"module-level mutable {write.name!r} {write.verb} "
                        f"in {fn.name}() without a lock in a threaded "
                        f"module; {wanted} around the mutation"
                    ),
                    severity=severity,
                )
            )
    return violations


def run_race_pass(
    index: ProjectIndex,
    lock_severity: Severity = Severity.ERROR,
    module_severity: Severity = Severity.ERROR,
    check_locks: bool = True,
    check_module_state: bool = True,
) -> list[Violation]:
    """Both race rules over every indexed module."""
    violations: list[Violation] = []
    for name in sorted(index.modules):
        mod = index.modules[name]
        if check_locks:
            for cls_name in sorted(mod.classes):
                violations.extend(
                    _check_class(
                        mod.classes[cls_name], mod, index, lock_severity
                    )
                )
        if check_module_state:
            violations.extend(_check_module_state(mod, module_severity))
    return violations

"""``repro.lint.project`` — whole-program analysis over the source tree.

The per-file rules in :mod:`repro.lint.rules` see one module at a time;
they cannot see a ``time.time()`` call three frames below a report
renderer, or an attribute mutated both under and outside a lock.  This
package adds the missing cross-module view — a two-pass engine behind
``invarnetx lint --deep``:

1. :mod:`~repro.lint.project.symbols` parses every module once into a
   project-wide symbol table (modules, classes, functions, imports,
   ``# repro:`` directive markers);
2. :mod:`~repro.lint.project.callgraph` layers an *approximate* call
   graph on top (direct calls, ``self.``/``cls.`` methods with base-class
   resolution, aliased imports, annotation-typed receivers, decorators);
3. :mod:`~repro.lint.project.taint` walks the graph from declared
   deterministic roots (``# repro: deterministic`` markers or the
   ``deterministic-roots`` config list) and reports every path to a
   nondeterminism source, full call chain included;
4. :mod:`~repro.lint.project.races` infers lock-guarded attributes from
   ``with self._lock:`` bodies (plus ``# repro: guarded-by=`` ground
   truth) and flags unguarded mutations, including module-level mutable
   state in threaded modules;
5. :mod:`~repro.lint.project.baseline` grandfathers known findings so CI
   fails on *new* violations only.

Everything funnels into the existing :class:`~repro.lint.model.Violation`
/ suppression / severity machinery, so ``# repro: disable=deep-determinism``
and ``[tool.repro-lint.severity]`` behave exactly as they do for the
per-file rules.
"""

from repro.lint.project.analyzer import (
    ProjectAnalyzer,
    apply_baseline,
    deep_rule_ids,
)
from repro.lint.project.baseline import (
    Baseline,
    BaselineError,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.lint.project.callgraph import CallGraph, build_call_graph
from repro.lint.project.symbols import ProjectIndex, build_index

__all__ = [
    "Baseline",
    "BaselineError",
    "CallGraph",
    "ProjectAnalyzer",
    "ProjectIndex",
    "apply_baseline",
    "baseline_key",
    "build_call_graph",
    "build_index",
    "deep_rule_ids",
    "load_baseline",
    "write_baseline",
]

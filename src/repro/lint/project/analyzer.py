"""Orchestration of the whole-program passes (``invarnetx lint --deep``).

A :class:`ProjectAnalyzer` is the deep-analysis twin of
:class:`~repro.lint.engine.LintEngine`: it takes the same
:class:`~repro.lint.config.LintConfig`, the same ``--select`` /
``--disable`` narrowing, honours the same inline suppressions and
returns the same :class:`~repro.lint.model.LintReport` — but where the
engine walks one file at a time, the analyzer parses every collected
file into one :class:`~repro.lint.project.symbols.ProjectIndex`, layers
the approximate call graph on top, and runs the cross-module passes:

- determinism taint (:mod:`~repro.lint.project.taint`),
- lock discipline and module-state races
  (:mod:`~repro.lint.project.races`).

Baseline filtering (:func:`apply_baseline`) happens after suppression
filtering, so an inline ``# repro: disable=`` never consumes a baseline
entry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.config import LintConfig
from repro.lint.engine import collect_files
from repro.lint.model import LintReport, Severity, Violation
from repro.lint.project.baseline import Baseline
from repro.lint.project.callgraph import build_call_graph
from repro.lint.project.symbols import build_index
from repro.lint.project.taint import RULE_ID as TAINT_RULE_ID
from repro.lint.project.taint import run_taint_pass
from repro.lint.project.races import (
    LOCK_RULE_ID,
    MODULE_RULE_ID,
    run_race_pass,
)
from repro.lint.registry import all_rules

__all__ = ["ProjectAnalyzer", "apply_baseline", "deep_rule_ids"]


def deep_rule_ids() -> list[str]:
    """Sorted ids of every registered whole-program rule."""
    return sorted(
        cls.rule_id for cls in all_rules() if cls.project_pass
    )


class ProjectAnalyzer:
    """A configured whole-program analyzer ready to check a tree.

    Args:
        config: resolved configuration (defaults when omitted).
        selected: when given, only these rule ids run (CLI ``--select``);
            per-file ids in the list are simply not deep rules and are
            ignored here.
        extra_disabled: rule ids to drop on top of the config's.
    """

    def __init__(
        self,
        config: LintConfig | None = None,
        selected: Iterable[str] | None = None,
        extra_disabled: Iterable[str] = (),
    ) -> None:
        self.config = config or LintConfig()
        drop = {*self.config.disabled, *extra_disabled}
        wanted = set(selected) if selected is not None else None
        #: Active deep rule id -> effective severity.
        self.active: dict[str, Severity] = {}
        for cls in all_rules():
            if not cls.project_pass or cls.rule_id in drop:
                continue
            if wanted is not None and cls.rule_id not in wanted:
                continue
            self.active[cls.rule_id] = self.config.severity_overrides.get(
                cls.rule_id, cls.severity
            )

    def analyze_paths(self, paths: Sequence[str | Path]) -> LintReport:
        """Run every active pass over files and directories.

        Raises:
            FileNotFoundError: when a named path does not exist.
        """
        return self.analyze_files(
            collect_files(paths, excludes=self.config.excludes)
        )

    def analyze_files(self, files: list[Path]) -> LintReport:
        """Run every active pass over an explicit file list."""
        report = LintReport(files_checked=len(files))
        if not self.active:
            return report
        index = build_index(files)
        graph = build_call_graph(index)

        violations: list[Violation] = []
        if TAINT_RULE_ID in self.active:
            violations.extend(
                run_taint_pass(
                    index,
                    graph,
                    config_roots=self.config.project_roots,
                    severity=self.active[TAINT_RULE_ID],
                )
            )
        check_locks = LOCK_RULE_ID in self.active
        check_module = MODULE_RULE_ID in self.active
        if check_locks or check_module:
            violations.extend(
                run_race_pass(
                    index,
                    lock_severity=self.active.get(
                        LOCK_RULE_ID, Severity.ERROR
                    ),
                    module_severity=self.active.get(
                        MODULE_RULE_ID, Severity.ERROR
                    ),
                    check_locks=check_locks,
                    check_module_state=check_module,
                )
            )

        suppressions = {
            mod.path: mod.suppressions for mod in index.modules.values()
        }
        for violation in violations:
            table = suppressions.get(violation.path)
            if table is not None and table.is_suppressed(
                violation.rule_id, violation.line
            ):
                report.suppressed_count += 1
            else:
                report.violations.append(violation)
        report.sort()
        return report


def apply_baseline(report: LintReport, baseline: Baseline) -> LintReport:
    """Filter grandfathered findings out of ``report`` (in place).

    Matched findings are removed from ``report.violations`` and counted
    in ``report.baselined_count``; ``baseline.stale`` afterwards lists
    entries no current finding matched.
    """
    kept: list[Violation] = []
    for violation in report.violations:
        if baseline.accepts(violation):
            report.baselined_count += 1
        else:
            kept.append(violation)
    report.violations = kept
    return report

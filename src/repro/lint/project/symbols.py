"""Pass 0: the project-wide symbol table.

One :func:`build_index` call parses every collected file exactly once and
produces a :class:`ProjectIndex` — the substrate both analysis passes
share.  Per module it records:

- the import tables (``import numpy as np`` → ``np -> numpy``; ``from
  repro.obs import tracing as t`` → ``t -> repro.obs.tracing``);
- every top-level function and class (with methods and raw base names);
- module-level variable *types* where they are statically evident
  (``TRACER = Tracer()`` binds ``TRACER`` to the ``Tracer`` class);
- ``# repro:`` directive markers (``deterministic`` roots and
  ``guarded-by=<lock>`` ground truth) with the code line each governs;
- the module's inline suppression table, so project-pass violations
  honour ``# repro: disable=`` exactly like per-file rules.

Module names are derived structurally: walk up from each file while an
``__init__.py`` is present, so ``src/repro/obs/ledger.py`` indexes as
``repro.obs.ledger`` and test fixture packages index under their own
package names without configuration.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.suppressions import Suppressions, scan_suppressions

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
    "module_name_for",
]

#: ``# repro: deterministic`` and ``# repro: guarded-by=<name>`` markers.
_MARKER = re.compile(
    r"#\s*repro:\s*(?P<kind>deterministic|guarded-by)"
    r"(?:\s*=\s*(?P<arg>[A-Za-z_][A-Za-z0-9_]*))?"
)


def module_name_for(path: str | Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` chains.

    A file outside any package is named after its stem.
    """
    path = Path(path).resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    node = path.parent
    while (node / "__init__.py").is_file():
        parts.insert(0, node.name)
        node = node.parent
    return ".".join(parts) if parts else path.stem


def _is_code_line(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and not stripped.startswith("#")


def _effective_line(lines: list[str], lineno: int, col: int) -> int:
    """The code line a directive governs (same scheme as suppressions):
    an end-of-line comment governs its own line, a standalone comment the
    next code line."""
    before = lines[lineno - 1][:col]
    if before.strip():
        return lineno
    for candidate in range(lineno + 1, len(lines) + 1):
        if _is_code_line(lines[candidate - 1]):
            return candidate
    return lineno


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    is_root: bool = False

    @property
    def marker_lines(self) -> set[int]:
        """Lines where a ``deterministic`` marker counts for this def:
        the ``def`` line, the line above the def (or above its first
        decorator), and every decorator line."""
        first = self.node.lineno
        lines = {self.node.lineno}
        for dec in self.node.decorator_list:
            lines.add(dec.lineno)
            first = min(first, dec.lineno)
        lines.add(first - 1)
        return lines


@dataclass
class ClassInfo:
    """One class: methods, raw base names, guarded-attribute ground truth."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    #: ``# repro: guarded-by=`` declarations: attribute -> lock name.
    declared_guards: dict[str, str] = field(default_factory=dict)
    #: Types of ``self.X = ClassName(...)`` attributes (raw dotted names).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the analyses need to know about one parsed module."""

    name: str
    path: str
    tree: ast.Module
    source: str
    lines: list[str]
    suppressions: Suppressions
    #: ``import M [as a]`` bindings: local name -> dotted module.
    imports: dict[str, str] = field(default_factory=dict)
    #: ``from M import x [as y]`` bindings: local name -> dotted source.
    from_imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Lines carrying a ``deterministic`` marker.
    deterministic_lines: set[int] = field(default_factory=set)
    #: Effective line -> lock name for ``guarded-by=`` markers.
    guard_lines: dict[int, str] = field(default_factory=dict)
    #: Module-level names bound to project classes (``T = Tracer()``).
    var_types: dict[str, str] = field(default_factory=dict)
    #: Module-level guarded-by declarations: global name -> lock name.
    declared_guards: dict[str, str] = field(default_factory=dict)

    def expand(self, dotted: str) -> str:
        """Resolve the head of a dotted name through this module's
        imports (``np.random.shuffle`` -> ``numpy.random.shuffle``)."""
        head, _, rest = dotted.partition(".")
        if head in self.imports:
            base = self.imports[head]
        elif head in self.from_imports:
            base = self.from_imports[head]
        else:
            return dotted
        return f"{base}.{rest}" if rest else base


class ProjectIndex:
    """The merged symbol table over every indexed module."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    def add(self, mod: ModuleInfo) -> None:
        self.modules[mod.name] = mod
        for fn in mod.functions.values():
            self.functions[fn.qualname] = fn
        for cls in mod.classes.values():
            self.classes[cls.qualname] = cls
            for method in cls.methods.values():
                self.functions[method.qualname] = method

    # ------------------------------------------------------------------
    def resolve_class(self, mod: ModuleInfo, dotted: str) -> ClassInfo | None:
        """The project class a raw dotted reference names, if any."""
        if dotted in mod.classes:
            return mod.classes[dotted]
        return self.classes.get(mod.expand(dotted))

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> FunctionInfo | None:
        """``name`` looked up on ``cls`` then linearly up its bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            mod = self.modules.get(current.module)
            if mod is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(mod, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def guards_for(self, cls: ClassInfo) -> dict[str, str]:
        """Declared guards of ``cls`` merged over its project bases
        (subclass declarations win)."""
        merged: dict[str, str] = {}
        mod = self.modules.get(cls.module)
        if mod is not None:
            for base in cls.bases:
                resolved = self.resolve_class(mod, base)
                if resolved is not None and resolved is not cls:
                    merged.update(self.guards_for(resolved))
        merged.update(cls.declared_guards)
        return merged


# ----------------------------------------------------------------------
def _scan_markers(
    source: str, lines: list[str]
) -> tuple[set[int], dict[int, str]]:
    """All ``deterministic`` marker lines and ``guarded-by`` effective
    lines in one tokenisation pass (string literals never match)."""
    deterministic: set[int] = set()
    guards: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(tok.string)
            if match is None:
                continue
            if match.group("kind") == "deterministic":
                deterministic.add(tok.start[0])
            elif match.group("arg"):
                guards[
                    _effective_line(lines, tok.start[0], tok.start[1])
                ] = match.group("arg")
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return deterministic, guards


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` flattened, or None for anything not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _constructed_class(value: ast.expr) -> str | None:
    """Raw dotted class name when ``value`` is a plain ``Cls(...)`` call."""
    if isinstance(value, ast.Call):
        return _dotted_name(value.func)
    return None


def _scan_imports(mod: ModuleInfo) -> None:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.asname:
                    mod.imports[bound] = alias.name
                else:
                    mod.imports[bound] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            prefix = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                mod.from_imports[local] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )


def _collect_class(
    mod: ModuleInfo, node: ast.ClassDef, deterministic_lines: set[int]
) -> ClassInfo:
    info = ClassInfo(
        qualname=f"{mod.name}.{node.name}",
        module=mod.name,
        name=node.name,
        node=node,
        path=mod.path,
    )
    for base in node.bases:
        dotted = _dotted_name(base)
        if dotted is not None:
            info.bases.append(dotted)
    class_marked = bool(
        deterministic_lines & {node.lineno, node.lineno - 1}
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(
                qualname=f"{info.qualname}.{stmt.name}",
                module=mod.name,
                name=stmt.name,
                cls=node.name,
                node=stmt,
                path=mod.path,
                lineno=stmt.lineno,
            )
            fn.is_root = class_marked or bool(
                deterministic_lines & fn.marker_lines
            )
            info.methods[stmt.name] = fn
    # guarded-by declarations and self-attribute types, from any method
    # body (conventionally __init__).
    for method in info.methods.values():
        for stmt in ast.walk(method.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                lock = mod.guard_lines.get(stmt.lineno)
                if lock is not None:
                    info.declared_guards[target.attr] = lock
                if value is not None:
                    ctor = _constructed_class(value)
                    if ctor is not None:
                        info.attr_types[target.attr] = ctor
    return info


def parse_module(path: str | Path, source: str | None = None) -> ModuleInfo | None:
    """Parse one file into a :class:`ModuleInfo`; None on a syntax error
    (the per-file engine already reports those as ``parse-error``)."""
    display = Path(path).as_posix()
    if source is None:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError:
        return None
    lines = source.splitlines()
    deterministic, guards = _scan_markers(source, lines)
    mod = ModuleInfo(
        name=module_name_for(path),
        path=display,
        tree=tree,
        source=source,
        lines=lines,
        suppressions=scan_suppressions(source),
        deterministic_lines=deterministic,
        guard_lines=guards,
    )
    _scan_imports(mod)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(
                qualname=f"{mod.name}.{stmt.name}",
                module=mod.name,
                name=stmt.name,
                cls=None,
                node=stmt,
                path=mod.path,
                lineno=stmt.lineno,
            )
            fn.is_root = bool(deterministic & fn.marker_lines)
            mod.functions[stmt.name] = fn
        elif isinstance(stmt, ast.ClassDef):
            info = _collect_class(mod, stmt, deterministic)
            mod.classes[stmt.name] = info
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                lock = mod.guard_lines.get(stmt.lineno)
                if lock is not None:
                    mod.declared_guards[target.id] = lock
                if value is not None:
                    ctor = _constructed_class(value)
                    if ctor is not None:
                        mod.var_types[target.id] = ctor
    return mod


def build_index(files: list[Path]) -> ProjectIndex:
    """Parse every file once and merge into one :class:`ProjectIndex`."""
    index = ProjectIndex()
    for path in files:
        mod = parse_module(path)
        if mod is not None:
            index.add(mod)
    return index

"""Pass 1: determinism taint analysis (rule ``deep-determinism``).

The reproduction's verdicts only mean anything if the same telemetry
always yields the same bytes: explain/health reports are golden-file
tested, ledger entries are hashed into fingerprints, signatures are
compared bit-for-bit.  Functions carrying that contract are declared
*deterministic roots* — with a ``# repro: deterministic`` marker at the
definition, or via the ``deterministic-roots`` list in
``[tool.repro-lint.project]`` — and this pass flags every call path from
a root to a *nondeterminism source*:

- wall/monotonic clocks (``time.time``, ``perf_counter``, ``datetime.now``,
  ...) unless read through an injected clock (a callable named ``clock``
  or ``*_clock`` — the convention ``Tracer``/``RunLedger`` follow);
- RNGs: the stdlib ``random`` module, numpy's legacy global samplers
  (``np.random.rand`` etc.; constructing ``default_rng`` stays legal);
- hash/identity leaks: ``id()``, builtin ``hash()`` (string hashing is
  salted per process), ``uuid.uuid1/4``, ``os.urandom``, ``secrets.*``;
- unsorted filesystem enumeration: ``os.listdir``/``os.scandir``,
  ``glob.glob``/``iglob`` and ``.iterdir()``/``.glob()``/``.rglob()``
  method calls, unless the result feeds directly into ``sorted(...)``;
- order-sensitive ``set`` consumption: iterating a set literal,
  ``set(...)`` call, set comprehension or a local bound to one — in a
  ``for``, a comprehension, ``list()``/``tuple()`` or ``str.join`` —
  without ``sorted(...)``.

Each finding is anchored at the offending call and names the **full call
chain** from the root, e.g.::

    deep-determinism: nondeterministic time.time() reaches deterministic
    root 'repro.obs.explain.explain_run' via explain_run ->
    InvarNetX.detect -> InvarNetX._record_diagnose -> RunLedger.append

Soundness: the pass inherits the call graph's under-approximation for
project-internal dispatch (an unresolvable receiver produces no edge),
while *external* calls are judged by their import-expanded dotted name
in every function reachable from a root — see DESIGN.md §12.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.model import Severity, Violation
from repro.lint.project.callgraph import CallGraph, CallSite
from repro.lint.project.symbols import FunctionInfo, ProjectIndex

__all__ = ["TaintSource", "find_sources", "run_taint_pass"]

RULE_ID = "deep-determinism"

#: Import-expanded call targets that read nondeterministic state.
NONDET_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
    }
)

#: Filesystem enumeration whose order the OS does not define.
UNORDERED_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method names with OS-ordered results regardless of receiver type.
UNORDERED_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: numpy.random attributes that construct generators (allowed).
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@dataclass(frozen=True)
class TaintSource:
    """One nondeterminism source inside one function."""

    qualname: str
    path: str
    line: int
    col: int
    kind: str
    detail: str


# ----------------------------------------------------------------------
def _is_injected_clock(site: CallSite) -> bool:
    """Calls through a callable named ``clock``/``*_clock`` are the
    blessed injected-clock pattern, not a source."""
    if site.attr is not None and (
        site.attr == "clock" or site.attr.endswith("_clock")
    ):
        return True
    func = site.node.func
    if isinstance(func, ast.Name) and (
        func.id == "clock" or func.id.endswith("_clock")
    ):
        return True
    return False


def _external_call_kind(site: CallSite) -> str | None:
    """The source kind of an external call site, or None when benign."""
    func = site.node.func
    if isinstance(func, ast.Name):
        if func.id in ("id", "hash"):
            return f"builtin {func.id}()"
    dotted = site.dotted
    if dotted is None:
        if site.attr in UNORDERED_METHODS:
            return f".{site.attr}()"
        return None
    if dotted in NONDET_CALLS:
        return f"{dotted}()"
    if dotted in UNORDERED_CALLS:
        return f"{dotted}()"
    head, _, leaf = dotted.rpartition(".")
    if head == "random" or head.startswith("random."):
        return f"stdlib {dotted}()"
    if head == "numpy.random" and leaf not in _NP_RANDOM_CONSTRUCTORS:
        return f"legacy {dotted}()"
    if site.attr in UNORDERED_METHODS:
        return f".{site.attr}()"
    return None


def _needs_sort(kind: str) -> bool:
    return kind.startswith(".") or kind.split("(")[0] in {
        d for d in UNORDERED_CALLS
    } or kind.rstrip("()") in UNORDERED_CALLS


def _parents(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _under_sorted(
    node: ast.AST, parents: dict[ast.AST, ast.AST], limit: int = 3
) -> bool:
    """True when ``node`` feeds (within a few hops) into ``sorted(...)``
    or ``min``/``max``/``len``/membership — consumers that erase order
    sensitivity."""
    current = node
    for _ in range(limit):
        parent = parents.get(current)
        if parent is None:
            return False
        if isinstance(parent, ast.Call) and isinstance(
            parent.func, ast.Name
        ):
            if parent.func.id in ("sorted", "min", "max", "len", "sum",
                                  "set", "frozenset", "any", "all"):
                return True
        if isinstance(parent, ast.Compare):
            # membership tests (x in s) are order-insensitive.
            return True
        current = parent
    return False


def _set_locals(fn_node: ast.AST) -> set[str]:
    """Local names bound to set-typed values anywhere in the function."""
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
            and _is_set_expr(node.value, names)
        ):
            names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr | None, set_names: set[str]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _describe_set(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return f"set {node.id!r}"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Set):
        return "set literal"
    return "set expression"


# ----------------------------------------------------------------------
def find_sources(fn: FunctionInfo, graph: CallGraph) -> list[TaintSource]:
    """Every direct nondeterminism source inside one function."""
    sources: list[TaintSource] = []
    parents = _parents(fn.node)

    def add(node: ast.AST, kind: str, detail: str) -> None:
        sources.append(
            TaintSource(
                qualname=fn.qualname,
                path=fn.path,
                line=getattr(node, "lineno", fn.lineno),
                col=getattr(node, "col_offset", 0),
                kind=kind,
                detail=detail,
            )
        )

    # external calls recorded by the call graph walk.
    for site in graph.sites.get(fn.qualname, []):
        if site.callee is not None:
            continue  # project-internal: handled by propagation
        if _is_injected_clock(site):
            continue
        kind = _external_call_kind(site)
        if kind is None:
            continue
        if _needs_sort(kind) and _under_sorted(site.node, parents):
            continue
        if kind.startswith((".", "os.", "glob.")):
            detail = f"unsorted {kind} enumerates in filesystem order"
        elif "random" in kind:
            detail = f"{kind} samples hidden global RNG state"
        elif kind.startswith("builtin"):
            detail = f"{kind} depends on interpreter/process state"
        else:
            detail = f"{kind} reads a wall or monotonic clock"
        add(site.node, kind, detail)

    # order-sensitive set consumption.
    set_names = _set_locals(fn.node)
    for node in ast.walk(fn.node):
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            args = node.args
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and args
            ):
                iters.append(args[0])
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and args
            ):
                iters.append(args[0])
        for it in iters:
            if not _is_set_expr(it, set_names):
                continue
            if isinstance(node, ast.SetComp):
                continue  # set-to-set keeps order irrelevance
            if _under_sorted(it, parents):
                continue
            what = _describe_set(it)
            add(
                it,
                "set-iteration",
                f"iteration over {what} is ordered by salted hashes; "
                "wrap it in sorted(...)",
            )
    return sources


# ----------------------------------------------------------------------
def _chain(
    graph: CallGraph, root: str, target: str
) -> list[str] | None:
    """Shortest root→target path over the call graph (BFS)."""
    if root == target:
        return [root]
    prev: dict[str, str] = {}
    queue = [root]
    seen = {root}
    while queue:
        current = queue.pop(0)
        for callee in sorted(graph.callees(current)):
            if callee in seen:
                continue
            seen.add(callee)
            prev[callee] = current
            if callee == target:
                path = [callee]
                while path[-1] != root:
                    path.append(prev[path[-1]])
                return list(reversed(path))
            queue.append(callee)
    return None


def _reachable(graph: CallGraph, root: str) -> set[str]:
    seen = {root}
    queue = [root]
    while queue:
        current = queue.pop(0)
        for callee in graph.callees(current):
            if callee not in seen:
                seen.add(callee)
                queue.append(callee)
    return seen


def run_taint_pass(
    index: ProjectIndex,
    graph: CallGraph,
    config_roots: tuple[str, ...] = (),
    severity: Severity = Severity.ERROR,
) -> list[Violation]:
    """Flag every path from a deterministic root to a source.

    Args:
        index: the project symbol table.
        graph: the call graph over it.
        config_roots: qualified names declared roots by configuration,
            merged with ``# repro: deterministic`` markers.
        severity: severity to stamp on the violations.
    """
    roots = sorted(
        {f.qualname for f in index.functions.values() if f.is_root}
        | {r for r in config_roots if r in index.functions}
    )
    source_cache: dict[str, list[TaintSource]] = {}
    violations: list[Violation] = []
    for root in roots:
        for reached in sorted(_reachable(graph, root)):
            fn = index.functions.get(reached)
            if fn is None:
                continue
            if reached not in source_cache:
                source_cache[reached] = find_sources(fn, graph)
            for source in source_cache[reached]:
                chain = _chain(graph, root, reached) or [root, reached]
                via = " -> ".join(chain)
                violations.append(
                    Violation(
                        path=source.path,
                        line=source.line,
                        col=source.col,
                        rule_id=RULE_ID,
                        message=(
                            f"nondeterministic {source.kind} reaches "
                            f"deterministic root {root!r}: {source.detail} "
                            f"(call chain: {via})"
                        ),
                        severity=severity,
                    )
                )
    return violations

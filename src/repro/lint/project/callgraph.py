"""Pass 0.5: an approximate project call graph.

One walk per function body collects every call site and resolves as many
as static information allows:

- plain names through the module's functions and ``from`` imports
  (aliased or not), including constructor calls (``Cls()`` edges to
  ``Cls.__init__`` when one exists);
- ``self.m(...)`` / ``cls.m(...)`` through the enclosing class, then
  linearly up project base classes;
- dotted chains through module imports (``obs.warn_once`` →
  ``repro.obs.warn_once`` when ``import repro.obs as obs``), one
  re-export hop included (``repro.obs.warn_once`` resolves to
  ``repro.obs.bridge.warn_once`` via the package's ``from`` import);
- calls on *typed* receivers: parameter annotations, ``x: T`` local
  annotations, ``x = Cls(...)`` constructor inference, module-level
  variables bound to project classes, and ``self.attr`` attributes
  constructed in ``__init__``;
- decorator edges: a function decorated with ``@d`` (or ``@obj.d(...)``)
  gets an edge to the resolved decorator, modelling that calling the
  function executes the wrapper (``Tracer.traced`` is the canonical
  case).

Unresolvable receivers (untyped parameters, dynamic dispatch) simply
produce no edge — the graph is deliberately *under*-approximate for
project calls, while taint checking sees the raw dotted name of every
external call regardless (so ``time.time()`` is caught even though
``time`` is not a project module).  DESIGN.md §12 spells out the
soundness trade-offs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.project.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    _dotted_name,
)

__all__ = ["CallSite", "CallGraph", "build_call_graph"]


@dataclass
class CallSite:
    """One call expression inside one function."""

    node: ast.Call
    line: int
    #: Import-expanded dotted name of the callee (``time.time``,
    #: ``numpy.random.shuffle``), when the callee is a pure name chain.
    dotted: str | None
    #: Qualified name of the project function the call resolves to.
    callee: str | None
    #: Terminal attribute name (``clock`` in ``self._clock()``), used by
    #: the taint pass for injected-clock exemptions.
    attr: str | None


class CallGraph:
    """Edges between project functions plus per-function call sites."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: dict[str, set[str]] = {}
        self.sites: dict[str, list[CallSite]] = {}
        #: First line each (caller, callee) edge was seen at, for
        #: chain-naming diagnostics.
        self.edge_lines: dict[tuple[str, str], int] = {}

    def add_edge(self, caller: str, callee: str, line: int) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.edge_lines.setdefault((caller, callee), line)

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())


# ----------------------------------------------------------------------
def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The raw dotted name of an annotation, unwrapping ``"Cls"`` strings
    and ``Optional``-style ``X | None`` unions."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        for side in (annotation.left, annotation.right):
            name = _annotation_name(side)
            if name is not None and name != "None":
                return name
        return None
    return _dotted_name(annotation)


def _local_types(
    fn: FunctionInfo, mod: ModuleInfo, index: ProjectIndex
) -> dict[str, ClassInfo]:
    """Names with statically evident project-class types inside ``fn``."""
    types: dict[str, ClassInfo] = {}
    args = fn.node.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ):
        name = _annotation_name(arg.annotation)
        if name is not None:
            resolved = index.resolve_class(mod, name)
            if resolved is not None:
                types[arg.arg] = resolved
    for node in ast.walk(fn.node):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            name = _annotation_name(node.annotation)
            if name is not None:
                resolved = index.resolve_class(mod, name)
                if resolved is not None:
                    types[node.target.id] = resolved
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            ctor = _dotted_name(node.value.func)
            if ctor is None:
                continue
            resolved = index.resolve_class(mod, ctor)
            if resolved is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = resolved
    # module-level variables holding project-class instances.
    for name, ctor in mod.var_types.items():
        if name not in types:
            resolved = index.resolve_class(mod, ctor)
            if resolved is not None:
                types[name] = resolved
    return types


def _resolve_reexport(index: ProjectIndex, dotted: str) -> FunctionInfo | None:
    """One hop through a package re-export: ``repro.obs.warn_once`` →
    the ``repro.obs.bridge.warn_once`` definition."""
    module, _, leaf = dotted.rpartition(".")
    mod = index.modules.get(module)
    if mod is None or not leaf:
        return None
    target = mod.from_imports.get(leaf)
    if target is not None:
        return index.functions.get(target)
    return None


def _resolve_call(
    func: ast.expr,
    fn: FunctionInfo,
    mod: ModuleInfo,
    index: ProjectIndex,
    local_types: dict[str, ClassInfo],
) -> tuple[str | None, str | None, str | None]:
    """(dotted, callee qualname, terminal attr) for one callee expression."""
    attr = func.attr if isinstance(func, ast.Attribute) else None
    dotted = _dotted_name(func)

    # self.m(...) / cls.m(...) inside a method.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
        and fn.cls is not None
    ):
        cls = mod.classes.get(fn.cls)
        if cls is not None:
            method = index.resolve_method(cls, func.attr)
            if method is not None:
                return None, method.qualname, attr
            # self.attr(...) where attr was constructed in __init__.
            ctor = cls.attr_types.get(func.attr)
            return None, None, attr if ctor is None else attr
        return None, None, attr

    # receiver.m(...) on a receiver with a known project-class type; the
    # receiver may itself be self.attr with an inferred attribute type.
    if isinstance(func, ast.Attribute):
        receiver = func.value
        cls: ClassInfo | None = None
        if isinstance(receiver, ast.Name):
            cls = local_types.get(receiver.id)
        elif (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in ("self", "cls")
            and fn.cls is not None
        ):
            own = mod.classes.get(fn.cls)
            if own is not None:
                ctor = own.attr_types.get(receiver.attr)
                if ctor is not None:
                    cls = index.resolve_class(mod, ctor)
        if cls is not None:
            method = index.resolve_method(cls, func.attr)
            if method is not None:
                return None, method.qualname, attr

    if dotted is None:
        return None, None, attr

    # Plain name: local function, local class constructor, from-import.
    if isinstance(func, ast.Name):
        name = func.id
        if name in mod.functions:
            return None, mod.functions[name].qualname, attr
        if name in mod.classes:
            init = index.resolve_method(mod.classes[name], "__init__")
            return None, init.qualname if init else None, attr

    expanded = mod.expand(dotted)
    target = index.functions.get(expanded)
    if target is not None:
        return expanded, target.qualname, attr
    cls = index.classes.get(expanded)
    if cls is not None:
        init = index.resolve_method(cls, "__init__")
        return expanded, init.qualname if init else None, attr
    # Dotted method reference: Cls.method or mod.Cls.method.
    head, _, leaf = expanded.rpartition(".")
    owner = index.classes.get(head)
    if owner is not None and leaf:
        method = index.resolve_method(owner, leaf)
        if method is not None:
            return expanded, method.qualname, attr
    reexport = _resolve_reexport(index, expanded)
    if reexport is not None:
        return expanded, reexport.qualname, attr
    return expanded, None, attr


def _attribute_edge(
    node: ast.Attribute,
    fn: FunctionInfo,
    mod: ModuleInfo,
    index: ProjectIndex,
    local_types: dict[str, ClassInfo],
) -> FunctionInfo | None:
    """The method a bare attribute *load* resolves to, if any.

    Properties make attribute access execute code (``self.violated_pairs``
    runs a method body), and bound-method references passed around
    (``callback=self.flush``) eventually do too — both get an edge.
    """
    receiver = node.value
    cls: ClassInfo | None = None
    if isinstance(receiver, ast.Name):
        if receiver.id in ("self", "cls") and fn.cls is not None:
            cls = mod.classes.get(fn.cls)
        else:
            cls = local_types.get(receiver.id)
    if cls is None:
        return None
    return index.resolve_method(cls, node.attr)


def build_call_graph(index: ProjectIndex) -> CallGraph:
    """Walk every function body once and record sites + edges."""
    graph = CallGraph(index)
    for fn in index.functions.values():
        mod = index.modules.get(fn.module)
        if mod is None:
            continue
        local_types = _local_types(fn, mod, index)
        sites: list[CallSite] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute) and not isinstance(
                node.ctx, ast.Store
            ):
                method = _attribute_edge(node, fn, mod, index, local_types)
                if method is not None:
                    graph.add_edge(fn.qualname, method.qualname, node.lineno)
            if isinstance(node, ast.Call):
                dotted, callee, attr = _resolve_call(
                    node.func, fn, mod, index, local_types
                )
                sites.append(
                    CallSite(
                        node=node,
                        line=node.lineno,
                        dotted=dotted,
                        callee=callee,
                        attr=attr,
                    )
                )
                if callee is not None:
                    graph.add_edge(fn.qualname, callee, node.lineno)
        # decorator edges: calling fn executes its wrappers.
        for dec in fn.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dotted, callee, _ = _resolve_call(
                target, fn, mod, index, local_types
            )
            if callee is not None:
                graph.add_edge(fn.qualname, callee, dec.lineno)
        graph.sites[fn.qualname] = sites
    return graph

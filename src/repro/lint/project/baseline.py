"""Grandfathered findings: the ``lint-baseline.json`` file.

A committed baseline lets CI fail on *new* deep violations only: every
finding whose key appears in the baseline is filtered out of the report
(counted, not shown), so adopting the analyzer never requires fixing the
whole backlog at once — while any regression is a hard failure.

Keys deliberately exclude line numbers and columns: a baselined finding
that merely *moves* (code above it edited) stays baselined, one whose
message changes (different chain, different lock) resurfaces.  The file
is sorted and newline-terminated so diffs stay one-line-per-finding.

Workflow::

    invarnetx lint --deep --write-baseline   # (re)generate, then commit
    invarnetx lint --deep                    # fails only on new findings
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.model import Violation

__all__ = [
    "BASELINE_FORMAT",
    "Baseline",
    "baseline_key",
    "load_baseline",
    "write_baseline",
]

#: Schema version of the baseline document.
BASELINE_FORMAT = 1


def baseline_key(violation: Violation) -> tuple[str, str, str]:
    """The identity a finding is grandfathered under."""
    return (violation.path, violation.rule_id, violation.message)


class Baseline:
    """An in-memory baseline with match accounting."""

    def __init__(self, entries: set[tuple[str, str, str]] | None = None):
        self.entries = entries or set()
        self.matched: set[tuple[str, str, str]] = set()

    def __len__(self) -> int:
        return len(self.entries)

    def accepts(self, violation: Violation) -> bool:
        """True when ``violation`` is grandfathered (and record the hit)."""
        key = baseline_key(violation)
        if key in self.entries:
            self.matched.add(key)
            return True
        return False

    @property
    def stale(self) -> list[tuple[str, str, str]]:
        """Baseline entries no current finding matched — candidates for
        removal, sorted for stable output."""
        return sorted(self.entries - self.matched)


class BaselineError(ValueError):
    """A malformed baseline file."""


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    Raises:
        BaselineError: on unparseable JSON or a wrong shape.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return Baseline()
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(
        doc.get("entries"), list
    ):
        raise BaselineError(
            f"{path}: expected an object with an 'entries' list"
        )
    entries: set[tuple[str, str, str]] = set()
    for item in doc["entries"]:
        if (
            not isinstance(item, dict)
            or not isinstance(item.get("path"), str)
            or not isinstance(item.get("rule"), str)
            or not isinstance(item.get("message"), str)
        ):
            raise BaselineError(
                f"{path}: every entry needs string "
                "'path', 'rule' and 'message' fields"
            )
        entries.add((item["path"], item["rule"], item["message"]))
    return Baseline(entries)


def write_baseline(
    path: str | Path, violations: list[Violation]
) -> int:
    """Write the baseline for ``violations``; returns the entry count."""
    keys = sorted({baseline_key(v) for v in violations})
    doc = {
        "format": BASELINE_FORMAT,
        "entries": [
            {"path": p, "rule": r, "message": m} for p, r, m in keys
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(keys)

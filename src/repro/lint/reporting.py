"""Reporters: render a :class:`~repro.lint.model.LintReport`.

Two formats:

- ``text`` — one ``file:line:col: rule-id: message [severity]`` line per
  violation plus a summary line; the format greppable reviewers expect.
- ``json`` — a stable machine-readable document for CI annotation
  tooling.  Since ``schema_version`` 2 the document also carries a
  ``rules`` table — id, default severity and category of every
  registered rule — so consumers can group and colour findings without
  importing the linter.

JSON schema (version 2)::

    {
      "schema_version": 2,
      "rules": [{"id": ..., "severity": ..., "category": ...}, ...],
      "violations": [{"path", "line", "col", "rule", "severity",
                      "message"}, ...],
      "summary": {"files_checked", "errors", "warnings", "suppressed",
                  "baselined", "ok"}
    }
"""

from __future__ import annotations

import json

from repro.lint.model import LintReport
from repro.lint.registry import all_rules

__all__ = ["render_text", "render_json", "render", "FORMATS", "SCHEMA_VERSION"]

FORMATS = ("text", "json")

#: Version of the JSON report document.  2 added ``schema_version``
#: itself, the ``rules`` metadata table and ``summary.baselined``.
SCHEMA_VERSION = 2


# repro: deterministic
def render_text(report: LintReport) -> str:
    """Human-readable report."""
    lines = [v.format() for v in report.violations]
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{report.error_count} error(s), "
        f"{report.warning_count} warning(s)"
    )
    if report.suppressed_count:
        summary += f", {report.suppressed_count} suppressed"
    if report.baselined_count:
        summary += f", {report.baselined_count} baselined"
    lines.append(summary)
    return "\n".join(lines)


# repro: deterministic
def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, 2-space indent)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "rules": [
            {
                "id": cls.rule_id,
                "severity": cls.severity.value,
                "category": cls.category,
            }
            for cls in all_rules()
        ],
        "violations": [v.to_dict() for v in report.violations],
        "summary": {
            "files_checked": report.files_checked,
            "errors": report.error_count,
            "warnings": report.warning_count,
            "suppressed": report.suppressed_count,
            "baselined": report.baselined_count,
            "ok": report.ok,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render(report: LintReport, fmt: str) -> str:
    """Render in the named format.

    Raises:
        ValueError: for an unknown format name.
    """
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return render_json(report)
    raise ValueError(
        f"unknown format {fmt!r}; expected one of {', '.join(FORMATS)}"
    )

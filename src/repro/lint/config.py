"""Configuration: the ``[tool.repro-lint]`` table of ``pyproject.toml``.

Recognised keys::

    [tool.repro-lint]
    disable = ["rule-id", ...]        # rules that never run
    exclude = ["__pycache__", ...]    # path fragments to skip

    [tool.repro-lint.severity]
    float-equality = "warning"        # per-rule severity override

    [tool.repro-lint.options.float-equality]
    paths = ["repro/stats/"]          # per-rule options (Rule.configure)

    [tool.repro-lint.project]         # whole-program analysis (--deep)
    deterministic-roots = ["repro.core.persistence.save_invariants"]
    baseline = "lint-baseline.json"   # relative to this pyproject.toml

Parsing uses :mod:`tomllib` (stdlib since 3.11).  On interpreters
without it the config file is ignored — the linter still runs with
built-in defaults, it just cannot be customised from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.model import Severity

try:  # pragma: no cover - depends on interpreter version
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_config", "find_pyproject"]

#: Path fragments never worth linting.
DEFAULT_EXCLUDES = (
    "__pycache__",
    ".git/",
    ".egg-info",
    ".pytest_cache",
    ".hypothesis",
    "build/",
    "dist/",
)


@dataclass
class LintConfig:
    """Resolved linter configuration.

    Attributes:
        disabled: rule ids that never run.
        excludes: path fragments that exempt a file from linting.
        severity_overrides: per-rule severity replacing rule defaults.
        rule_options: per-rule option dicts (see ``Rule.configure``).
        project_roots: qualified names declared deterministic roots for
            the ``--deep`` taint pass, on top of inline
            ``# repro: deterministic`` markers.
        baseline: path of the deep-analysis baseline file, resolved
            relative to the pyproject it was read from.
        source: where the config came from (for diagnostics).
    """

    disabled: tuple[str, ...] = ()
    excludes: tuple[str, ...] = DEFAULT_EXCLUDES
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    rule_options: dict[str, dict[str, object]] = field(
        default_factory=dict
    )
    project_roots: tuple[str, ...] = ()
    baseline: str | None = None
    source: str = "<defaults>"


class ConfigError(ValueError):
    """A malformed ``[tool.repro-lint]`` table."""


def find_pyproject(start: str | Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    node = Path(start).resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: str | Path | None) -> LintConfig:
    """Read the ``[tool.repro-lint]`` table.

    Args:
        pyproject: path to a ``pyproject.toml``, or None for defaults.

    Raises:
        ConfigError: when the table exists but is malformed.
    """
    if pyproject is None or tomllib is None:
        return LintConfig()
    path = Path(pyproject)
    try:
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    except OSError:
        return LintConfig()
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"{path}: invalid TOML: {exc}") from exc
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return LintConfig(source=f"{path} (no [tool.repro-lint] table)")
    if not isinstance(table, dict):
        raise ConfigError(f"{path}: [tool.repro-lint] must be a table")

    disabled = _string_list(table, "disable", path)
    excludes = DEFAULT_EXCLUDES + _string_list(table, "exclude", path)

    severity_overrides: dict[str, Severity] = {}
    raw_sev = table.get("severity", {})
    if not isinstance(raw_sev, dict):
        raise ConfigError(f"{path}: [tool.repro-lint.severity] must be a table")
    for rule_id, value in raw_sev.items():
        try:
            severity_overrides[str(rule_id)] = Severity.parse(str(value))
        except ValueError as exc:
            raise ConfigError(f"{path}: severity.{rule_id}: {exc}") from exc

    rule_options: dict[str, dict[str, object]] = {}
    raw_opts = table.get("options", {})
    if not isinstance(raw_opts, dict):
        raise ConfigError(f"{path}: [tool.repro-lint.options] must be a table")
    for rule_id, opts in raw_opts.items():
        if not isinstance(opts, dict):
            raise ConfigError(
                f"{path}: options.{rule_id} must be a table of options"
            )
        rule_options[str(rule_id)] = dict(opts)

    project_roots: tuple[str, ...] = ()
    baseline: str | None = None
    raw_project = table.get("project", {})
    if not isinstance(raw_project, dict):
        raise ConfigError(
            f"{path}: [tool.repro-lint.project] must be a table"
        )
    if raw_project:
        project_roots = _string_list(
            raw_project, "deterministic-roots", path
        )
        raw_baseline = raw_project.get("baseline")
        if raw_baseline is not None:
            if not isinstance(raw_baseline, str):
                raise ConfigError(
                    f"{path}: [tool.repro-lint.project] baseline "
                    "must be a string"
                )
            # Relative to the pyproject, so runs from any cwd agree.
            baseline = str((path.parent / raw_baseline).resolve())

    return LintConfig(
        disabled=disabled,
        excludes=excludes,
        severity_overrides=severity_overrides,
        rule_options=rule_options,
        project_roots=project_roots,
        baseline=baseline,
        source=str(path),
    )


def _string_list(
    table: dict[str, object], key: str, path: Path
) -> tuple[str, ...]:
    raw = table.get(key, [])
    if not isinstance(raw, list) or not all(
        isinstance(item, str) for item in raw
    ):
        raise ConfigError(
            f"{path}: [tool.repro-lint] {key} must be a list of strings"
        )
    return tuple(raw)

"""Data model of the lint subsystem.

A lint run produces :class:`Violation` records — one per rule hit — each
carrying the file, position, rule id, severity and a human-readable
message.  Severities follow the usual two-level scheme: ``ERROR``
violations fail the run (non-zero exit code), ``WARNING`` violations are
reported but do not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Severity", "Violation", "LintReport"]


class Severity(enum.Enum):
    """How serious a rule hit is.

    ``ERROR`` fails the lint run; ``WARNING`` is advisory.
    """

    WARNING = "warning"
    ERROR = "error"

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name (case-insensitive).

        Raises:
            ValueError: for anything other than ``error`` / ``warning``.
        """
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected 'error' or 'warning'"
            ) from None


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source position.

    Ordering is by (path, line, col, rule) so reports are stable.

    Attributes:
        path: file the violation was found in.
        line: 1-based line number.
        col: 0-based column offset (as reported by :mod:`ast`).
        rule_id: id of the rule that fired (e.g. ``"float-equality"``).
        message: human-readable description of the problem.
        severity: error or warning.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """The canonical one-line ``file:line:col rule-id message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id}: {self.message} [{self.severity.value}]"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Aggregate outcome of linting a set of files.

    Attributes:
        violations: every rule hit, sorted by position.
        files_checked: number of Python files parsed and visited.
        suppressed_count: hits silenced by inline ``# repro: disable=``
            comments (counted so reporters can surface them).
        baselined_count: deep-analysis hits grandfathered by the
            committed baseline file (``--deep`` runs only).
    """

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    baselined_count: int = 0

    @property
    def error_count(self) -> int:
        """Number of error-severity violations."""
        return sum(
            1 for v in self.violations if v.severity is Severity.ERROR
        )

    @property
    def warning_count(self) -> int:
        """Number of warning-severity violations."""
        return sum(
            1 for v in self.violations if v.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """True when no error-severity violation was found."""
        return self.error_count == 0

    def extend(self, violations: list[Violation]) -> None:
        """Add violations (re-sorting is the caller's concern)."""
        self.violations.extend(violations)

    def sort(self) -> None:
        """Stable-sort violations by (path, line, col, rule)."""
        self.violations.sort()


def path_matches(path: str | Path, fragments: tuple[str, ...]) -> bool:
    """True when ``path`` (posix-normalised) contains any fragment.

    Used by path-scoped rules (e.g. float-equality applies only under
    ``repro/stats`` and ``repro/core``).  An empty fragment tuple means
    "applies everywhere".
    """
    if not fragments:
        return True
    text = Path(path).as_posix()
    return any(frag in text for frag in fragments)

"""Lint command line: ``invarnetx lint`` / ``python -m repro.lint``.

Exit codes are stable for CI:

- ``0`` — no error-severity violations; under ``--deep`` this includes
  runs where every deep finding is grandfathered by the baseline file
  (they are counted as *baselined*, not errors).  ``--write-baseline``
  always exits ``0`` after (re)writing the baseline.
- ``1`` — at least one error-severity violation (per-file or deep) not
  covered by the baseline, or a parse error.
- ``2`` — usage, path, configuration or malformed-baseline problem.

``--deep`` runs the whole-program passes (determinism taint tracking and
lock-discipline race detection, see :mod:`repro.lint.project`) on top of
the per-file rules; without it the behaviour is unchanged.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.config import ConfigError, find_pyproject, load_config
from repro.lint.engine import LintEngine
from repro.lint.registry import all_rules, rule_ids
from repro.lint.reporting import FORMATS, render

__all__ = ["add_lint_arguments", "run_lint", "main"]

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

#: Baseline file used when neither ``--baseline`` nor the
#: ``[tool.repro-lint.project]`` table names one.
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "examples"],
        help="files or directories to lint (default: src examples)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="skip this rule (repeatable; adds to pyproject config)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest to the first path)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject configuration entirely",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes: determinism taint "
        "tracking and lock-discipline race detection",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline file grandfathering known deep findings "
        "(default: [tool.repro-lint.project] baseline, then "
        f"{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current deep findings to the baseline file and "
        "exit 0 (implies --deep)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its severity and description, then exit",
    )


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        scope = " (--deep)" if cls.project_pass else ""
        lines.append(
            f"{cls.rule_id} [{cls.severity.value}] "
            f"<{cls.category}>{scope}"
        )
        lines.append(f"    {cls.description}")
        lines.append(f"    why: {cls.rationale}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint invocation from parsed arguments."""
    if args.list_rules:
        print(_list_rules())
        return EXIT_OK

    if args.no_config:
        pyproject = None
    elif args.config is not None:
        if not args.config.is_file():
            print(
                f"error: config file not found: {args.config}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        pyproject = args.config
    else:
        pyproject = find_pyproject(args.paths[0]) if args.paths else None

    try:
        config = load_config(pyproject)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    known = set(rule_ids())
    for rule in (args.select or []) + args.disable:
        if rule not in known:
            print(
                f"error: unknown rule {rule!r} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return EXIT_USAGE

    deep = args.deep or args.write_baseline

    engine = LintEngine(
        config=config,
        selected=args.select,
        extra_disabled=args.disable,
    )
    try:
        report = engine.check_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if deep:
        # Imported lazily so plain per-file runs never pay for the
        # whole-program machinery.
        from repro.lint.project import (
            BaselineError,
            ProjectAnalyzer,
            apply_baseline,
            load_baseline,
            write_baseline,
        )

        analyzer = ProjectAnalyzer(
            config=config,
            selected=args.select,
            extra_disabled=args.disable,
        )
        try:
            deep_report = analyzer.analyze_paths(args.paths)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

        baseline_path = (
            args.baseline
            if args.baseline is not None
            else Path(config.baseline)
            if config.baseline is not None
            else Path(DEFAULT_BASELINE)
        )
        if args.write_baseline:
            count = write_baseline(baseline_path, deep_report.violations)
            print(
                f"wrote {count} baseline entr"
                f"{'y' if count == 1 else 'ies'} to {baseline_path}"
            )
            return EXIT_OK
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        apply_baseline(deep_report, baseline)
        for stale in baseline.stale:
            print(
                "warning: stale baseline entry (no matching finding): "
                f"{stale[0]}: {stale[1]}: {stale[2]}",
                file=sys.stderr,
            )
        report.extend(deep_report.violations)
        report.suppressed_count += deep_report.suppressed_count
        report.baselined_count += deep_report.baselined_count
        report.sort()

    print(render(report, args.format))
    return EXIT_OK if report.ok else EXIT_VIOLATIONS


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Domain linter for the InvarNet-X codebase: enforces "
        "RNG discipline, operation-context key discipline and the "
        "paper's numerical contracts; --deep adds whole-program "
        "determinism taint tracking and race detection.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))

"""Rule base class and registry.

Every lint rule is a subclass of :class:`Rule` registered with
:func:`register_rule`.  A rule declares which :mod:`ast` node types it
wants to see (``node_types``); the engine walks each module once and
dispatches every node to every interested rule — one traversal per file
regardless of how many rules are active (pylint's checker-dispatch
scheme, scaled down).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Type

from repro.lint.model import Severity, Violation, path_matches

__all__ = [
    "Rule",
    "FileContext",
    "register_rule",
    "all_rules",
    "get_rule",
    "rule_ids",
]


class FileContext:
    """Per-file facts shared by every rule during one traversal.

    Attributes:
        path: display path of the module being linted.
        tree: the parsed module.
        numpy_aliases: names bound to the ``numpy`` module
            (``import numpy as np`` -> ``{"np"}``).
        numpy_random_aliases: names bound to ``numpy.random`` itself
            (``from numpy import random as nr`` -> ``{"nr"}``).
        stdlib_random_aliases: names bound to the stdlib ``random``
            module.
        from_imports: mapping of local name -> dotted source for
            ``from M import x [as y]`` bindings.
    """

    def __init__(self, path: str, tree: ast.Module, source: str = "") -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        self.stdlib_random_aliases: set[str] = set()
        self.from_imports: dict[str, str] = {}
        self._scan_imports(tree)

    def _scan_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith(
                        "numpy."
                    ):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add(bound)
                    elif alias.name == "random":
                        self.stdlib_random_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (
                        f"{module}.{alias.name}" if module else alias.name
                    )
                    if module == "numpy" and alias.name == "random":
                        self.numpy_random_aliases.add(local)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`visit`.

    Attributes:
        rule_id: stable kebab-case identifier used in reports, inline
            suppressions and configuration.
        severity: default severity (configuration may override).
        category: coarse grouping surfaced in JSON reports and
            ``--list-rules`` (``determinism``, ``concurrency``, ...).
        project_pass: True for whole-program rules that only run under
            ``--deep`` (their ``node_types`` stays empty, so the
            per-file engine never dispatches to them).
        description: one-line summary shown by ``--list-rules``.
        rationale: why the codebase enforces this contract.
        node_types: :mod:`ast` node classes this rule wants dispatched.
        path_scopes: when non-empty, the rule only fires in files whose
            path contains one of these fragments.
        allow_path_scopes: files whose path contains one of these
            fragments are exempt (canonical definition sites).
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    category: str = "general"
    project_pass: bool = False
    description: str = ""
    rationale: str = ""
    node_types: tuple[Type[ast.AST], ...] = ()
    path_scopes: tuple[str, ...] = ()
    allow_path_scopes: tuple[str, ...] = ()

    def configure(self, options: dict[str, object]) -> None:
        """Apply per-rule options from configuration.

        Recognised keys: ``paths`` (overrides ``path_scopes``) and
        ``allow-paths`` (overrides ``allow_path_scopes``).
        """
        if "paths" in options:
            self.path_scopes = tuple(str(p) for p in options["paths"])  # type: ignore[union-attr]
        if "allow-paths" in options:
            self.allow_path_scopes = tuple(
                str(p) for p in options["allow-paths"]  # type: ignore[union-attr]
            )

    def applies_to(self, path: str) -> bool:
        """Should this rule run over the module at ``path``?"""
        if self.allow_path_scopes and path_matches(
            path, self.allow_path_scopes
        ):
            return False
        return path_matches(path, self.path_scopes)

    def visit(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        """Yield violations for ``node`` (dispatched per ``node_types``)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Construct a violation anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry.

    Raises:
        ValueError: on a missing or duplicate ``rule_id``.
    """
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Type[Rule]]:
    """Every registered rule class, sorted by id."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    """Look a rule class up by id.

    Raises:
        KeyError: for an unknown id (message lists the known ones).
    """
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown rule {rule_id!r} (known: {known})"
        ) from None


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    # Rule modules register on import; pull them in lazily so importing
    # the registry alone never costs a full rule load.
    from repro.lint import rules  # noqa: F401


def instantiate(
    selected: Iterable[str] | None = None,
    disabled: Iterable[str] = (),
    severity_overrides: dict[str, Severity] | None = None,
    rule_options: dict[str, dict[str, object]] | None = None,
) -> list[Rule]:
    """Build configured rule instances.

    Args:
        selected: when given, only these rule ids run.
        disabled: rule ids to drop.
        severity_overrides: per-rule severity replacing the default.
        rule_options: per-rule option dicts handed to
            :meth:`Rule.configure`.

    Raises:
        KeyError: when ``selected`` names an unknown rule.
    """
    _ensure_loaded()
    ids = list(selected) if selected is not None else rule_ids()
    drop = set(disabled)
    instances: list[Rule] = []
    for rule_id in ids:
        if rule_id in drop:
            continue
        rule = get_rule(rule_id)()
        if severity_overrides and rule_id in severity_overrides:
            rule.severity = severity_overrides[rule_id]
        if rule_options and rule_id in rule_options:
            rule.configure(rule_options[rule_id])
        instances.append(rule)
    return instances

"""The lint engine: file collection, parsing and rule dispatch.

One :class:`LintEngine` holds a configured rule set.  For each module it
parses the source once, scans suppression comments once, then walks the
AST a single time, dispatching every node to each rule that (a) declared
interest in that node type and (b) applies to the file's path.  Rule
hits on suppressed lines are counted but not reported.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence, Type

from repro.lint.config import LintConfig
from repro.lint.model import LintReport, Severity, Violation
from repro.lint.registry import FileContext, Rule, instantiate
from repro.lint.suppressions import scan_suppressions

__all__ = ["LintEngine", "collect_files"]

#: Rule id used for files that fail to parse.
PARSE_ERROR_ID = "parse-error"


def collect_files(
    paths: Sequence[str | Path], excludes: tuple[str, ...] = ()
) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files.

    Args:
        paths: files (any extension) and directories (searched
            recursively for ``*.py``).
        excludes: path fragments; any file whose posix path contains one
            is skipped.

    Raises:
        FileNotFoundError: when a named path does not exist.
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            out.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    kept = [
        p
        for p in out
        if not any(frag in p.as_posix() for frag in excludes)
    ]
    return sorted(kept)


class LintEngine:
    """A configured linter ready to check sources.

    Args:
        config: resolved configuration (defaults when omitted).
        selected: when given, only these rule ids run (CLI ``--select``).
        extra_disabled: rule ids to drop on top of the config's.
    """

    def __init__(
        self,
        config: LintConfig | None = None,
        selected: Iterable[str] | None = None,
        extra_disabled: Iterable[str] = (),
    ) -> None:
        self.config = config or LintConfig()
        self.rules: list[Rule] = instantiate(
            selected=selected,
            disabled=(*self.config.disabled, *extra_disabled),
            severity_overrides=self.config.severity_overrides,
            rule_options=self.config.rule_options,
        )
        # node type -> rules interested in it, precomputed once.
        self._dispatch: dict[Type[ast.AST], list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def check_source(self, source: str, path: str) -> LintReport:
        """Lint one module given as a string.

        Syntax errors are reported as a single ``parse-error`` violation
        rather than raised: a broken file must fail the run, not crash
        it.
        """
        report = LintReport(files_checked=1)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"syntax error: {exc.msg}",
                    severity=Severity.ERROR,
                )
            )
            return report

        suppressions = scan_suppressions(source)
        ctx = FileContext(path=path, tree=tree, source=source)
        active = [r for r in self.rules if r.applies_to(path)]
        if not active:
            return report
        wanted = {
            nt: [r for r in rules if r in active]
            for nt, rules in self._dispatch.items()
        }
        for node in ast.walk(tree):
            rules = wanted.get(type(node))
            if not rules:
                continue
            for rule in rules:
                for violation in rule.visit(node, ctx):
                    if suppressions.is_suppressed(
                        violation.rule_id, violation.line
                    ):
                        report.suppressed_count += 1
                    else:
                        report.violations.append(violation)
        report.sort()
        return report

    def check_file(self, path: str | Path) -> LintReport:
        """Lint one file from disk.

        Unreadable or undecodable files are reported as ``parse-error``
        violations.
        """
        display = Path(path).as_posix()
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return LintReport(
                files_checked=1,
                violations=[
                    Violation(
                        path=display,
                        line=1,
                        col=0,
                        rule_id=PARSE_ERROR_ID,
                        message=f"cannot read file: {exc}",
                        severity=Severity.ERROR,
                    )
                ],
            )
        return self.check_source(source, display)

    def check_paths(self, paths: Sequence[str | Path]) -> LintReport:
        """Lint files and directories; returns the merged report.

        Raises:
            FileNotFoundError: when a named path does not exist.
        """
        files = collect_files(paths, excludes=self.config.excludes)
        total = LintReport()
        for path in files:
            report = self.check_file(path)
            total.files_checked += report.files_checked
            total.suppressed_count += report.suppressed_count
            total.extend(report.violations)
        total.sort()
        return total

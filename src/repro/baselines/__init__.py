"""Additional comparison baselines from the paper's related work (§5).

Besides the ARX invariant network (:mod:`repro.arx`), the paper discusses
correlation-based peer-similarity methods such as PeerWatch [5] — and
argues they have a blind spot: a bug triggered identically on every node
leaves the cross-node correlations intact, so peer comparison sees
nothing.  :mod:`repro.baselines.peerwatch` implements that family so the
claim can be demonstrated (see ``benchmarks/test_ext_peer_blindspot.py``).
"""

from repro.baselines.peerwatch import PeerWatchDetector

__all__ = ["PeerWatchDetector"]

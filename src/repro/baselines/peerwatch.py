"""A PeerWatch-style peer-similarity fault detector (Kang et al., ICAC
2010; the paper's reference [5]).

The method assumes peers doing identical work stay mutually correlated:
for every metric and every pair of peer nodes, the normal-state
cross-node correlation is learned; at detection time, pairs whose
correlation deviates are *violations*, and the node participating in the
most violations is flagged as faulty.  This locates faults at node
granularity only — no root cause — which is exactly the coarseness the
paper's §5 criticises.

The paper's §5 also names the blind spot this family carries:

    "Assume one bug exists in the platform; when the bug is triggered by
    a certain job, all the nodes behave abnormally in a similar way but
    the correlations are not deviated.  In this case, the
    correlation-based method will ignore this fault."

``benchmarks/test_ext_peer_blindspot.py`` reproduces that scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.correlation import pearson
from repro.telemetry.metrics import METRIC_NAMES
from repro.telemetry.trace import RunTrace

__all__ = ["PeerPairStat", "PeerWatchReport", "PeerWatchDetector"]


@dataclass(frozen=True)
class PeerPairStat:
    """One learned (metric, node pair) correlation."""

    metric: str
    node_a: str
    node_b: str
    correlation: float


@dataclass
class PeerWatchReport:
    """Detection outcome for one run.

    Attributes:
        node_scores: per node, the fraction of its learned peer pairs that
            deviated.
        flagged: nodes whose score exceeds the detector's flag threshold,
            worst first.
    """

    node_scores: dict[str, float] = field(default_factory=dict)
    flagged: list[str] = field(default_factory=list)

    @property
    def fault_detected(self) -> bool:
        """True when any node was flagged."""
        return bool(self.flagged)


class PeerWatchDetector:
    """Cross-node correlation monitoring at node granularity.

    Args:
        stability_tau: a (metric, pair) correlation is learned only when
            its spread over the training runs stays below this (mirrors
            Algorithm 1's stability idea).
        min_correlation: learned pairs must be at least this correlated in
            the normal state (weakly-correlated pairs carry no signal).
        epsilon: deviation threshold at detection time.
        flag_fraction: a node is flagged when at least this fraction of
            its learned pairs deviates.
    """

    def __init__(
        self,
        stability_tau: float = 0.25,
        min_correlation: float = 0.5,
        epsilon: float = 0.3,
        flag_fraction: float = 0.15,
    ) -> None:
        if not 0 < flag_fraction <= 1:
            raise ValueError("flag_fraction must be in (0, 1]")
        self.stability_tau = stability_tau
        self.min_correlation = min_correlation
        self.epsilon = epsilon
        self.flag_fraction = flag_fraction
        self._pairs: list[PeerPairStat] = []
        self._nodes: list[str] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _peer_nodes(run: RunTrace) -> list[str]:
        return [nid for nid in run.nodes if nid != "master"]

    def _pair_correlation(
        self, run: RunTrace, metric_idx: int, a: str, b: str
    ) -> float:
        return pearson(
            run.nodes[a].metrics[:, metric_idx],
            run.nodes[b].metrics[:, metric_idx],
        )

    def train(self, normal_runs: list[RunTrace]) -> int:
        """Learn the stable peer correlations.

        Returns:
            Number of (metric, pair) statistics learned.
        """
        if not normal_runs:
            raise ValueError("need at least one normal run")
        self._nodes = self._peer_nodes(normal_runs[0])
        self._pairs = []
        for metric_idx, metric in enumerate(METRIC_NAMES):
            for i, a in enumerate(self._nodes):
                for b in self._nodes[i + 1 :]:
                    values = [
                        self._pair_correlation(run, metric_idx, a, b)
                        for run in normal_runs
                    ]
                    spread = max(values) - min(values)
                    mean = float(np.mean(values))
                    if spread < self.stability_tau and abs(mean) >= self.min_correlation:
                        self._pairs.append(
                            PeerPairStat(
                                metric=metric, node_a=a, node_b=b,
                                correlation=mean,
                            )
                        )
        return len(self._pairs)

    def detect(self, run: RunTrace, window_ticks: int = 30) -> PeerWatchReport:
        """Score every node by peer-correlation deviations in one run.

        Correlations are evaluated over sliding ``window_ticks`` windows —
        a 5-minute fault inside a 20-minute run would otherwise be diluted
        to invisibility — and a pair counts as deviated when *any* window
        breaks it.

        Args:
            run: the run to examine.
            window_ticks: analysis window length (the injection length the
                paper uses, 30 ticks).
        """
        if not self._pairs:
            raise RuntimeError("detector is not trained")
        ticks = run.ticks
        starts = list(range(0, max(ticks - window_ticks, 0) + 1,
                            max(window_ticks // 2, 1)))
        if not starts:
            starts = [0]
        counts = {n: 0 for n in self._nodes}
        totals = {n: 0 for n in self._nodes}
        for stat in self._pairs:
            metric_idx = METRIC_NAMES.index(stat.metric)
            deviated = False
            for start in starts:
                stop = min(start + window_ticks, ticks)
                a = run.nodes[stat.node_a].metrics[start:stop, metric_idx]
                b = run.nodes[stat.node_b].metrics[start:stop, metric_idx]
                observed = pearson(a, b)
                if abs(observed - stat.correlation) >= self.epsilon:
                    deviated = True
                    break
            for node in (stat.node_a, stat.node_b):
                totals[node] += 1
                if deviated:
                    counts[node] += 1
        scores = {
            n: counts[n] / totals[n] if totals[n] else 0.0
            for n in self._nodes
        }
        flagged = [
            n for n, s in sorted(scores.items(), key=lambda kv: -kv[1])
            if s >= self.flag_fraction
        ]
        return PeerWatchReport(node_scores=scores, flagged=flagged)

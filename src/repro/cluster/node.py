"""Per-node resource accounting.

A :class:`SimulatedNode` turns the demand placed on it each tick (task demand
from the running job plus external demand from injected faults) into resolved
*internals*: utilisations, contention, memory pressure, paging and effective
throughput.  The telemetry samplers then derive the 26 observable metrics and
the CPI value from these internals.

The contention terms encode the paper's core physical premises:

- CPU demand below capacity is harmless (Fig. 2: a 30 % utilisation
  disturbance with spare cores changes neither CPI nor execution time);
  demand beyond capacity creates contention that inflates CPI and slows
  progress.
- Memory overcommit spills to swap, driving major faults and paging traffic
  and inflating CPI sharply.
- Disk and network saturation throttle the achieved bandwidth and create IO
  wait, which both inflates CPI mildly and slows IO-bound phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.demand import ResourceDemand
from repro.cluster.hardware import NodeSpec

__all__ = ["NodeInternals", "FaultModifiers", "SimulatedNode"]


@dataclass(frozen=True)
class FaultModifiers:
    """How active faults warp a node during one tick.

    Attributes:
        external: extra resource demand from co-located hog processes.
        activity_factor: scales the monitored job's own demand (a suspended
            TaskTracker stops consuming resources; 1.0 = unaffected).
        disk_capacity_factor: scales the node's effective disk bandwidth.
        net_capacity_factor: scales the node's effective network bandwidth.
        cpi_factor: direct multiplicative CPI inflation beyond what
            contention produces (e.g. lock spinning).
        progress_factor: direct multiplicative slowdown of job progress
            beyond what CPI inflation produces (e.g. task retries).
    """

    external: ResourceDemand = field(default_factory=ResourceDemand)
    activity_factor: float = 1.0
    disk_capacity_factor: float = 1.0
    net_capacity_factor: float = 1.0
    cpi_factor: float = 1.0
    progress_factor: float = 1.0

    def combine(self, other: "FaultModifiers") -> "FaultModifiers":
        """Compose two sets of modifiers (demands add, factors multiply)."""
        return FaultModifiers(
            external=self.external + other.external,
            activity_factor=self.activity_factor * other.activity_factor,
            disk_capacity_factor=(
                self.disk_capacity_factor * other.disk_capacity_factor
            ),
            net_capacity_factor=self.net_capacity_factor * other.net_capacity_factor,
            cpi_factor=self.cpi_factor * other.cpi_factor,
            progress_factor=self.progress_factor * other.progress_factor,
        )


@dataclass(frozen=True)
class NodeInternals:
    """Resolved state of a node for one tick.

    All bandwidths are achieved (post-throttling) values in KB/s; all
    fractions are in [0, 1] unless stated otherwise.
    """

    cpu_demand: float          # requested cores fraction; may exceed 1
    cpu_util: float            # achieved utilisation
    cpu_task_share: float      # fraction of achieved CPU owned by the job
    cpu_contention: float      # demand beyond capacity
    io_wait: float             # CPU-wait fraction from disk saturation
    mem_used_mb: float
    mem_cached_mb: float
    mem_free_mb: float
    swap_used_mb: float
    mem_pressure: float        # overcommit ratio beyond the pressure knee
    swap_io_kbs: float         # paging traffic caused by overcommit
    disk_read_kbs: float
    disk_write_kbs: float
    disk_util: float
    net_rx_kbs: float
    net_tx_kbs: float
    net_util: float
    net_congestion: float      # demand beyond network capacity
    task_activity: float       # 0..1, how alive the monitored job is
    cpi_inflation: float       # multiplicative CPI factor >= 1
    progress_rate: float       # work units the job completes this tick


class SimulatedNode:
    """One server of the simulated cluster.

    Args:
        node_id: identifier, e.g. ``"slave-1"``.
        ip: address used in the paper's XML tuples.
        spec: hardware capacities.

    The node is stateless across ticks except for a small amount of smoothing
    applied to memory (page cache grows and shrinks gradually), which keeps
    memory metrics realistically autocorrelated.
    """

    #: Memory the OS and Hadoop daemons occupy even when idle (MB).
    BASE_MEM_MB = 1600.0
    #: Fraction of memory overcommit that becomes paging traffic per tick.
    SWAP_IO_PER_MB = 18.0
    #: Memory utilisation above which pressure effects begin.
    PRESSURE_KNEE = 0.90

    def __init__(self, node_id: str, ip: str, spec: NodeSpec) -> None:
        self.node_id = node_id
        self.ip = ip
        self.spec = spec
        self._cached_mb = 2500.0  # page cache warms up / decays across ticks

    def reset(self) -> None:
        """Clear cross-tick smoothing state (called between runs)."""
        self._cached_mb = 2500.0

    def tick(
        self,
        task_demand: ResourceDemand,
        modifiers: FaultModifiers,
        rng: np.random.Generator,
    ) -> NodeInternals:
        """Resolve one tick of activity.

        Args:
            task_demand: demand from the monitored job on this node.
            modifiers: combined fault modifiers active this tick.
            rng: random generator for small physical noise.

        Returns:
            The resolved :class:`NodeInternals`.
        """
        spec = self.spec
        task = task_demand.scaled(max(modifiers.activity_factor, 0.0))
        ext = modifiers.external
        total = task + ext

        # --- CPU ---------------------------------------------------------
        cpu_demand = total.cpu
        cpu_util = min(cpu_demand, 1.0)
        cpu_contention = max(cpu_demand - 1.0, 0.0)
        # When demand exceeds capacity the job gets its proportional share.
        task_share = task.cpu / cpu_demand if cpu_demand > 0 else 0.0

        # --- Disk --------------------------------------------------------
        disk_cap = spec.disk_kbs * max(modifiers.disk_capacity_factor, 1e-6)
        disk_demand = total.disk_read_kbs + total.disk_write_kbs
        disk_throttle = min(disk_cap / disk_demand, 1.0) if disk_demand > 0 else 1.0
        disk_read = total.disk_read_kbs * disk_throttle
        disk_write = total.disk_write_kbs * disk_throttle
        disk_util = min(disk_demand / disk_cap, 1.0) if disk_cap > 0 else 1.0
        # IO wait grows convexly as the disk saturates.
        io_wait = min(0.55 * disk_util**2 + 1.2 * max(disk_demand / disk_cap - 1.0, 0.0), 0.95)

        # --- Network -----------------------------------------------------
        net_cap = spec.net_kbs * max(modifiers.net_capacity_factor, 1e-6)
        rx_throttle = min(net_cap / total.net_rx_kbs, 1.0) if total.net_rx_kbs > 0 else 1.0
        tx_throttle = min(net_cap / total.net_tx_kbs, 1.0) if total.net_tx_kbs > 0 else 1.0
        net_rx = total.net_rx_kbs * rx_throttle
        net_tx = total.net_tx_kbs * tx_throttle
        net_util = min(max(total.net_rx_kbs, total.net_tx_kbs) / net_cap, 1.0)
        net_congestion = max(
            max(total.net_rx_kbs, total.net_tx_kbs) / net_cap - 1.0, 0.0
        )

        # --- Memory ------------------------------------------------------
        mem_demand = self.BASE_MEM_MB + total.mem_mb
        mem_used = min(mem_demand, spec.mem_mb * 0.985)
        overcommit_mb = max(mem_demand - spec.mem_mb * self.PRESSURE_KNEE, 0.0)
        swap_used = max(mem_demand - spec.mem_mb * 0.97, 0.0)
        swap_io = swap_used * self.SWAP_IO_PER_MB * float(rng.uniform(0.7, 1.3)) if swap_used > 0 else 0.0
        mem_pressure = min(overcommit_mb / (spec.mem_mb * 0.10), 3.0)
        # Page cache tracks disk traffic but is evicted under pressure.
        cache_target = min(
            1500.0 + 0.04 * (disk_read + disk_write),
            max(spec.mem_mb - mem_used - 300.0, 120.0),
        )
        self._cached_mb += 0.3 * (cache_target - self._cached_mb)
        mem_cached = max(self._cached_mb, 100.0)
        mem_free = max(spec.mem_mb - mem_used - mem_cached, 50.0)

        # --- CPI and progress ---------------------------------------------
        # Contention inflates CPI: CPU time-slicing and cache pollution,
        # memory thrashing, IO stalls and network stalls, in decreasing
        # order of severity per the CPI^2 observations the paper cites.
        inflation = (
            1.0
            + 1.10 * cpu_contention
            + 1.60 * mem_pressure
            + 0.55 * io_wait
            + 0.80 * net_congestion
        ) * max(modifiers.cpi_factor, 1e-3)
        activity = max(modifiers.activity_factor, 0.0)
        progress = (
            activity
            * max(modifiers.progress_factor, 0.0)
            / max(inflation, 1e-6)
        )

        return NodeInternals(
            cpu_demand=cpu_demand,
            cpu_util=cpu_util,
            cpu_task_share=task_share,
            cpu_contention=cpu_contention,
            io_wait=io_wait,
            mem_used_mb=mem_used,
            mem_cached_mb=mem_cached,
            mem_free_mb=mem_free,
            swap_used_mb=swap_used,
            mem_pressure=mem_pressure,
            swap_io_kbs=swap_io,
            disk_read_kbs=disk_read,
            disk_write_kbs=disk_write,
            disk_util=disk_util,
            net_rx_kbs=net_rx,
            net_tx_kbs=net_tx,
            net_util=net_util,
            net_congestion=net_congestion,
            task_activity=activity,
            cpi_inflation=inflation,
            progress_rate=progress,
        )

"""Simulated Hadoop cluster substrate.

The paper evaluates InvarNet-X on a five-server Hadoop 1.0.2 cluster running
BigDataBench workloads.  That hardware is unavailable here, so this
subpackage provides a discrete-time simulator with the same externally
observable structure:

- nodes with hardware capacities (:mod:`repro.cluster.hardware`) and
  resource accounting (:mod:`repro.cluster.node`);
- BigDataBench-style workload profiles — Wordcount, Sort, Grep, Bayes and
  the TPC-DS 8-query interactive mix (:mod:`repro.cluster.workloads`);
- MapReduce job execution through map/shuffle/reduce phases
  (:mod:`repro.cluster.job`) under FIFO batch scheduling
  (:mod:`repro.cluster.scheduler`);
- the cluster facade that runs jobs, injects faults and emits
  :class:`repro.telemetry.trace.RunTrace` objects
  (:mod:`repro.cluster.cluster`).

One simulation tick is 10 seconds, matching the paper's collection interval.

Note:
    Public names resolve lazily (PEP 562).  The cluster facade imports the
    fault and telemetry layers, which in turn import this package's leaf
    modules; resolving :class:`HadoopCluster` at first attribute access
    instead of at package import keeps that dependency loop acyclic.
"""

__all__ = [
    "HadoopCluster",
    "NodeSpec",
    "WorkloadProfile",
    "WorkloadType",
    "WORKLOADS",
    "get_workload",
]


def __getattr__(name: str):
    if name == "HadoopCluster":
        from repro.cluster.cluster import HadoopCluster

        return HadoopCluster
    if name == "NodeSpec":
        from repro.cluster.hardware import NodeSpec

        return NodeSpec
    if name in ("WorkloadProfile", "WorkloadType", "WORKLOADS", "get_workload"):
        from repro.cluster import workloads

        return getattr(workloads, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

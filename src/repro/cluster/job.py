"""Job execution engines: batch MapReduce phases and the interactive mix.

Demand generation follows a latent-intensity model: every run carries one
smooth AR(1) *intensity* process that scales all resource channels together
(data skew, task waves and scheduling beat all move the whole pipeline), plus
smaller per-channel AR(1) jitter and a per-run level factor.  The shared
intensity is what couples the observable metrics — it is the physical origin
of the MIC invariants the diagnosis pipeline discovers.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.demand import ResourceDemand
from repro.cluster.workloads import WorkloadProfile, WorkloadType

__all__ = ["ArOneProcess", "BatchJobExecution", "InteractiveMixExecution"]

#: Demand channel names subjected to per-channel jitter.
_CHANNELS = (
    "cpu",
    "mem_mb",
    "disk_read_kbs",
    "disk_write_kbs",
    "net_rx_kbs",
    "net_tx_kbs",
)


class ArOneProcess:
    """A smooth AR(1) fluctuation around 1.0.

    Args:
        rho: autoregressive coefficient in [0, 1).
        sigma: innovation standard deviation.
        amp: amplitude mapping the latent state to a multiplicative factor
            ``1 + amp * state``.
    """

    def __init__(self, rho: float = 0.8, sigma: float = 0.25, amp: float = 0.35) -> None:
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = rho
        self.sigma = sigma
        self.amp = amp
        self._state = 0.0

    def step(self, rng: np.random.Generator) -> float:
        """Advance one tick and return the multiplicative factor (>= 0.05)."""
        self._state = self.rho * self._state + float(
            rng.normal(0.0, self.sigma)
        )
        return max(1.0 + self.amp * self._state, 0.05)


class BatchJobExecution:
    """One batch MapReduce job moving through its phases.

    Args:
        profile: the workload being executed.
        rng: per-run random generator (drives the run-level factor and the
            latent fluctuation processes).

    The job holds ``work_ticks`` work units per phase; each tick it consumes
    ``rate`` units (``rate`` is supplied by the cluster from the slaves'
    progress rates), so a fault that slows progress stretches execution time
    exactly the way the paper's Fig. 4 requires.
    """

    def __init__(self, profile: WorkloadProfile, rng: np.random.Generator) -> None:
        if profile.kind is not WorkloadType.BATCH:
            raise ValueError(f"{profile.name} is not a batch workload")
        self.profile = profile
        self._phase_idx = 0
        self._phase_done = 0.0
        self._run_factor = float(rng.normal(1.0, 0.04))
        self._run_factor = min(max(self._run_factor, 0.85), 1.15)
        # The shared intensity must dominate per-channel jitter: it is the
        # common cause that couples the observable metrics, and the MIC
        # invariants only stabilise when that coupling beats the noise.
        self._intensity = ArOneProcess(rho=0.8, sigma=0.25, amp=0.55)
        self._channel_jitter = {
            ch: ArOneProcess(rho=0.6, sigma=0.2, amp=0.10) for ch in _CHANNELS
        }

    @property
    def done(self) -> bool:
        """True once every phase's work is consumed."""
        return self._phase_idx >= len(self.profile.phases)

    @property
    def current_phase(self) -> str:
        """Name of the phase currently executing ("done" afterwards)."""
        if self.done:
            return "done"
        return self.profile.phases[self._phase_idx].name

    def node_demand(self, rng: np.random.Generator) -> ResourceDemand:
        """Per-slave demand for this tick.

        Must be called exactly once per tick (it advances the latent
        fluctuation processes).
        """
        if self.done:
            return ResourceDemand()
        phase = self.profile.phases[self._phase_idx]
        intensity = self._intensity.step(rng)
        noise = {
            ch: proc.step(rng) for ch, proc in self._channel_jitter.items()
        }
        scaled = phase.demand.scaled(self._run_factor * intensity)
        # Memory working sets do not swing with instantaneous intensity the
        # way rates do; damp the fluctuation on the mem channel.
        mem_factor = 1.0 + 0.25 * (intensity - 1.0)
        damped = ResourceDemand(
            cpu=scaled.cpu,
            mem_mb=phase.demand.mem_mb * self._run_factor * mem_factor,
            disk_read_kbs=scaled.disk_read_kbs,
            disk_write_kbs=scaled.disk_write_kbs,
            net_rx_kbs=scaled.net_rx_kbs,
            net_tx_kbs=scaled.net_tx_kbs,
        )
        return damped.jittered(noise)

    def advance(self, rate: float) -> None:
        """Consume ``rate`` work units from the current phase."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if self.done:
            return
        self._phase_done += rate
        phase = self.profile.phases[self._phase_idx]
        if self._phase_done >= phase.work_ticks:
            self._phase_done -= phase.work_ticks
            self._phase_idx += 1


class InteractiveMixExecution:
    """The TPC-DS mixed-query interactive engine.

    Keeps a target number of concurrently active queries; each finished
    query is replaced (with slight arrival randomness) by a random template.
    There is no completion point — the cluster observes a fixed window.

    Args:
        profile: an interactive workload profile.
        rng: per-run random generator.
    """

    def __init__(self, profile: WorkloadProfile, rng: np.random.Generator) -> None:
        if profile.kind is not WorkloadType.INTERACTIVE:
            raise ValueError(f"{profile.name} is not an interactive workload")
        self.profile = profile
        self.extra_concurrency = 0  # raised by the Overload fault
        self._active: list[tuple[int, float]] = []  # (query idx, remaining)
        # Interactive load is smoother than a batch pipeline's wavefront:
        # admission control keeps the mix from spiking into contention on
        # its own, which is what lets ARIMA thresholds stay tight enough to
        # catch injected faults (Fig. 6).
        self._intensity = ArOneProcess(rho=0.75, sigma=0.22, amp=0.32)
        self._run_factor = float(rng.normal(1.0, 0.05))
        self._run_factor = min(max(self._run_factor, 0.8), 1.2)
        # Warm start: fill the initial slots with partially-complete queries.
        for _ in range(profile.concurrency):
            idx = int(rng.integers(len(profile.queries)))
            remaining = float(
                rng.uniform(1, profile.queries[idx].duration_ticks)
            )
            self._active.append((idx, remaining))

    @property
    def done(self) -> bool:
        """Interactive mixes never finish on their own."""
        return False

    @property
    def current_phase(self) -> str:
        """Interactive mixes run one perpetual phase."""
        return "mix"

    @property
    def active_queries(self) -> int:
        """Number of queries currently holding a slot."""
        return len(self._active)

    def node_demand(self, rng: np.random.Generator) -> ResourceDemand:
        """Per-slave demand for this tick (advances arrivals and progress)."""
        target = self.profile.concurrency + max(self.extra_concurrency, 0)
        # Stochastic admission: occasionally run one light or one heavy.
        effective_target = max(target + int(rng.integers(-1, 2)), 1)
        while len(self._active) < effective_target:
            idx = int(rng.integers(len(self.profile.queries)))
            self._active.append(
                (idx, float(self.profile.queries[idx].duration_ticks))
            )
        intensity = self._intensity.step(rng)
        total = ResourceDemand()
        for idx, _ in self._active:
            total = total + self.profile.queries[idx].demand
        total = total.scaled(self._run_factor * intensity)
        return total

    def advance(self, rate: float) -> None:
        """Progress every active query by ``rate`` ticks of service."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._active = [
            (idx, remaining - rate)
            for idx, remaining in self._active
            if remaining - rate > 0
        ]

"""BigDataBench-style workload profiles.

The paper runs four batch workloads (Wordcount, Sort, Grep, Naive Bayes) and
one interactive workload (eight TPC-DS queries in a mixed mode) over 15 GB of
generated data.  A :class:`WorkloadProfile` captures what the diagnosis
pipeline can actually sense about a workload: how its map/shuffle/reduce
phases load each resource channel over time, its baseline CPI on the
testbed's CPU, and how much it fluctuates run to run.

Demands are expressed per *slave node*, assuming the input data is evenly
distributed across the cluster's DataNodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.demand import ResourceDemand

__all__ = [
    "WorkloadType",
    "PhaseSpec",
    "QuerySpec",
    "WorkloadProfile",
    "WORKLOADS",
    "BATCH_WORKLOADS",
    "get_workload",
]


class WorkloadType(enum.Enum):
    """The paper's two workload classes (§1, challenge b)."""

    BATCH = "batch"
    INTERACTIVE = "interactive"


@dataclass(frozen=True)
class PhaseSpec:
    """One MapReduce phase of a batch workload.

    Attributes:
        name: phase label ("map", "shuffle", "reduce").
        work_ticks: nominal duration in ticks at full progress rate; the
            phase holds this many work units, one consumed per tick at
            rate 1.0.
        demand: per-node resource demand while the phase runs.
        jitter: relative amplitude of the phase's demand fluctuation.
    """

    name: str
    work_ticks: int
    demand: ResourceDemand
    jitter: float = 0.08

    def __post_init__(self) -> None:
        if self.work_ticks <= 0:
            raise ValueError(f"work_ticks must be positive, got {self.work_ticks}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")


@dataclass(frozen=True)
class QuerySpec:
    """One TPC-DS query template of the interactive mix.

    Attributes:
        name: query label (e.g. "q3").
        duration_ticks: how long one execution occupies its slot.
        demand: per-node demand contributed while active.
    """

    name: str
    duration_ticks: int
    demand: ResourceDemand

    def __post_init__(self) -> None:
        if self.duration_ticks <= 0:
            raise ValueError("duration_ticks must be positive")


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the simulator needs to run one workload type.

    Attributes:
        name: canonical workload name (the operation-context ``type``).
        kind: batch or interactive.
        base_cpi: cycles-per-instruction of the job on an unloaded node.
        phases: batch phases in execution order (batch workloads only).
        queries: query templates (interactive workloads only).
        concurrency: target number of simultaneously active queries
            (interactive only; the Overload fault raises it).
        observation_ticks: trace length for interactive runs, which have no
            natural completion point.
    """

    name: str
    kind: WorkloadType
    base_cpi: float
    phases: tuple[PhaseSpec, ...] = ()
    queries: tuple[QuerySpec, ...] = ()
    concurrency: int = 0
    observation_ticks: int = 120
    data_gb: float = 15.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.kind is WorkloadType.BATCH and not self.phases:
            raise ValueError(f"batch workload {self.name} needs phases")
        if self.kind is WorkloadType.INTERACTIVE and not self.queries:
            raise ValueError(f"interactive workload {self.name} needs queries")

    @property
    def nominal_ticks(self) -> int:
        """Fault-free duration: total phase work (batch) or the observation
        window (interactive)."""
        if self.kind is WorkloadType.BATCH:
            return sum(p.work_ticks for p in self.phases)
        return self.observation_ticks


def _d(
    cpu: float = 0.0,
    mem: float = 0.0,
    dr: float = 0.0,
    dw: float = 0.0,
    rx: float = 0.0,
    tx: float = 0.0,
) -> ResourceDemand:
    """Shorthand demand constructor used by the profile tables."""
    return ResourceDemand(
        cpu=cpu,
        mem_mb=mem,
        disk_read_kbs=dr,
        disk_write_kbs=dw,
        net_rx_kbs=rx,
        net_tx_kbs=tx,
    )


WORDCOUNT = WorkloadProfile(
    name="wordcount",
    kind=WorkloadType.BATCH,
    base_cpi=1.10,
    phases=(
        PhaseSpec("map", 55, _d(cpu=0.55, mem=4200, dr=32_000, dw=4_000,
                                rx=1_500, tx=1_500)),
        PhaseSpec("shuffle", 15, _d(cpu=0.20, mem=4600, dr=6_000, dw=8_000,
                                    rx=28_000, tx=28_000)),
        PhaseSpec("reduce", 30, _d(cpu=0.38, mem=5200, dr=5_000, dw=22_000,
                                   rx=4_000, tx=2_000)),
    ),
)

SORT = WorkloadProfile(
    name="sort",
    kind=WorkloadType.BATCH,
    base_cpi=1.40,
    phases=(
        PhaseSpec("map", 40, _d(cpu=0.35, mem=5200, dr=48_000, dw=12_000,
                                rx=2_000, tx=2_000)),
        PhaseSpec("shuffle", 30, _d(cpu=0.22, mem=6400, dr=10_000, dw=14_000,
                                    rx=52_000, tx=52_000)),
        PhaseSpec("reduce", 40, _d(cpu=0.30, mem=6800, dr=8_000, dw=46_000,
                                   rx=5_000, tx=2_500)),
    ),
)

GREP = WorkloadProfile(
    name="grep",
    kind=WorkloadType.BATCH,
    base_cpi=0.95,
    phases=(
        PhaseSpec("map", 50, _d(cpu=0.48, mem=3200, dr=52_000, dw=2_000,
                                rx=1_000, tx=1_000)),
        PhaseSpec("shuffle", 6, _d(cpu=0.12, mem=3300, dr=2_000, dw=2_000,
                                   rx=8_000, tx=8_000)),
        PhaseSpec("reduce", 10, _d(cpu=0.18, mem=3400, dr=1_500, dw=6_000,
                                   rx=1_500, tx=800)),
    ),
)

BAYES = WorkloadProfile(
    name="bayes",
    kind=WorkloadType.BATCH,
    base_cpi=1.30,
    phases=(
        PhaseSpec("map", 65, _d(cpu=0.68, mem=9200, dr=26_000, dw=6_000,
                                rx=2_500, tx=2_500)),
        PhaseSpec("shuffle", 15, _d(cpu=0.25, mem=9600, dr=5_000, dw=9_000,
                                    rx=24_000, tx=24_000)),
        PhaseSpec("reduce", 30, _d(cpu=0.52, mem=10_200, dr=4_000, dw=16_000,
                                   rx=3_000, tx=1_500)),
    ),
)

#: Eight heterogeneous TPC-DS query templates run "in a mixed mode" (§4.1).
_TPCDS_QUERIES = (
    QuerySpec("q3", 4, _d(cpu=0.10, mem=900, dr=9_000, dw=800, rx=2_500, tx=2_000)),
    QuerySpec("q7", 6, _d(cpu=0.14, mem=1_300, dr=12_000, dw=1_200, rx=3_500, tx=2_500)),
    QuerySpec("q19", 3, _d(cpu=0.08, mem=700, dr=7_000, dw=500, rx=2_000, tx=1_500)),
    QuerySpec("q27", 7, _d(cpu=0.16, mem=1_600, dr=13_000, dw=1_800, rx=4_000, tx=3_000)),
    QuerySpec("q34", 5, _d(cpu=0.11, mem=1_100, dr=10_000, dw=900, rx=2_800, tx=2_200)),
    QuerySpec("q42", 4, _d(cpu=0.09, mem=800, dr=8_500, dw=600, rx=2_200, tx=1_800)),
    QuerySpec("q46", 8, _d(cpu=0.18, mem=1_900, dr=15_000, dw=2_200, rx=4_500, tx=3_500)),
    QuerySpec("q59", 6, _d(cpu=0.13, mem=1_200, dr=11_000, dw=1_400, rx=3_200, tx=2_600)),
)

TPCDS = WorkloadProfile(
    name="tpcds",
    kind=WorkloadType.INTERACTIVE,
    base_cpi=1.60,
    queries=_TPCDS_QUERIES,
    concurrency=4,
    observation_ticks=120,
)

#: All workloads, keyed by canonical name.
WORKLOADS: dict[str, WorkloadProfile] = {
    w.name: w for w in (WORDCOUNT, SORT, GREP, BAYES, TPCDS)
}

#: The batch subset (FIFO-exclusive jobs).
BATCH_WORKLOADS: tuple[str, ...] = ("wordcount", "sort", "grep", "bayes")


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by name.

    Raises:
        KeyError: with the list of known workloads when the name is unknown.
    """
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None

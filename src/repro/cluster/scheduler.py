"""Job scheduling: Hadoop 1.x FIFO semantics.

The paper's restriction (§2) is central to its operation-context design:
"When a batch job is submitted to Hadoop, Hadoop works in the FIFO mode
which means the job takes up the cluster exclusively."  The FIFO scheduler
here enforces exactly that — one batch job owns the cluster at a time — and
is what the cluster facade uses when a queue of jobs is submitted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["JobRequest", "FIFOScheduler"]


@dataclass(frozen=True)
class JobRequest:
    """A submitted job waiting in the FIFO queue.

    Attributes:
        workload: workload name to run.
        seed: RNG seed for the run.
        faults: fault objects to inject during the run.
        tag: free-form label for bookkeeping.
    """

    workload: str
    seed: int
    faults: tuple = ()
    tag: str = ""


@dataclass
class FIFOScheduler:
    """Strict first-in-first-out, cluster-exclusive batch scheduling."""

    _queue: deque[JobRequest] = field(default_factory=deque)
    _running: JobRequest | None = None
    completed: list[JobRequest] = field(default_factory=list)

    def submit(self, request: JobRequest) -> None:
        """Append a job to the queue."""
        self._queue.append(request)

    @property
    def pending(self) -> int:
        """Number of queued (not yet started) jobs."""
        return len(self._queue)

    @property
    def running(self) -> JobRequest | None:
        """The job currently owning the cluster, if any."""
        return self._running

    def next_job(self) -> JobRequest | None:
        """Dequeue the next job and mark it running.

        Returns None when the queue is empty.

        Raises:
            RuntimeError: if a job is already running (FIFO exclusivity).
        """
        if self._running is not None:
            raise RuntimeError(
                f"job {self._running.tag or self._running.workload!r} still "
                "owns the cluster (FIFO mode is exclusive)"
            )
        if not self._queue:
            return None
        self._running = self._queue.popleft()
        return self._running

    def job_finished(self) -> None:
        """Release the cluster after the running job completes."""
        if self._running is None:
            raise RuntimeError("no job is running")
        self.completed.append(self._running)
        self._running = None

"""Resource-demand vectors: the latent channels of the generative model.

Everything a job or a fault does to a node is expressed as a
:class:`ResourceDemand` — how much CPU, memory, disk and network it asks for
during one tick.  Observable metrics are derived from the node's aggregated
demand (see :mod:`repro.cluster.node`), which is what makes metrics co-vary
and gives MIC its invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ResourceDemand"]


@dataclass(frozen=True)
class ResourceDemand:
    """Per-tick resource demand on one node.

    Attributes:
        cpu: CPU demand as a fraction of the node's total cores (can exceed
            1.0 — that is contention).
        mem_mb: resident working set in MB.
        disk_read_kbs: disk read bandwidth demand in KB/s.
        disk_write_kbs: disk write bandwidth demand in KB/s.
        net_rx_kbs: network receive demand in KB/s.
        net_tx_kbs: network transmit demand in KB/s.
    """

    cpu: float = 0.0
    mem_mb: float = 0.0
    disk_read_kbs: float = 0.0
    disk_write_kbs: float = 0.0
    net_rx_kbs: float = 0.0
    net_tx_kbs: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"{f.name} must be >= 0")

    def __add__(self, other: "ResourceDemand") -> "ResourceDemand":
        return ResourceDemand(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "ResourceDemand":
        """Multiply every channel by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return ResourceDemand(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def jittered(self, noise: dict[str, float]) -> "ResourceDemand":
        """Apply per-channel multiplicative fluctuation.

        Args:
            noise: map from channel name to a multiplicative factor; missing
                channels keep factor 1.0.  Factors are clamped at 0.
        """
        values = {}
        for f in fields(self):
            factor = max(noise.get(f.name, 1.0), 0.0)
            values[f.name] = getattr(self, f.name) * factor
        return ResourceDemand(**values)

"""The cluster facade: runs jobs, injects faults, emits traces.

A :class:`HadoopCluster` mirrors the paper's testbed: one master hosting the
JobTracker/NameNode plus data nodes hosting TaskTrackers/DataNodes (five
servers total by default).  :meth:`HadoopCluster.run` executes one workload
— a batch job to completion or an interactive mix for a fixed observation
window — with any number of faults injected, and returns a
:class:`repro.telemetry.trace.RunTrace` with the 26-metric series and the
CPI series of every node at 10-second resolution.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.demand import ResourceDemand
from repro.cluster.hardware import DEFAULT_NODE_SPEC, NodeSpec
from repro.cluster.job import (
    ArOneProcess,
    BatchJobExecution,
    InteractiveMixExecution,
)
from repro.cluster.node import FaultModifiers, SimulatedNode
from repro.cluster.scheduler import FIFOScheduler
from repro.cluster.workloads import WorkloadProfile, WorkloadType, get_workload
from repro.faults.spec import Fault
from repro.telemetry.collectl import CollectlSampler, MetricEffects
from repro.telemetry.perfcounter import PerfCounterSampler
from repro.telemetry.trace import NodeTrace, RunTrace

__all__ = ["HadoopCluster"]


class HadoopCluster:
    """A simulated Hadoop 1.x cluster.

    Args:
        n_slaves: number of data nodes (the paper's testbed has 4 + master).
        spec: hardware spec shared by all nodes; pass ``slave_specs`` for a
            heterogeneous cluster.
        slave_specs: optional per-slave hardware overrides.
        metric_noise_pct: collectl measurement noise.
        cpi_noise_pct: perf measurement noise.
    """

    MASTER_ID = "master"

    def __init__(
        self,
        n_slaves: int = 4,
        spec: NodeSpec = DEFAULT_NODE_SPEC,
        slave_specs: Sequence[NodeSpec] | None = None,
        metric_noise_pct: float = 0.02,
        cpi_noise_pct: float = 0.015,
    ) -> None:
        if n_slaves < 1:
            raise ValueError(f"need at least one slave, got {n_slaves}")
        if slave_specs is not None and len(slave_specs) != n_slaves:
            raise ValueError(
                f"slave_specs has {len(slave_specs)} entries for "
                f"{n_slaves} slaves"
            )
        self.nodes: dict[str, SimulatedNode] = {}
        self.nodes[self.MASTER_ID] = SimulatedNode(
            self.MASTER_ID, "10.10.0.10", spec
        )
        for i in range(1, n_slaves + 1):
            node_spec = slave_specs[i - 1] if slave_specs else spec
            self.nodes[f"slave-{i}"] = SimulatedNode(
                f"slave-{i}", f"10.10.0.{10 + i}", node_spec
            )
        self._collectl = CollectlSampler(noise_pct=metric_noise_pct)
        self._perf = {
            node_id: PerfCounterSampler(node.spec, noise_pct=cpi_noise_pct)
            for node_id, node in self.nodes.items()
        }

    @property
    def slave_ids(self) -> list[str]:
        """Data-node identifiers in order."""
        return [nid for nid in self.nodes if nid != self.MASTER_ID]

    def ip_of(self, node_id: str) -> str:
        """IP address of a node (used in the paper's XML tuples)."""
        return self.nodes[node_id].ip

    # ------------------------------------------------------------------
    def run(
        self,
        workload: str | WorkloadProfile,
        faults: Sequence[Fault] = (),
        seed: int = 0,
        max_ticks: int = 400,
        observation_ticks: int | None = None,
    ) -> RunTrace:
        """Execute one workload and collect all telemetry.

        Args:
            workload: workload name or profile.
            faults: faults to inject (targets must be known node ids).
            seed: seed for all of the run's randomness.
            max_ticks: hard simulation cap (a suspended job never finishes).
            observation_ticks: trace length for interactive workloads
                (defaults to the profile's ``observation_ticks``).

        Returns:
            The run's :class:`RunTrace`.
        """
        profile = (
            workload
            if isinstance(workload, WorkloadProfile)
            else get_workload(workload)
        )
        for fault in faults:
            if fault.spec.target not in self.nodes:
                raise ValueError(
                    f"fault {fault.name} targets unknown node "
                    f"{fault.spec.target!r}"
                )
        rng = np.random.default_rng(seed)
        for node in self.nodes.values():
            node.reset()
        for fault in faults:
            fault.begin_run(rng)

        if profile.kind is WorkloadType.BATCH:
            execution: BatchJobExecution | InteractiveMixExecution = (
                BatchJobExecution(profile, rng)
            )
            horizon = max_ticks
        else:
            execution = InteractiveMixExecution(profile, rng)
            horizon = observation_ticks or profile.observation_ticks

        master_wobble = ArOneProcess(rho=0.6, sigma=0.2, amp=0.2)
        metric_rows: dict[str, list[np.ndarray]] = {
            nid: [] for nid in self.nodes
        }
        cpi_rows: dict[str, list[float]] = {nid: [] for nid in self.nodes}

        tick = 0
        completed = True
        while True:
            if profile.kind is WorkloadType.BATCH and execution.done:
                break
            if tick >= horizon:
                completed = profile.kind is not WorkloadType.BATCH
                break
            if isinstance(execution, InteractiveMixExecution):
                execution.extra_concurrency = sum(
                    f.extra_concurrency(tick) for f in faults
                )
            slave_demand = execution.node_demand(rng)
            master_demand = self._master_demand(slave_demand, master_wobble, rng)

            progress_rates: list[float] = []
            for node_id, node in self.nodes.items():
                demand = (
                    master_demand if node_id == self.MASTER_ID else slave_demand
                )
                mods = FaultModifiers()
                effects: MetricEffects | None = None
                for fault in faults:
                    if fault.spec.target != node_id:
                        continue
                    fault_mods = fault.modifiers(tick, rng)
                    if fault_mods is not None:
                        mods = mods.combine(fault_mods)
                    fault_fx = fault.metric_effects(tick, rng)
                    if fault_fx is not None:
                        effects = (
                            fault_fx
                            if effects is None
                            else effects.combine(fault_fx)
                        )
                internals = node.tick(demand, mods, rng)
                metric_rows[node_id].append(
                    self._collectl.sample(internals, effects, rng)
                )
                cpi_rows[node_id].append(
                    self._perf[node_id]
                    .sample(internals, profile.base_cpi, rng)
                    .cpi
                )
                if node_id != self.MASTER_ID:
                    progress_rates.append(internals.progress_rate)

            # Job progress: stragglers dominate a wave of tasks, but healthy
            # nodes steal work, so the rate is a blend of min and mean.
            rate = 0.6 * min(progress_rates) + 0.4 * float(
                np.mean(progress_rates)
            )
            execution.advance(rate)
            tick += 1

        primary = faults[0] if faults else None
        return RunTrace(
            workload=profile.name,
            nodes={
                nid: NodeTrace(
                    node_id=nid,
                    ip=self.nodes[nid].ip,
                    metrics=np.asarray(rows),
                    cpi=np.asarray(cpi_rows[nid]),
                )
                for nid, rows in metric_rows.items()
            },
            execution_ticks=tick,
            completed=completed,
            fault=primary.name if primary else None,
            fault_node=primary.spec.target if primary else None,
            fault_window=(
                (primary.spec.start, min(primary.spec.stop, tick))
                if primary
                else None
            ),
            all_faults=tuple(f.name for f in faults),
            seed=seed,
        )

    def run_queue(
        self, scheduler: FIFOScheduler, max_ticks: int = 400
    ) -> list[RunTrace]:
        """Drain a FIFO queue of batch jobs, one at a time (Hadoop 1.x
        exclusivity), returning the traces in completion order."""
        traces: list[RunTrace] = []
        while True:
            request = scheduler.next_job()
            if request is None:
                return traces
            traces.append(
                self.run(
                    request.workload,
                    faults=request.faults,
                    seed=request.seed,
                    max_ticks=max_ticks,
                )
            )
            scheduler.job_finished()

    # ------------------------------------------------------------------
    def _master_demand(
        self,
        slave_demand: ResourceDemand,
        wobble: ArOneProcess,
        rng: np.random.Generator,
    ) -> ResourceDemand:
        """JobTracker/NameNode coordination load, tracking cluster activity."""
        factor = wobble.step(rng)
        activity = min(slave_demand.cpu, 1.0)
        return ResourceDemand(
            cpu=(0.05 + 0.06 * activity) * factor,
            mem_mb=2_600.0,
            disk_read_kbs=500.0 * factor,
            disk_write_kbs=900.0 * factor,
            net_rx_kbs=(800.0 + 2_000.0 * activity) * factor,
            net_tx_kbs=(800.0 + 2_000.0 * activity) * factor,
        )

"""Hardware specifications of simulated nodes.

Defaults mirror the paper's testbed (§4.1): two 4-core Xeon 2.1 GHz
processors, 16 GB memory, one 1 TB disk and a gigabit NIC per server.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeSpec", "DEFAULT_NODE_SPEC"]


@dataclass(frozen=True)
class NodeSpec:
    """Capacity description of one server.

    Attributes:
        cores: number of CPU cores.
        cpu_ghz: clock rate per core; fixes the paper's cycle time ``C``.
        mem_mb: physical memory in MB.
        disk_kbs: sustained disk bandwidth in KB/s (read + write combined).
        disk_iops: sustained disk operations per second.
        net_kbs: NIC bandwidth in KB/s per direction.
    """

    cores: int = 8
    cpu_ghz: float = 2.1
    mem_mb: int = 16384
    disk_kbs: float = 120_000.0
    disk_iops: float = 5_000.0
    net_kbs: float = 125_000.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        for attr in ("cpu_ghz", "mem_mb", "disk_kbs", "disk_iops", "net_kbs"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    @property
    def cycle_seconds(self) -> float:
        """Duration of one CPU cycle in seconds (the paper's ``C``)."""
        return 1.0 / (self.cpu_ghz * 1e9)


#: The paper's server configuration.
DEFAULT_NODE_SPEC = NodeSpec()

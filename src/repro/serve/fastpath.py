"""Batched drift checks for fleet serving: the O(tail) fast lane.

:meth:`ARIMAModel.predict_next` reruns the full ARMA residual recursion
over the entire CPI history on every call — O(n) python-loop work per
tick per context, fine for one monitor, ruinous for a fleet of
thousands.  For the pure-AR models the CPI detector actually fits
(``q == 0``), the recursion's residuals never enter the prediction: the
one-step forecast depends only on the last ``max(p + d, d + 1)``
samples.  :func:`predict_next_from_tail` recomputes exactly the same
float from that tail —

- differencing is elementwise (:func:`numpy.diff`), so the last values
  of every differencing level computed on the tail equal those computed
  on the full history bit for bit;
- the AR accumulation replays :meth:`ARIMAModel.predict_next`'s loop in
  the same order over the same values, so the float sums agree exactly;
- the undifferencing reconstruction is the identical ``tails`` walk.

For ``q > 0`` the MA terms need residuals whose recursion runs over the
whole history (its mean depends on every sample), so there is no exact
tail form — :func:`fast_check` returns None and the caller falls back to
the monitor's own full check.  Parity is therefore unconditional: the
fast lane either produces the bit-identical verdict or declines.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.core.online import MonitorState, OnlineMonitor
from repro.stats.arima import ARIMAModel

__all__ = ["tail_length", "predict_next_from_tail", "fast_check"]


def tail_length(model: ARIMAModel) -> int:
    """History samples a tail prediction needs for ``model`` (q == 0).

    ``p + d`` covers the AR terms on the d-th difference; ``d + 1``
    covers the undifferencing reconstruction (one last value per level).
    """
    p, d, q = model.order
    if q != 0:
        raise ValueError("tail prediction is only exact for q == 0")
    return max(p + d, d + 1)


def predict_next_from_tail(
    model: ARIMAModel, tail: np.ndarray | list[float]
) -> float:
    """One-step prediction from the last :func:`tail_length` samples.

    Bit-identical to ``model.predict_next(full_history)`` for ``q == 0``
    whenever ``tail`` is the suffix of that history (and at least
    :func:`tail_length` long).
    """
    p, d, q = model.order
    if q != 0:
        raise ValueError("tail prediction is only exact for q == 0")
    arr = np.asarray(tail, dtype=float)
    need = tail_length(model)
    if arr.size < need:
        raise ValueError(
            f"tail too short ({arr.size}) for ARIMA{tuple(model.order)}"
        )
    # same structure as ARIMAModel.predict_next: w is the d-th
    # difference, the AR sum runs i = 1..p in that order, and the
    # reconstruction walks the differencing levels from d-1 down to 0
    tails = [arr]
    for _ in range(d):
        tails.append(np.diff(tails[-1]))
    w = tails[d]
    acc = model.intercept
    n = w.size
    for i in range(1, p + 1):
        acc += model.ar[i - 1] * w[n - i]
    y_next = acc
    for level in range(d - 1, -1, -1):
        y_next = tails[level][-1] + y_next
    return float(y_next)


def fast_check(monitor: OnlineMonitor, cpi: float) -> bool | None:
    """The monitor's next drift verdict, computed in the fast lane.

    Returns:
        The exact boolean :meth:`OnlineMonitor.observe` would compute
        for this tick, or None when the fast lane cannot serve this
        monitor (MA terms present, or not in MONITORING) and the caller
        must let the monitor run its own check.
    """
    if monitor.state is not MonitorState.MONITORING:
        return None
    detector = monitor.detector
    model = detector.model
    threshold = detector.threshold
    if model is None or threshold is None or model.order.q != 0:
        return None
    if monitor.cpi_len < monitor.warmup_ticks:
        return False  # the monitor skips the check entirely pre-warm-up
    # from here this mirrors OnlineMonitor._check, counter included
    if obs.enabled():
        obs.metrics_registry().counter(
            "invarnetx_monitor_checks_total",
            "One-step ARIMA drift checks actually run",
            ("context",),
        ).inc(context=str(monitor.context))
    p, d, _ = model.order
    if monitor.cpi_len <= d + p:
        return False  # predict_next would raise: history too short
    tail = monitor.cpi_tail(tail_length(model))
    predicted = predict_next_from_tail(model, tail)
    return threshold.is_anomalous(abs(float(cpi) - predicted))

"""Fleet-scale multiplexing of per-context streaming monitors.

One production process watches thousands of ``(workload, node)`` operation
contexts (§3.2's deployment unit).  :class:`FleetMonitor` owns them all:

- a **sharded registry** of :class:`~repro.core.online.OnlineMonitor`
  lanes — contexts hash to shards (:func:`shard_index`, crc32: python's
  ``hash`` is salted per process), each shard serialises its lanes behind
  its own lock, so ingest threads make progress without a global lock;
- **lazy construction with warm start** — a context's monitor is built on
  its first tick from the pipeline's attached
  :class:`~repro.store.base.ModelStore` (a populated
  :class:`~repro.store.directory.DirectoryStore` makes the whole fleet
  start warm); untrained contexts are rejected and counted, not fatal;
- **LRU eviction** — each shard caps its resident lanes and evicts the
  least-recently-active monitor (models stay in the store, so an evicted
  context warm-starts again on its next tick);
- the **fast drift lane** — MONITORING-state ticks are checked via
  :mod:`repro.serve.fastpath` (O(tail) instead of O(history), verdicts
  bit-identical) and the verdict is handed to ``observe``, which skips
  its own recursion;
- an **incident sink** — every alarm/diagnosis is counted, logged,
  ledger-recorded (when the pipeline has an active run ledger) and the
  diagnosis windows are retained in a bounded ring so
  :meth:`FleetMonitor.explain` can produce the full evidence report on
  demand (:func:`repro.obs.explain_window`; the MIC sweep hits the
  content-hash cache because diagnosis already scored that window);
- the **blackbox** — pass ``blackbox_dir`` and every lane gets a
  :class:`~repro.obs.blackbox.FlightRecorder` (bounded ring of raw
  ticks, fastpath verdicts, state transitions and request ids); each
  diagnosis is committed as a content-fingerprinted incident bundle
  that survives process exit, incident-ring eviction, and lane
  eviction, and that ``invarnetx replay`` re-runs deterministically.

The store the pipeline carries is wrapped in a
:class:`~repro.store.locked.LockedStore` at construction: lane
construction and lazy loads from different shards would otherwise race on
the registry's resident dict.
"""

from __future__ import annotations

import logging
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.context import OperationContext
from repro.core.online import AlarmEvent, DiagnosisEvent, OnlineMonitor
from repro.core.pipeline import InvarNetX
from repro.obs.blackbox import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    commit_bundle,
)
from repro.serve.fastpath import fast_check
from repro.store import ContextKey, LockedStore

__all__ = [
    "Tick",
    "FleetEvent",
    "IngestResult",
    "RetainedIncident",
    "FleetMonitor",
    "shard_index",
]

_log = obs.get_logger("serve.fleet")


def shard_index(key: ContextKey, shards: int) -> int:
    """Deterministic shard of a context key (stable across processes)."""
    return zlib.crc32(f"{key[0]}@{key[1]}".encode("utf-8")) % shards


@dataclass(frozen=True)
class Tick:
    """One telemetry sample of one context.

    Attributes:
        context: the operation context the sample belongs to.
        metrics: the metric row of this tick (catalog order).
        cpi: the CPI sample of this tick.
    """

    context: OperationContext
    metrics: np.ndarray
    cpi: float


@dataclass(frozen=True)
class FleetEvent:
    """An event one lane emitted during an ingest batch.

    Attributes:
        index: position of the triggering tick in the ingest batch
            (events are returned sorted by it, so results are
            deterministic however many threads processed the batch).
        context: the context whose monitor fired.
        event: the alarm or diagnosis.
    """

    index: int
    context: OperationContext
    event: AlarmEvent | DiagnosisEvent


@dataclass
class IngestResult:
    """Outcome of one :meth:`FleetMonitor.ingest` call.

    Attributes:
        events: events emitted by the batch, in batch order.
        accepted: ticks routed to a (possibly new) monitor.
        rejected: ticks dropped because their context has no trained
            models in the store.
    """

    events: list[FleetEvent] = field(default_factory=list)
    accepted: int = 0
    rejected: int = 0


@dataclass(frozen=True)
class RetainedIncident:
    """One diagnosis held in the fleet's bounded incident ring.

    Attributes:
        event: the diagnosis (window attached).
        request_id: HTTP request id of the batch that completed the
            window ("" for in-process ingest).
        bundle_id: the committed incident bundle, or None when the fleet
            runs without a blackbox directory.
    """

    event: DiagnosisEvent
    request_id: str = ""
    bundle_id: str | None = None


class _Shard:
    """One lock + its LRU-ordered monitor lanes."""

    def __init__(self, index: int, max_lanes: int | None) -> None:
        self.index = index
        self.max_lanes = max_lanes
        self._lock = threading.RLock()
        self._lanes: OrderedDict[ContextKey, OnlineMonitor] = OrderedDict()  # repro: guarded-by=_lock
        # flight recorders live and die in lockstep with their lane; the
        # ring itself carries a leaf lock, so snapshots for bundle
        # commits never hold the shard up
        self._recorders: OrderedDict[ContextKey, FlightRecorder] = OrderedDict()  # repro: guarded-by=_lock
        self.evictions = 0  # repro: guarded-by=_lock


class FleetMonitor:
    """A fleet of per-context online monitors behind one ingest surface.

    Args:
        pipeline: the trained pipeline (attach it to a populated store
            for warm starts).  Its store is wrapped in a
            :class:`LockedStore` here; the pipeline object itself must
            not be shared with concurrent writers outside this fleet.
        shards: number of registry shards (ingest parallelism bound).
        max_lanes_per_shard: resident-monitor cap per shard; the least
            recently active lane is evicted beyond it.  None = unbounded.
        workers: ingest thread count (None → one per shard; 0 → process
            batches inline on the calling thread).
        max_incidents: diagnosis windows retained for :meth:`explain`.
        blackbox_dir: incidents directory; when set, every lane records
            a flight ring and every diagnosis is committed there as an
            incident bundle.  None (default) disables the blackbox — the
            hot path then carries no recorder at all.
        blackbox_capacity: flight-ring length per lane.
        **monitor_kwargs: forwarded to every :class:`OnlineMonitor`
            (``window_ticks``, ``warmup_ticks``, ``cooldown_ticks``,
            ``max_history``).
    """

    def __init__(
        self,
        pipeline: InvarNetX,
        *,
        shards: int = 8,
        max_lanes_per_shard: int | None = None,
        workers: int | None = None,
        max_incidents: int = 256,
        blackbox_dir: str | Path | None = None,
        blackbox_capacity: int = DEFAULT_CAPACITY,
        **monitor_kwargs: int,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_lanes_per_shard is not None and max_lanes_per_shard < 1:
            raise ValueError("max_lanes_per_shard must be >= 1 or None")
        pipeline.store = LockedStore.wrap(pipeline.store)
        self.pipeline = pipeline
        self.monitor_kwargs = dict(monitor_kwargs)
        self.blackbox_dir = (
            Path(blackbox_dir) if blackbox_dir is not None else None
        )
        self.blackbox_capacity = blackbox_capacity
        self._shards = [
            _Shard(i, max_lanes_per_shard) for i in range(shards)
        ]
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers if workers else shards,
                thread_name_prefix="fleet-ingest",
            )
            if workers != 0
            else None
        )
        self._incident_lock = threading.Lock()
        self._incidents: OrderedDict[ContextKey, RetainedIncident] = OrderedDict()  # repro: guarded-by=_incident_lock
        self._max_incidents = max_incidents
        self.rejected_total = 0  # repro: guarded-by=_incident_lock
        self.bundles_committed = 0  # repro: guarded-by=_incident_lock

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shards)

    def contexts(self) -> list[ContextKey]:
        """Keys of every resident (non-evicted) lane, sorted."""
        keys: list[ContextKey] = []
        for shard in self._shards:
            with shard._lock:
                keys.extend(shard._lanes.keys())
        return sorted(keys)

    def lane(self, context: OperationContext) -> OnlineMonitor | None:
        """The resident monitor of a context, or None (evicted/unseen)."""
        key = context.key()
        shard = self._shards[shard_index(key, len(self._shards))]
        with shard._lock:
            return shard._lanes.get(key)

    def states(self) -> dict[str, str]:
        """``"workload@node" -> state`` for every resident lane."""
        out: dict[str, str] = {}
        for shard in self._shards:
            with shard._lock:
                for key, monitor in shard._lanes.items():
                    out[f"{key[0]}@{key[1]}"] = monitor.state.value
        return dict(sorted(out.items()))

    def close(self) -> None:
        """Shut the ingest pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "FleetMonitor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ingest(
        self, batch: list[Tick], request_id: str = ""
    ) -> IngestResult:
        """Feed one batch of ticks, fanned out to shards.

        Per-context tick order inside the batch is preserved (a context
        lives on exactly one shard, and each shard processes its slice
        in batch order).  Events come back sorted by batch position, so
        the result is deterministic regardless of thread interleaving.

        Args:
            batch: the ticks to route.
            request_id: id of the HTTP request that delivered the batch
                ("" for in-process ingest) — recorded on flight-ring
                ticks, incident bundles and ``fleet-diagnose`` ledger
                entries, so an HTTP-triggered incident is traceable end
                to end.
        """
        groups: dict[int, list[tuple[int, Tick]]] = {}
        for pos, tick in enumerate(batch):
            idx = shard_index(tick.context.key(), len(self._shards))
            groups.setdefault(idx, []).append((pos, tick))
        with obs.span("fleet.ingest"):
            if self._pool is None or len(groups) <= 1:
                slices = [
                    self._drain(self._shards[idx], ticks, request_id)
                    for idx, ticks in groups.items()
                ]
            else:
                futures = [
                    self._pool.submit(
                        self._drain, self._shards[idx], ticks, request_id
                    )
                    for idx, ticks in groups.items()
                ]
                slices = [f.result() for f in futures]
        result = IngestResult()
        for accepted, rejected, events in slices:
            result.accepted += accepted
            result.rejected += rejected
            result.events.extend(events)
        result.events.sort(key=lambda e: e.index)
        for fleet_event in result.events:
            self._sink(fleet_event, request_id)
        if result.rejected:
            with self._incident_lock:
                self.rejected_total += result.rejected
        return result

    def run_stream(
        self, ticks: list[Tick], batch_size: int = 256
    ) -> IngestResult:
        """Convenience: ingest a long tick list in fixed-size batches."""
        total = IngestResult()
        for start in range(0, len(ticks), batch_size):
            part = self.ingest(ticks[start : start + batch_size])
            offset = start
            total.events.extend(
                FleetEvent(e.index + offset, e.context, e.event)
                for e in part.events
            )
            total.accepted += part.accepted
            total.rejected += part.rejected
        return total

    # ------------------------------------------------------------------
    def _drain(
        self,
        shard: _Shard,
        ticks: list[tuple[int, Tick]],
        request_id: str = "",
    ) -> tuple[int, int, list[FleetEvent]]:
        """Process one shard's slice of the batch, in batch order."""
        accepted = 0
        rejected = 0
        events: list[FleetEvent] = []
        blackbox = self.blackbox_dir is not None
        with shard._lock:
            for pos, tick in ticks:
                monitor = self._lane_for(shard, tick.context)
                if monitor is None:
                    rejected += 1
                    continue
                accepted += 1
                # the state *entering* the tick: replay needs it to tell
                # quarantined (collecting) CPI from detector history
                state = monitor.state.value
                verdict = fast_check(monitor, float(tick.cpi))
                event = monitor.observe(
                    tick.metrics, float(tick.cpi), anomalous=verdict
                )
                if blackbox:
                    recorder = shard._recorders.get(tick.context.key())
                    if recorder:
                        recorder.record(
                            monitor.tick,
                            tick.metrics,
                            float(tick.cpi),
                            verdict,
                            state,
                            request_id,
                        )
                if event is not None:
                    events.append(FleetEvent(pos, tick.context, event))
        if obs.enabled() and (accepted or rejected):
            registry = obs.metrics_registry()
            registry.counter(
                "invarnetx_fleet_ticks_total",
                "Ticks ingested per registry shard",
                ("shard",),
            ).inc(accepted, shard=str(shard.index))
            if rejected:
                registry.counter(
                    "invarnetx_fleet_rejected_total",
                    "Ticks dropped: context has no trained models",
                    ("shard",),
                ).inc(rejected, shard=str(shard.index))
        return accepted, rejected, events

    def _lane_for(
        self, shard: _Shard, context: OperationContext
    ) -> OnlineMonitor | None:
        """Get-or-build the context's monitor (LRU touch; caller holds
        the shard lock)."""
        key = context.key()
        monitor = shard._lanes.get(key)
        if monitor is not None:
            shard._lanes.move_to_end(key)
            return monitor
        if not self.pipeline.is_trained(context):
            obs.warn_once(
                "fleet-untrained-context",
                f"fleet: dropping ticks for untrained context {context} "
                "(train or warm-start its models to accept them)",
            )
            return None
        monitor = OnlineMonitor(
            self.pipeline, context, **self.monitor_kwargs
        )
        shard._lanes[key] = monitor
        if self.blackbox_dir is not None:
            recorder = FlightRecorder(
                context,
                capacity=self.blackbox_capacity,
                model_revision=int(self.pipeline.store.revision(key)),
            )
            monitor.on_transition = recorder.note_transition
            shard._recorders[key] = recorder
        if (
            shard.max_lanes is not None
            and len(shard._lanes) > shard.max_lanes
        ):
            evicted_key, _ = shard._lanes.popitem(last=False)
            shard._recorders.pop(evicted_key, None)
            shard.evictions += 1
            if obs.enabled():
                obs.metrics_registry().counter(
                    "invarnetx_fleet_evictions_total",
                    "Idle monitor lanes evicted (LRU)",
                    ("shard",),
                ).inc(shard=str(shard.index))
                obs.log_event(
                    _log,
                    logging.DEBUG,
                    "fleet-evict",
                    shard=shard.index,
                    context=f"{evicted_key[0]}@{evicted_key[1]}",
                )
        return monitor

    # ------------------------------------------------------------------
    def _sink(self, fleet_event: FleetEvent, request_id: str = "") -> None:
        """Route one emitted event through obs/ledger/bundle/ring.

        Alarm/diagnosis counters are already incremented by the monitor
        itself; the fleet adds the cross-cutting record keeping.  The
        bundle is committed *before* the ring insert, so an incident
        evicted from the bounded ring has always already reached disk.
        """
        context = fleet_event.context
        event = fleet_event.event
        if not isinstance(event, DiagnosisEvent):
            return
        key = context.key()
        bundle_id: str | None = None
        if self.blackbox_dir is not None:
            shard = self._shards[shard_index(key, len(self._shards))]
            with shard._lock:
                recorder = shard._recorders.get(key)
            if recorder is not None:
                bundle = commit_bundle(
                    self.blackbox_dir,
                    self.pipeline,
                    context,
                    event,
                    recorder.snapshot(),
                    request_id=request_id,
                )
                bundle_id = bundle.bundle_id
                with self._incident_lock:
                    self.bundles_committed += 1
                if obs.enabled():
                    obs.metrics_registry().counter(
                        "invarnetx_incident_bundles_total",
                        "Incident bundles committed by the blackbox",
                        ("shard",),
                    ).inc(shard=str(shard.index))
        with self._incident_lock:
            self._incidents[key] = RetainedIncident(
                event=event, request_id=request_id, bundle_id=bundle_id
            )
            self._incidents.move_to_end(key)
            while len(self._incidents) > self._max_incidents:
                self._incidents.popitem(last=False)
        ledger = self.pipeline.ledger
        if ledger is not None:
            fields: dict[str, object] = dict(
                tick=event.tick,
                alarm_tick=event.alarm_tick,
                cause=event.root_cause,
                matched=event.inference.matched,
            )
            if request_id:
                fields["request_id"] = request_id
            if bundle_id is not None:
                fields["bundle"] = bundle_id
            ledger.append(
                "fleet-diagnose",
                context=key,
                fingerprint=self.pipeline.fingerprint,
                **fields,
            )

    # ------------------------------------------------------------------
    def last_incident(
        self, context: OperationContext
    ) -> DiagnosisEvent | None:
        """The most recent retained diagnosis of a context, or None."""
        with self._incident_lock:
            retained = self._incidents.get(context.key())
        return retained.event if retained is not None else None

    def retained_incidents(
        self,
    ) -> list[tuple[ContextKey, RetainedIncident]]:
        """The bounded incident ring's contents, oldest first."""
        with self._incident_lock:
            return list(self._incidents.items())

    def explain(self, context: OperationContext):
        """Full evidence report for the context's last diagnosis.

        Returns:
            An :class:`repro.obs.explain.IncidentExplanation` (stamped
            with the triggering request id when the incident arrived
            over HTTP).

        Raises:
            KeyError: no retained incident for the context.
        """
        with self._incident_lock:
            retained = self._incidents.get(context.key())
        if retained is None or retained.event.window is None:
            raise KeyError(f"no retained incident for {context}")
        from repro.obs.explain import explain_window

        return explain_window(
            self.pipeline,
            context,
            retained.event.window,
            request_id=retained.request_id or None,
        )
